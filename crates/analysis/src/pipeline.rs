//! The demand-driven pass pipeline: a [`Pass`] trait plus a concurrent,
//! region-granular [`FactStore`] and the shared [`Executor`] worker pool.
//!
//! Every analysis driver (summaries, liveness, per-loop classification, and
//! the demand-only advisories in [`crate::contract`], [`crate::decomp`],
//! [`crate::split`], [`crate::deps`]) is expressed as a pass producing one
//! *fact* per scope — the whole program, one procedure, or one loop region.
//! The store memoizes facts under a `(PassId, Scope)` key together with the
//! 128-bit content hash of the pass inputs ([`crate::cache`] keys extended
//! to region granularity), so a demand is answered three ways:
//!
//! 1. **reuse** — a valid entry whose input hash matches is returned as-is
//!    (counted in [`PassMetrics::reused`]);
//! 2. **recompute** — a missing, stale-hash, or invalidated entry runs the
//!    pass, times it, and overwrites the entry;
//! 3. **invalidate** — an external event (a user assertion, an edit) marks
//!    one fact dirty; the recorded dependency edges propagate to every fact
//!    that transitively depends on it, so the next demand recomputes exactly
//!    the dirty cone.
//!
//! # Concurrency
//!
//! The store is sharded: a fact key hashes to one of [`SHARD_COUNT`] shards,
//! each an independently locked map, so demands of unrelated facts never
//! contend.  Each entry carries an explicit state machine:
//!
//! ```text
//! Absent ──claim──▶ Running ──store──▶ Ready {valid, hash}
//!                      ▲                   │
//!                      └──stale/invalid────┘
//! ```
//!
//! Concurrent demands of the *same* key dedup in flight: the first thread
//! claims the `Running` slot and computes; the rest block on the shard's
//! condvar and share the finished `Arc` (counted in [`PassMetrics::deduped`],
//! with blocked time in [`PassMetrics::wait_secs`]).  An invalidation that
//! arrives while the entry is `Running` marks the claim, and the runner
//! stores its result already-dirty — the runner's own caller still gets the
//! value it asked for, but no later demand is served the stale fact.
//!
//! Facts are stored as `Arc<dyn Any>` so heterogeneous pass outputs share
//! one map; [`FactStore::demand`] downcasts back to the pass's typed output.
//! All methods take `&self` — the store is shared across analysis runs of
//! one daemon session the same way the summary cache is.

use crate::tier::SharedFactTier;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use suif_ir::{ProcId, StmtId};

/// Identity of an analysis pass (one per driver ported onto the pipeline).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PassId {
    /// Bottom-up interprocedural array data-flow summaries.
    Summarize,
    /// Interprocedural array liveness.
    Liveness,
    /// Per-loop parallelization verdict.
    Classify,
    /// Per-loop carried-dependence table (demand-only).
    Deps,
    /// Array-contraction candidates (demand-only).
    Contract,
    /// Data-decomposition advisory (demand-only).
    Decomp,
    /// Common-block live-range splits (demand-only).
    Split,
}

impl PassId {
    /// Every pass, in pipeline order.
    pub const ALL: [PassId; 7] = [
        PassId::Summarize,
        PassId::Liveness,
        PassId::Classify,
        PassId::Deps,
        PassId::Contract,
        PassId::Decomp,
        PassId::Split,
    ];

    /// Stable lower-case name (used in the daemon's `stats` payload).
    pub fn name(self) -> &'static str {
        match self {
            PassId::Summarize => "summarize",
            PassId::Liveness => "liveness",
            PassId::Classify => "classify",
            PassId::Deps => "deps",
            PassId::Contract => "contract",
            PassId::Decomp => "decomp",
            PassId::Split => "split",
        }
    }
}

/// The region a fact describes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Scope {
    /// The whole program.
    Program,
    /// One procedure.
    Proc(ProcId),
    /// One loop region, named by its `do` statement.
    Loop(StmtId),
}

/// The key of one fact: which pass, over which region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactKey {
    /// The producing pass.
    pub pass: PassId,
    /// The region analyzed.
    pub scope: Scope,
}

impl FactKey {
    /// Shorthand constructor.
    pub fn new(pass: PassId, scope: Scope) -> FactKey {
        FactKey { pass, scope }
    }
}

/// One schedulable unit of analysis.
///
/// A pass is a *pure function of its input hash*: two demands with the same
/// [`Pass::key`] and [`Pass::input_hash`] must produce interchangeable
/// outputs.  [`Pass::deps`] declares the facts this one reads, recorded as
/// dependency edges for [`FactStore::invalidate`].
pub trait Pass {
    /// The fact type this pass produces.
    type Output: Send + Sync + 'static;

    /// Where the fact lives in the store.
    fn key(&self) -> FactKey;

    /// Content hash of everything the output depends on.
    fn input_hash(&self) -> u128;

    /// Keys of the facts this pass reads (dependency edges).
    fn deps(&self) -> Vec<FactKey> {
        Vec::new()
    }

    /// Compute the fact.
    fn run(&self) -> Self::Output;
}

/// Per-pass counters: how often it ran, how often a demand was served from
/// the store, and the seconds spent in [`Pass::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PassMetrics {
    /// Times [`Pass::run`] executed.
    pub invocations: u64,
    /// Demands answered by a valid, hash-matching entry.
    pub reused: u64,
    /// Demands that found the fact `Running` and shared the in-flight
    /// result instead of recomputing it.
    pub deduped: u64,
    /// Demands answered from the process-wide [`SharedFactTier`] (another
    /// session computed the fact under the same content hash).
    pub shared: u64,
    /// Total seconds inside [`Pass::run`].
    pub secs: f64,
    /// Total seconds demands spent blocked on in-flight computations.
    pub wait_secs: f64,
}

struct FactEntry {
    hash: u128,
    value: Arc<dyn Any + Send + Sync>,
    deps: Vec<FactKey>,
    valid: bool,
    /// Approximate resident bytes of `value` (budget accounting).
    bytes: usize,
    /// Second-chance bit: set on every reuse, cleared by a passing
    /// eviction sweep.
    referenced: bool,
}

/// One fact lifted out of (or injected into) the store: key, input hash,
/// dependency edges, and the type-erased value.  Produced by
/// [`FactStore::export`], consumed by [`FactStore::import`] and the
/// snapshot codec ([`crate::snapshot`]).
#[derive(Clone)]
pub struct ExportedFact {
    /// The fact's store key.
    pub key: FactKey,
    /// The input hash the value was computed under.
    pub hash: u128,
    /// Recorded dependency edges (facts this one reads).
    pub deps: Vec<FactKey>,
    /// Approximate resident bytes of the value
    /// ([`crate::snapshot::approx_value_bytes`]).
    pub bytes: usize,
    /// The fact value, type-erased exactly as stored.
    pub value: Arc<dyn Any + Send + Sync>,
}

thread_local! {
    /// Seconds this thread spent parked inside [`FactStore::demand`]
    /// waiting on another thread's in-flight computation.  [`Executor::run`]
    /// subtracts the delta accumulated during a worker's loop from that
    /// worker's busy seconds, so blocked time is charged to
    /// [`PassMetrics::wait_secs`] once — never double-counted as executor
    /// busy time.
    static DEMAND_WAIT_SECS: std::cell::Cell<f64> = const { std::cell::Cell::new(0.0) };
}

fn note_demand_wait(secs: f64) {
    DEMAND_WAIT_SECS.with(|w| w.set(w.get() + secs));
}

/// Entry state machine: `Absent` is represented by the key missing from the
/// shard map entirely.
enum Slot {
    /// A thread is computing this fact; `invalidated` records an
    /// invalidation that arrived mid-run so the result is stored dirty.
    Running { invalidated: bool },
    /// The fact is stored (possibly dirty or stale-hashed).
    Ready(FactEntry),
}

/// Number of independently locked shards in the store.
pub const SHARD_COUNT: usize = 16;

#[derive(Default)]
struct Shard {
    slots: Mutex<HashMap<FactKey, Slot>>,
    ready: Condvar,
}

/// A memoizing, concurrency-safe store of analysis facts keyed by
/// `(pass, scope)`.  See the module docs for the entry state machine.
///
/// Built with [`FactStore::with_shared`], the store becomes a thin
/// *overlay* over a process-wide [`SharedFactTier`]: a local miss consults
/// the tier by `(pass, input-hash)` before computing, and a locally
/// computed clean fact is published back so other sessions (other overlay
/// stores over the same tier) never recompute it.  Invalidation stays
/// strictly local: [`FactStore::invalidate`] dirties overlay slots only,
/// and a fact invalidated under an *unchanged* hash additionally pins that
/// key tier-bypassed (and unpublishable) — the event was not captured by
/// the hash, so the tier copy cannot be trusted for it either.
pub struct FactStore {
    shards: Vec<Shard>,
    metrics: Mutex<BTreeMap<PassId, PassMetrics>>,
    /// The process-wide content-addressed tier under this overlay (multi-
    /// tenant daemon); `None` for a self-contained store.
    shared: Option<Arc<SharedFactTier>>,
    /// When set, only the assertion-independent passes (`Summarize`,
    /// `Liveness`) are published to the tier; everything else stays in the
    /// session-private overlay (see [`FactStore::set_assert_local`]).
    assert_local: AtomicBool,
    /// Session id credited for tier publishes (fairness accounting);
    /// `0` until [`FactStore::set_owner`] is called.
    owner: AtomicU64,
    /// Approximate byte budget for resident facts; `0` = unbounded.
    budget: AtomicUsize,
    /// Approximate resident bytes across all shards.
    resident: AtomicUsize,
    /// Clock hand of the second-chance eviction sweep (a shard index).
    clock: AtomicUsize,
    evicted: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl Default for FactStore {
    fn default() -> FactStore {
        FactStore {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            metrics: Mutex::new(BTreeMap::new()),
            shared: None,
            assert_local: AtomicBool::new(false),
            owner: AtomicU64::new(0),
            budget: AtomicUsize::new(0),
            resident: AtomicUsize::new(0),
            clock: AtomicUsize::new(0),
            evicted: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }
}

/// Byte-accounting snapshot of one [`FactStore`] (the daemon's
/// `stats.facts` memory fields).
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreByteStats {
    /// Approximate resident fact bytes.
    pub resident_bytes: u64,
    /// Configured byte budget (`None` = unbounded).
    pub budget: Option<u64>,
    /// Entries evicted by the budget sweep.
    pub evicted: u64,
    /// Approximate bytes reclaimed by eviction.
    pub evicted_bytes: u64,
}

fn shard_index(key: &FactKey) -> usize {
    // FNV-1a over the key's discriminants; cheap and well-spread for the
    // small id spaces involved.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(key.pass as u64);
    match key.scope {
        Scope::Program => eat(u64::MAX),
        Scope::Proc(p) => eat(0x1_0000_0000 | p.0 as u64),
        Scope::Loop(s) => eat(0x2_0000_0000 | s.0 as u64),
    }
    (h as usize) % SHARD_COUNT
}

/// Removes an abandoned `Running` claim if the pass panics, so blocked
/// waiters retry instead of deadlocking.
struct RunClaim<'a> {
    shard: &'a Shard,
    key: FactKey,
    armed: bool,
}

impl Drop for RunClaim<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut slots = self.shard.slots.lock();
            if matches!(slots.get(&self.key), Some(Slot::Running { .. })) {
                slots.remove(&self.key);
            }
            drop(slots);
            self.shard.ready.notify_all();
        }
    }
}

impl FactStore {
    /// An empty store.
    pub fn new() -> FactStore {
        FactStore::default()
    }

    /// An empty overlay store backed by a process-wide [`SharedFactTier`]:
    /// local misses consult the tier by content hash, and clean local
    /// results are published back (see [`FactStore::demand`]).
    pub fn with_shared(tier: Arc<SharedFactTier>) -> FactStore {
        FactStore {
            shared: Some(tier),
            ..FactStore::default()
        }
    }

    /// The shared tier this overlay store consults, if any.
    pub fn shared_tier(&self) -> Option<&Arc<SharedFactTier>> {
        self.shared.as_ref()
    }

    /// Tag tier publishes from this store with the owning session's id
    /// (drives the tier's per-session accounting and eviction fairness).
    pub fn set_owner(&self, session_id: u64) {
        self.owner.store(session_id, Ordering::Relaxed);
    }

    /// Set (or clear, with `None`) the approximate byte budget for resident
    /// facts.  Over-budget demands trigger a second-chance eviction sweep
    /// of cold `Ready` entries.
    pub fn set_budget(&self, budget: Option<usize>) {
        self.budget.store(budget.unwrap_or(0), Ordering::Relaxed);
        self.maybe_evict();
    }

    /// Mark this store assertion-tainted (or clean again): while set, only
    /// the assertion-independent passes (`Summarize`, `Liveness`, whose
    /// input hashes never fold assertion marks) are published to the shared
    /// tier, so one tenant's `assert` never leaks into another's verdicts.
    /// Tier *reads* stay allowed either way — assertion-dependent passes
    /// fold resolved assertion marks into their input hashes, so a hash
    /// match is a semantic match.
    pub fn set_assert_local(&self, tainted: bool) {
        self.assert_local.store(tainted, Ordering::Relaxed);
    }

    /// Byte-accounting counters (resident bytes, budget, evictions).
    pub fn byte_stats(&self) -> StoreByteStats {
        let budget = self.budget.load(Ordering::Relaxed);
        StoreByteStats {
            resident_bytes: self.resident.load(Ordering::Relaxed) as u64,
            budget: (budget != 0).then_some(budget as u64),
            evicted: self.evicted.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, key: &FactKey) -> &Shard {
        &self.shards[shard_index(key)]
    }

    /// Demand a fact: reuse a valid entry whose input hash matches, share an
    /// in-flight computation of the same key, consult the process-wide
    /// [`SharedFactTier`] (if the store was built with
    /// [`FactStore::with_shared`]), or claim the entry and run the pass,
    /// recording its output (with dependency edges).
    pub fn demand<P: Pass>(&self, pass: &P) -> Arc<P::Output> {
        let key = pass.key();
        let hash = pass.input_hash();
        let shard = self.shard(&key);
        let mut wait_start: Option<Instant> = None;
        // Whether the shared tier may serve (and later receive) this fact.
        // A local entry invalidated under this *same* hash means the
        // invalidation event was not captured by the hash — the tier's copy
        // under that hash is equally untrustworthy, so bypass it and keep
        // the recomputed value out of it.
        let tier_allowed;
        let mut slots = shard.slots.lock();
        loop {
            if matches!(slots.get(&key), Some(Slot::Running { .. })) {
                wait_start.get_or_insert_with(Instant::now);
                shard.ready.wait(&mut slots);
                continue;
            }
            match slots.get_mut(&key) {
                Some(Slot::Ready(e)) if e.valid && e.hash == hash => {
                    e.referenced = true;
                    if let Ok(v) = e.value.clone().downcast::<P::Output>() {
                        drop(slots);
                        let mut metrics = self.metrics.lock();
                        let m = metrics.entry(key.pass).or_default();
                        match wait_start {
                            Some(t) => {
                                let waited = t.elapsed().as_secs_f64();
                                m.deduped += 1;
                                m.wait_secs += waited;
                                drop(metrics);
                                note_demand_wait(waited);
                            }
                            None => m.reused += 1,
                        }
                        return v;
                    }
                    // A type mismatch is a stale entry in disguise;
                    // recompute below.
                    tier_allowed = true;
                    break;
                }
                Some(Slot::Ready(e)) if !e.valid && e.hash == hash => {
                    tier_allowed = false;
                    break;
                }
                _ => {
                    // Absent, or a stale hash (the program changed under the
                    // key): the tier lookup under the *new* hash is sound.
                    tier_allowed = true;
                    break;
                }
            }
        }
        // Tier consult while still holding the shard lock (the tier's own
        // locks are leaves; no store lock is ever taken inside them).
        if tier_allowed {
            if let Some(tier) = &self.shared {
                if let Some((value, bytes, deps)) = tier.lookup(key.pass, hash) {
                    if let Ok(v) = value.clone().downcast::<P::Output>() {
                        let prev = slots.insert(
                            key,
                            Slot::Ready(FactEntry {
                                hash,
                                value,
                                deps,
                                valid: true,
                                bytes,
                                referenced: true,
                            }),
                        );
                        drop(slots);
                        self.account_replaced(prev, bytes);
                        let mut metrics = self.metrics.lock();
                        let m = metrics.entry(key.pass).or_default();
                        m.shared += 1;
                        if let Some(t) = wait_start {
                            let waited = t.elapsed().as_secs_f64();
                            m.wait_secs += waited;
                            drop(metrics);
                            note_demand_wait(waited);
                        } else {
                            drop(metrics);
                        }
                        self.maybe_evict();
                        return v;
                    }
                }
            }
        }
        let prev = slots.insert(key, Slot::Running { invalidated: false });
        drop(slots);
        self.account_replaced(prev, 0);
        if let Some(t) = wait_start {
            // Waited on a runner that produced a different hash (or got
            // poisoned); still account the blocked time.
            let waited = t.elapsed().as_secs_f64();
            self.metrics.lock().entry(key.pass).or_default().wait_secs += waited;
            note_demand_wait(waited);
        }
        let mut claim = RunClaim {
            shard,
            key,
            armed: true,
        };
        // Run outside the lock: a pass may demand its own inputs.
        let t0 = Instant::now();
        let out = Arc::new(pass.run());
        let secs = t0.elapsed().as_secs_f64();
        let deps = pass.deps();
        let any: Arc<dyn Any + Send + Sync> = out.clone();
        let bytes = crate::snapshot::approx_value_bytes(key.pass, &any);
        let valid;
        {
            let mut slots = shard.slots.lock();
            valid = !matches!(slots.get(&key), Some(Slot::Running { invalidated: true }));
            slots.insert(
                key,
                Slot::Ready(FactEntry {
                    hash,
                    value: any.clone(),
                    deps: deps.clone(),
                    valid,
                    bytes,
                    referenced: true,
                }),
            );
        }
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        claim.armed = false;
        shard.ready.notify_all();
        // Publish clean results so other sessions skip the computation.
        // Assertion-tainted sessions only publish the assertion-independent
        // passes; a fact invalidated under an unchanged hash never goes out.
        if valid && tier_allowed {
            if let Some(tier) = &self.shared {
                let publishable = !self.assert_local.load(Ordering::Relaxed)
                    || matches!(key.pass, PassId::Summarize | PassId::Liveness);
                if publishable {
                    let owner = self.owner.load(Ordering::Relaxed);
                    tier.publish_owned(owner, key, hash, bytes, deps, any);
                }
            }
        }
        let mut metrics = self.metrics.lock();
        let m = metrics.entry(key.pass).or_default();
        m.invocations += 1;
        m.secs += secs;
        drop(metrics);
        self.maybe_evict();
        out
    }

    /// Subtract the bytes of a replaced `Ready` slot from the resident
    /// count, then add the new entry's bytes.
    fn account_replaced(&self, prev: Option<Slot>, added: usize) {
        if let Some(Slot::Ready(e)) = prev {
            self.resident.fetch_sub(e.bytes, Ordering::Relaxed);
        }
        if added > 0 {
            self.resident.fetch_add(added, Ordering::Relaxed);
        }
    }

    /// Second-chance clock sweep: while over budget, walk the shards from
    /// the clock hand, sparing entries referenced since the last pass and
    /// dropping cold `Ready` facts.  `Running` slots are never touched, and
    /// neither are invalid entries — a fact invalidated under an unchanged
    /// hash is a tombstone pinning its key tier-bypassed, and evicting it
    /// would let the next demand trust the tier again.
    fn maybe_evict(&self) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        let mut visits = 0;
        while self.resident.load(Ordering::Relaxed) > budget && visits < 2 * SHARD_COUNT {
            let i = self.clock.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
            visits += 1;
            let mut freed = 0usize;
            let mut dropped = 0u64;
            {
                let mut slots = self.shards[i].slots.lock();
                slots.retain(|_, slot| match slot {
                    Slot::Running { .. } => true,
                    Slot::Ready(e) => {
                        if self.resident.load(Ordering::Relaxed) <= budget + freed {
                            return true;
                        }
                        if !e.valid {
                            return true;
                        }
                        if e.referenced {
                            e.referenced = false;
                            true
                        } else {
                            freed += e.bytes;
                            dropped += 1;
                            false
                        }
                    }
                });
            }
            if freed > 0 {
                self.resident.fetch_sub(freed, Ordering::Relaxed);
                self.evicted.fetch_add(dropped, Ordering::Relaxed);
                self.evicted_bytes
                    .fetch_add(freed as u64, Ordering::Relaxed);
            }
        }
    }

    /// Demand many facts of one pass type concurrently across `exec`.
    ///
    /// Results come back in input order, so parallel demand is
    /// observationally identical to demanding each pass in sequence (pass
    /// outputs are pure functions of their input hash, and in-flight dedup
    /// guarantees each key runs at most once).
    pub fn demand_all<P: Pass + Sync>(
        &self,
        passes: &[P],
        exec: &Executor,
    ) -> (Vec<Arc<P::Output>>, ExecStats) {
        let results: Vec<Mutex<Option<Arc<P::Output>>>> =
            passes.iter().map(|_| Mutex::new(None)).collect();
        let stats = exec.run(passes.len(), |i| {
            *results[i].lock() = Some(self.demand(&passes[i]));
        });
        let out = results
            .into_iter()
            .map(|m| m.into_inner().expect("demand_all worker stored a result"))
            .collect();
        (out, stats)
    }

    /// Mark one fact dirty and propagate along the recorded dependency
    /// edges: every fact that transitively depends on `key` is invalidated
    /// too.  Returns the number of entries marked dirty (an entry currently
    /// `Running` counts — its result will be stored already-dirty).  The
    /// next demand for each recomputes regardless of its stored hash.
    pub fn invalidate(&self, key: FactKey) -> usize {
        let mut frontier = vec![key];
        let mut visited: std::collections::HashSet<FactKey> = std::collections::HashSet::new();
        let mut dirtied = 0usize;
        while let Some(k) = frontier.pop() {
            if !visited.insert(k) {
                continue;
            }
            let newly = {
                let mut slots = self.shard(&k).slots.lock();
                match slots.get_mut(&k) {
                    Some(Slot::Ready(e)) if e.valid => {
                        e.valid = false;
                        true
                    }
                    Some(Slot::Running { invalidated }) if !*invalidated => {
                        *invalidated = true;
                        true
                    }
                    _ => false,
                }
            };
            if newly {
                dirtied += 1;
            }
            if newly || k == key {
                for shard in &self.shards {
                    let slots = shard.slots.lock();
                    for (dk, slot) in slots.iter() {
                        if let Slot::Ready(e) = slot {
                            if e.valid && e.deps.contains(&k) && !visited.contains(dk) {
                                frontier.push(*dk);
                            }
                        }
                    }
                }
            }
        }
        dirtied
    }

    /// Invalidate every fact of one pass (and, transitively, the facts
    /// depending on them).  Hash mismatches already handle program edits;
    /// this is for events that change pass semantics wholesale.
    pub fn invalidate_pass(&self, pass: PassId) -> usize {
        let mut keys: Vec<FactKey> = Vec::new();
        for shard in &self.shards {
            keys.extend(shard.slots.lock().keys().filter(|k| k.pass == pass));
        }
        keys.into_iter().map(|k| self.invalidate(k)).sum()
    }

    /// Snapshot of the recorded dependency edges of every valid fact, in
    /// deterministic key order (used by the observational-equivalence
    /// property tests).
    pub fn dependency_edges(&self) -> BTreeMap<FactKey, Vec<FactKey>> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            let slots = shard.slots.lock();
            for (k, slot) in slots.iter() {
                if let Slot::Ready(e) = slot {
                    if e.valid {
                        out.insert(*k, e.deps.clone());
                    }
                }
            }
        }
        out
    }

    /// Snapshot of the per-pass counters.
    pub fn metrics(&self) -> BTreeMap<PassId, PassMetrics> {
        self.metrics.lock().clone()
    }

    /// Counters of one pass (zeros when it never ran).
    pub fn metrics_for(&self, pass: PassId) -> PassMetrics {
        self.metrics.lock().get(&pass).copied().unwrap_or_default()
    }

    /// Zero all counters (facts are kept).
    pub fn reset_metrics(&self) {
        self.metrics.lock().clear();
    }

    /// Number of stored facts (valid, dirty, or in flight).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.slots.lock().len()).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lift every *valid, finished* fact out of the store for persistence,
    /// in deterministic key order.  Cooperates with the entry state
    /// machine: `Running` slots (a computation in flight — possibly a
    /// speculative pre-classification) and invalidated entries are skipped,
    /// so a snapshot taken at any moment never contains a racing or stale
    /// result.
    pub fn export(&self) -> Vec<ExportedFact> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let slots = shard.slots.lock();
            for (k, slot) in slots.iter() {
                if let Slot::Ready(e) = slot {
                    if e.valid {
                        out.push(ExportedFact {
                            key: *k,
                            hash: e.hash,
                            deps: e.deps.clone(),
                            bytes: e.bytes,
                            value: e.value.clone(),
                        });
                    }
                }
            }
        }
        out.sort_by_key(|f| f.key);
        out
    }

    /// Seed the store with previously exported facts (a warm start).
    /// Each fact lands as a valid `Ready` entry; keys that already hold a
    /// slot — `Running` or `Ready` — are left untouched, so importing into
    /// a live store never clobbers newer work.  Returns how many facts were
    /// installed.  The caller is responsible for validating each fact's
    /// input hash against the current program first
    /// ([`crate::Parallelizer::expected_fact_hashes`]); a fact imported
    /// with a stale hash is harmless (the next demand misses on the hash
    /// and recomputes) but wastes memory.
    pub fn import(&self, facts: Vec<ExportedFact>) -> usize {
        let mut installed = 0;
        for f in facts {
            let shard = self.shard(&f.key);
            let mut slots = shard.slots.lock();
            if let std::collections::hash_map::Entry::Vacant(v) = slots.entry(f.key) {
                let bytes = f.bytes;
                v.insert(Slot::Ready(FactEntry {
                    hash: f.hash,
                    value: f.value,
                    deps: f.deps,
                    valid: true,
                    bytes,
                    referenced: true,
                }));
                self.resident.fetch_add(bytes, Ordering::Relaxed);
                installed += 1;
            }
        }
        installed
    }

    /// Drop every fact and zero the counters.  Must not race an in-flight
    /// demand (callers clear between analysis runs, never during one).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.slots.lock().clear();
            shard.ready.notify_all();
        }
        self.resident.store(0, Ordering::Relaxed);
        self.evicted.store(0, Ordering::Relaxed);
        self.evicted_bytes.store(0, Ordering::Relaxed);
        self.reset_metrics();
    }
}

/// Work sets smaller than this run inline on the calling thread instead of
/// fanning out across the pool — dispatch overhead dominates below it.
pub const INLINE_FAN_OUT_FLOOR: usize = 4;

/// A reusable pool of scoped workers pulling indexed work items off a shared
/// claim counter.  Both the bottom-up scheduler ([`crate::schedule::run`])
/// and [`FactStore::demand_all`] fan out across it, so worker-count policy
/// (including the `SUIF_EXECUTOR_THREADS` stress override) lives in one
/// place.
#[derive(Clone, Debug)]
pub struct Executor {
    threads: usize,
}

/// What one [`Executor::run`] did: worker count, per-worker busy seconds,
/// and the fan-out's wall-clock.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Workers actually spawned (≤ configured threads, ≥ 1).
    pub workers: usize,
    /// Wall-clock seconds of the whole fan-out.
    pub wall_secs: f64,
    /// Busy seconds per worker, indexed by worker id.
    pub worker_busy_secs: Vec<f64>,
}

impl ExecStats {
    /// Summed busy seconds across workers.
    pub fn busy_secs(&self) -> f64 {
        self.worker_busy_secs.iter().sum()
    }
}

impl Executor {
    /// An executor with the given worker budget; `0` means one per core.
    /// The `SUIF_EXECUTOR_THREADS` environment variable, when set to a
    /// positive integer, overrides the budget (the CI thread-stress job
    /// forces 2 and 8 this way — safe because parallel demand is
    /// observationally identical to sequential).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: Executor::resolve(threads),
        }
    }

    /// Resolve a requested thread count to the effective one (env override,
    /// then `0` → available cores).
    pub fn resolve(threads: usize) -> usize {
        if let Ok(v) = std::env::var("SUIF_EXECUTOR_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        if threads != 0 {
            return threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The resolved worker budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `work(0..n)` across the pool: workers claim indices from a shared
    /// atomic counter until exhausted.  With one worker (or one item) the
    /// work runs inline on the calling thread — no spawn overhead, identical
    /// results either way.  Work sets below [`INLINE_FAN_OUT_FLOOR`] also run
    /// inline: BENCH_3 measured 0.75–0.91x on tiny apps where thread spawn
    /// and claim-counter traffic cost more than the work itself.
    pub fn run(&self, n: usize, work: impl Fn(usize) + Sync) -> ExecStats {
        let t0 = Instant::now();
        let workers = if n < INLINE_FAN_OUT_FLOOR {
            1
        } else {
            self.threads.min(n).max(1)
        };
        let claim = AtomicUsize::new(0);
        let busy: Vec<Mutex<f64>> = (0..workers).map(|_| Mutex::new(0.0)).collect();
        let body = |w: usize| {
            let start = Instant::now();
            // A worker parked inside `FactStore::demand` (deduping on an
            // in-flight fact) is not busy: that interval is charged to
            // `PassMetrics::wait_secs` by the store, so subtract it here
            // rather than double-count it as executor busy time.
            let wait_before = DEMAND_WAIT_SECS.with(std::cell::Cell::get);
            loop {
                let i = claim.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                work(i);
            }
            let waited = DEMAND_WAIT_SECS.with(std::cell::Cell::get) - wait_before;
            *busy[w].lock() = (start.elapsed().as_secs_f64() - waited).max(0.0);
        };
        if workers == 1 {
            body(0);
        } else {
            std::thread::scope(|s| {
                for w in 0..workers {
                    s.spawn(move || body(w));
                }
            });
        }
        ExecStats {
            workers,
            wall_secs: t0.elapsed().as_secs_f64(),
            worker_busy_secs: busy.into_iter().map(Mutex::into_inner).collect(),
        }
    }
}

/// A detached job submitted to the [`ExecutorService`].
type ServiceJob = Box<dyn FnOnce() + Send + 'static>;

struct ServiceQueue {
    jobs: VecDeque<ServiceJob>,
    shutdown: bool,
}

struct ServiceShared {
    queue: Mutex<ServiceQueue>,
    ready: Condvar,
    submitted: AtomicU64,
    completed: AtomicU64,
}

/// A long-lived pool of detached workers draining a FIFO job queue —
/// the asynchronous sibling of the scoped [`Executor`].
///
/// [`Executor::run`] blocks the caller until the whole fan-out finishes,
/// which is right for analysis-internal parallelism but wrong for the
/// evented daemon: the reactor thread must never block on analysis.  The
/// service accepts `FnOnce` jobs and runs them on its own threads; the
/// job itself delivers its result (e.g. by pushing a completion and
/// ringing the reactor's wakeup pipe).
///
/// Worker-count policy is shared with [`Executor`] (`Executor::resolve`,
/// including the `SUIF_EXECUTOR_THREADS` override), with a floor of two
/// workers so one long-running `analyze` can never starve every other
/// session's cheap `stats` — even on a single-core host.
///
/// Dropping the service finishes already-queued jobs, then joins the
/// workers.
pub struct ExecutorService {
    shared: Arc<ServiceShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ExecutorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorService")
            .field("workers", &self.workers.len())
            .field("pending", &self.pending())
            .finish()
    }
}

impl ExecutorService {
    /// A service with the given worker budget (`0` means one per core);
    /// resolution matches [`Executor::new`], floored at two workers.
    pub fn new(threads: usize) -> ExecutorService {
        let workers = Executor::resolve(threads).max(2);
        let shared = Arc::new(ServiceShared {
            queue: Mutex::new(ServiceQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("suif-exec-{w}"))
                    .spawn(move || ExecutorService::worker(shared))
                    .expect("spawn executor-service worker")
            })
            .collect();
        ExecutorService {
            shared,
            workers: handles,
        }
    }

    fn worker(shared: Arc<ServiceShared>) {
        loop {
            let job = {
                let mut q = shared.queue.lock();
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    shared.ready.wait(&mut q);
                }
            };
            job();
            shared.completed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Queue a job for execution on a pool thread.  FIFO across the whole
    /// service; callers needing per-key ordering serialize upstream (the
    /// daemon runs at most one in-flight job per connection).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        {
            let mut q = self.shared.queue.lock();
            debug_assert!(!q.shutdown, "submit after ExecutorService drop");
            q.jobs.push_back(Box::new(job));
        }
        self.shared.ready.notify_one();
    }

    /// Resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted over the service's lifetime.
    pub fn submitted(&self) -> u64 {
        self.shared.submitted.load(Ordering::Relaxed)
    }

    /// Jobs finished over the service's lifetime.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Jobs queued or running right now.
    pub fn pending(&self) -> u64 {
        self.submitted().saturating_sub(self.completed())
    }
}

impl Drop for ExecutorService {
    fn drop(&mut self) {
        self.shared.queue.lock().shutdown = true;
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingPass<'a> {
        key: FactKey,
        hash: u128,
        deps: Vec<FactKey>,
        runs: &'a AtomicU64,
        output: i64,
    }

    impl Pass for CountingPass<'_> {
        type Output = i64;
        fn key(&self) -> FactKey {
            self.key
        }
        fn input_hash(&self) -> u128 {
            self.hash
        }
        fn deps(&self) -> Vec<FactKey> {
            self.deps.clone()
        }
        fn run(&self) -> i64 {
            self.runs.fetch_add(1, Ordering::Relaxed);
            self.output
        }
    }

    fn key(pass: PassId, stmt: u32) -> FactKey {
        FactKey::new(pass, Scope::Loop(StmtId(stmt)))
    }

    #[test]
    fn demand_memoizes_by_hash() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let p = CountingPass {
            key: key(PassId::Classify, 1),
            hash: 7,
            deps: vec![],
            runs: &runs,
            output: 42,
        };
        assert_eq!(*store.demand(&p), 42);
        assert_eq!(*store.demand(&p), 42);
        assert_eq!(runs.load(Ordering::Relaxed), 1, "second demand reuses");
        let m = store.metrics_for(PassId::Classify);
        assert_eq!((m.invocations, m.reused), (1, 1));

        // A changed input hash recomputes and overwrites.
        let p2 = CountingPass { hash: 8, ..p };
        store.demand(&p2);
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        assert_eq!(store.len(), 1, "same key overwritten, not duplicated");
    }

    #[test]
    fn invalidation_follows_dependency_edges() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let summarize = CountingPass {
            key: FactKey::new(PassId::Summarize, Scope::Program),
            hash: 1,
            deps: vec![],
            runs: &runs,
            output: 1,
        };
        let liveness = CountingPass {
            key: FactKey::new(PassId::Liveness, Scope::Program),
            hash: 1,
            deps: vec![summarize.key()],
            runs: &runs,
            output: 2,
        };
        let classify = CountingPass {
            key: key(PassId::Classify, 9),
            hash: 1,
            deps: vec![liveness.key()],
            runs: &runs,
            output: 3,
        };
        let other = CountingPass {
            key: key(PassId::Classify, 10),
            hash: 1,
            deps: vec![],
            runs: &runs,
            output: 4,
        };
        store.demand(&summarize);
        store.demand(&liveness);
        store.demand(&classify);
        store.demand(&other);
        assert_eq!(runs.load(Ordering::Relaxed), 4);

        // Invalidating the root dirties the chain but not the unrelated fact.
        assert_eq!(store.invalidate(summarize.key()), 3);
        store.demand(&other);
        assert_eq!(runs.load(Ordering::Relaxed), 4, "untouched fact reused");
        store.demand(&classify);
        assert_eq!(runs.load(Ordering::Relaxed), 5, "dirty fact recomputed");

        // Invalidating a leaf touches only the leaf.
        assert_eq!(store.invalidate(other.key()), 1);
    }

    #[test]
    fn clear_and_reset() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let p = CountingPass {
            key: key(PassId::Deps, 1),
            hash: 0,
            deps: vec![],
            runs: &runs,
            output: 0,
        };
        store.demand(&p);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.metrics_for(PassId::Deps), PassMetrics::default());
    }

    #[test]
    fn dependency_edges_snapshot() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let a = CountingPass {
            key: FactKey::new(PassId::Summarize, Scope::Program),
            hash: 1,
            deps: vec![],
            runs: &runs,
            output: 1,
        };
        let b = CountingPass {
            key: key(PassId::Classify, 3),
            hash: 1,
            deps: vec![a.key()],
            runs: &runs,
            output: 2,
        };
        store.demand(&a);
        store.demand(&b);
        let edges = store.dependency_edges();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[&b.key()], vec![a.key()]);
        // Dirty entries drop out of the snapshot.
        store.invalidate(a.key());
        assert!(store.dependency_edges().is_empty());
    }

    /// A pass whose run blocks until every participating thread has at
    /// least entered the race, so concurrent demands reliably observe the
    /// `Running` state.
    struct GatedPass<'a> {
        key: FactKey,
        runs: &'a AtomicU64,
        arrivals: &'a AtomicU64,
        expected: u64,
    }

    impl Pass for GatedPass<'_> {
        type Output = i64;
        fn key(&self) -> FactKey {
            self.key
        }
        fn input_hash(&self) -> u128 {
            1
        }
        fn run(&self) -> i64 {
            self.runs.fetch_add(1, Ordering::SeqCst);
            let t0 = Instant::now();
            while self.arrivals.load(Ordering::SeqCst) < self.expected && t0.elapsed().as_secs() < 5
            {
                std::thread::yield_now();
            }
            // Give the last arrivals time to reach the shard lock and park.
            std::thread::sleep(std::time::Duration::from_millis(100));
            7
        }
    }

    #[test]
    fn concurrent_same_key_demands_run_exactly_once() {
        const N: u64 = 8;
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let arrivals = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    let p = GatedPass {
                        key: key(PassId::Classify, 5),
                        runs: &runs,
                        arrivals: &arrivals,
                        expected: N,
                    };
                    arrivals.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(*store.demand(&p), 7);
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly-once execution");
        let m = store.metrics_for(PassId::Classify);
        assert_eq!(m.invocations, 1);
        assert_eq!(m.deduped + m.reused, N - 1, "everyone else was served");
    }

    #[test]
    fn invalidate_while_running_never_serves_stale() {
        let store = Arc::new(FactStore::new());
        let runs = Arc::new(AtomicU64::new(0));
        let started = Arc::new(AtomicU64::new(0));
        let release = Arc::new(AtomicU64::new(0));

        struct HeldPass {
            key: FactKey,
            runs: Arc<AtomicU64>,
            started: Arc<AtomicU64>,
            release: Arc<AtomicU64>,
        }
        impl Pass for HeldPass {
            type Output = u64;
            fn key(&self) -> FactKey {
                self.key
            }
            fn input_hash(&self) -> u128 {
                9
            }
            fn run(&self) -> u64 {
                let n = self.runs.fetch_add(1, Ordering::SeqCst) + 1;
                self.started.store(1, Ordering::SeqCst);
                let t0 = Instant::now();
                while self.release.load(Ordering::SeqCst) == 0 && t0.elapsed().as_secs() < 5 {
                    std::thread::yield_now();
                }
                n
            }
        }

        let k = key(PassId::Deps, 4);
        let runner = {
            let (store, runs, started, release) = (
                store.clone(),
                runs.clone(),
                started.clone(),
                release.clone(),
            );
            std::thread::spawn(move || {
                let p = HeldPass {
                    key: k,
                    runs,
                    started,
                    release,
                };
                *store.demand(&p)
            })
        };
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // The fact is mid-run; an invalidation must dirty the claim.
        assert_eq!(store.invalidate(k), 1);
        release.store(1, Ordering::SeqCst);
        // The runner's own caller still gets the value it computed…
        assert_eq!(runner.join().unwrap(), 1);
        // …but the next demand recomputes instead of serving the stale fact.
        let p = HeldPass {
            key: k,
            runs: runs.clone(),
            started: started.clone(),
            release: release.clone(),
        };
        assert_eq!(*store.demand(&p), 2, "stale fact not served");
        assert_eq!(store.metrics_for(PassId::Deps).invocations, 2);
    }

    #[test]
    fn demand_all_preserves_input_order() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let passes: Vec<CountingPass<'_>> = (0..20)
            .map(|i| CountingPass {
                key: key(PassId::Classify, 100 + i),
                hash: 1,
                deps: vec![],
                runs: &runs,
                output: i64::from(i),
            })
            .collect();
        let exec = Executor::new(4);
        let (got, stats) = store.demand_all(&passes, &exec);
        assert_eq!(runs.load(Ordering::Relaxed), 20);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(**v, i as i64, "results in input order");
        }
        assert!(stats.workers >= 1 && stats.worker_busy_secs.len() == stats.workers);

        // A second fan-out reuses every fact.
        let (_, _) = store.demand_all(&passes, &exec);
        assert_eq!(runs.load(Ordering::Relaxed), 20);
        assert_eq!(store.metrics_for(PassId::Classify).reused, 20);
    }

    #[test]
    fn export_and_import_round_trip_preserves_entries() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let a = CountingPass {
            key: FactKey::new(PassId::Summarize, Scope::Program),
            hash: 5,
            deps: vec![],
            runs: &runs,
            output: 10,
        };
        let b = CountingPass {
            key: key(PassId::Classify, 2),
            hash: 6,
            deps: vec![a.key()],
            runs: &runs,
            output: 20,
        };
        store.demand(&a);
        store.demand(&b);
        let exported = store.export();
        assert_eq!(exported.len(), 2);
        assert_eq!(exported[0].key, a.key(), "deterministic key order");

        // Import into a fresh store: demands reuse, nothing recomputes.
        let fresh = FactStore::new();
        assert_eq!(fresh.import(exported.clone()), 2);
        assert_eq!(*fresh.demand(&a), 10);
        assert_eq!(*fresh.demand(&b), 20);
        assert_eq!(runs.load(Ordering::Relaxed), 2, "imported facts reused");
        assert_eq!(fresh.metrics_for(PassId::Classify).reused, 1);
        // Dependency edges survive the round trip: invalidating the root
        // dirties the imported dependent.
        assert_eq!(fresh.invalidate(a.key()), 2);

        // Import never clobbers existing slots.
        let occupied = FactStore::new();
        let newer = CountingPass {
            key: key(PassId::Classify, 2),
            hash: 999,
            deps: vec![],
            runs: &runs,
            output: 77,
        };
        occupied.demand(&newer);
        assert_eq!(occupied.import(store.export()), 1, "only the absent key");
        assert_eq!(*occupied.demand(&newer), 77, "existing entry untouched");
    }

    /// Regression (persistence × speculation): an export taken while a
    /// demand is mid-`Running`, or after an entry was invalidated, must not
    /// contain that slot — a snapshot written during speculative
    /// pre-classification never persists racing or stale results.
    #[test]
    fn export_skips_running_and_invalid_slots() {
        let store = Arc::new(FactStore::new());
        let runs = AtomicU64::new(0);
        let done = CountingPass {
            key: key(PassId::Classify, 1),
            hash: 1,
            deps: vec![],
            runs: &runs,
            output: 1,
        };
        store.demand(&done);

        let started = Arc::new(AtomicU64::new(0));
        let release = Arc::new(AtomicU64::new(0));
        let runner = {
            let (store, started, release) = (store.clone(), started.clone(), release.clone());
            std::thread::spawn(move || {
                struct Held {
                    started: Arc<AtomicU64>,
                    release: Arc<AtomicU64>,
                }
                impl Pass for Held {
                    type Output = i64;
                    fn key(&self) -> FactKey {
                        key(PassId::Classify, 2)
                    }
                    fn input_hash(&self) -> u128 {
                        1
                    }
                    fn run(&self) -> i64 {
                        self.started.store(1, Ordering::SeqCst);
                        let t0 = Instant::now();
                        while self.release.load(Ordering::SeqCst) == 0 && t0.elapsed().as_secs() < 5
                        {
                            std::thread::yield_now();
                        }
                        2
                    }
                }
                *store.demand(&Held { started, release })
            })
        };
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }

        // Mid-flight: the Running slot must not be exported.
        let snap = store.export();
        assert_eq!(snap.len(), 1, "running slot excluded from export");
        assert_eq!(snap[0].key, key(PassId::Classify, 1));

        // The in-flight fact is invalidated before it finishes (the
        // epoch-cancel race): once stored, it is dirty — still unexported.
        assert_eq!(store.invalidate(key(PassId::Classify, 2)), 1);
        release.store(1, Ordering::SeqCst);
        runner.join().unwrap();
        let snap = store.export();
        assert_eq!(snap.len(), 1, "invalidated result excluded from export");

        // Invalidate the finished fact too: nothing left to persist.
        store.invalidate(key(PassId::Classify, 1));
        assert!(store.export().is_empty());
    }

    /// Pins the `wait_secs` accounting: a worker of `demand_all` that
    /// blocks on a fact some other thread (e.g. the speculation claimant)
    /// is computing charges the parked interval to `wait_secs` exactly
    /// once, and the executor's per-worker busy seconds exclude it — the
    /// same interval must never be double-counted as busy *and* waiting.
    #[test]
    fn demand_all_worker_busy_excludes_blocked_wait() {
        const HOLD_MS: u64 = 200;
        let store = Arc::new(FactStore::new());
        let started = Arc::new(AtomicU64::new(0));

        struct SlowPass {
            started: Arc<AtomicU64>,
        }
        impl Pass for SlowPass {
            type Output = i64;
            fn key(&self) -> FactKey {
                key(PassId::Classify, 50)
            }
            fn input_hash(&self) -> u128 {
                1
            }
            fn run(&self) -> i64 {
                self.started.store(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(HOLD_MS));
                5
            }
        }

        // The "speculation claimant": grabs the Running slot first.
        let claimant = {
            let (store, started) = (store.clone(), started.clone());
            std::thread::spawn(move || *store.demand(&SlowPass { started }))
        };
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }

        // A demand_all fan-out whose only item dedups against the claimant:
        // the worker parks for ~HOLD_MS inside `demand`.
        let passes = vec![SlowPass {
            started: started.clone(),
        }];
        let (got, stats) = store.demand_all(&passes, &Executor::new(1));
        assert_eq!(*got[0], 5);
        assert_eq!(claimant.join().unwrap(), 5);

        let m = store.metrics_for(PassId::Classify);
        assert_eq!(m.invocations, 1, "the claimant ran the pass once");
        assert_eq!(m.deduped, 1, "the worker deduped against it");
        let hold = HOLD_MS as f64 / 1000.0;
        assert!(
            m.wait_secs >= hold * 0.5,
            "blocked time lands in wait_secs once: {}",
            m.wait_secs
        );
        assert!(
            m.wait_secs < hold * 3.0,
            "wait_secs must not double-count the parked interval: {}",
            m.wait_secs
        );
        // The executor must not also bill the parked interval as busy.
        assert!(
            stats.busy_secs() < hold * 0.5,
            "worker busy seconds must exclude time parked in demand: {} (wait {})",
            stats.busy_secs(),
            m.wait_secs
        );
    }

    #[test]
    fn shared_tier_serves_across_overlay_stores() {
        let tier = Arc::new(SharedFactTier::new());
        let a = FactStore::with_shared(tier.clone());
        let b = FactStore::with_shared(tier.clone());
        let runs = AtomicU64::new(0);
        let p = CountingPass {
            key: key(PassId::Classify, 1),
            hash: 7,
            deps: vec![key(PassId::Deps, 9)],
            runs: &runs,
            output: 42,
        };
        assert_eq!(*a.demand(&p), 42);
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        // The second store never runs the pass: the tier answers.
        assert_eq!(*b.demand(&p), 42);
        assert_eq!(runs.load(Ordering::Relaxed), 1, "tier served the fact");
        let m = b.metrics_for(PassId::Classify);
        assert_eq!((m.invocations, m.reused, m.shared), (0, 0, 1));
        // A tier hit installs locally: the third demand is a plain reuse.
        assert_eq!(*b.demand(&p), 42);
        assert_eq!(b.metrics_for(PassId::Classify).reused, 1);
        // The install carried the tier's recorded deps, so session-scoped
        // invalidation still propagates through shared facts.
        assert_eq!(b.invalidate(key(PassId::Deps, 9)), 1);
        assert!(tier.stats().hits >= 1);
    }

    #[test]
    fn invalidation_under_unchanged_hash_bypasses_tier() {
        let tier = Arc::new(SharedFactTier::new());
        let store = FactStore::with_shared(tier.clone());
        let runs = AtomicU64::new(0);
        let p = CountingPass {
            key: key(PassId::Classify, 3),
            hash: 11,
            deps: vec![],
            runs: &runs,
            output: 5,
        };
        store.demand(&p);
        assert_eq!(tier.stats().inserts, 1, "clean fact published");
        // Invalidate under the *same* hash: the event was not captured by
        // the hash, so the tier copy must not be served back…
        store.invalidate(p.key());
        assert_eq!(*store.demand(&p), 5);
        assert_eq!(
            runs.load(Ordering::Relaxed),
            2,
            "recomputed, not tier-served"
        );
        // …and the recomputed value is not republished either.
        assert_eq!(tier.stats().inserts, 1, "no republish under a bypassed key");
        assert_eq!(store.metrics_for(PassId::Classify).shared, 0);
    }

    #[test]
    fn assert_local_stores_publish_only_assertion_independent_passes() {
        let tier = Arc::new(SharedFactTier::new());
        let tainted = FactStore::with_shared(tier.clone());
        tainted.set_assert_local(true);
        let runs = AtomicU64::new(0);
        let classify = CountingPass {
            key: key(PassId::Classify, 4),
            hash: 1,
            deps: vec![],
            runs: &runs,
            output: 1,
        };
        let summarize = CountingPass {
            key: FactKey::new(PassId::Summarize, Scope::Program),
            hash: 2,
            deps: vec![],
            runs: &runs,
            output: 2,
        };
        tainted.demand(&classify);
        tainted.demand(&summarize);
        assert_eq!(tier.stats().inserts, 1, "only summarize published");
        // Another tenant recomputes the private fact but shares the summary.
        let clean = FactStore::with_shared(tier.clone());
        clean.demand(&classify);
        clean.demand(&summarize);
        assert_eq!(runs.load(Ordering::Relaxed), 3, "classify recomputed once");
        let m = clean.metrics_for(PassId::Summarize);
        assert_eq!((m.invocations, m.shared), (0, 1));
    }

    #[test]
    fn budget_eviction_is_transparent_to_re_demands() {
        // CountingPass output is an i64 behind a Classify key, so
        // approx_value_bytes charges the 64-byte floor per fact.
        let store = FactStore::new();
        store.set_budget(Some(64 * 4));
        let runs = AtomicU64::new(0);
        let passes: Vec<CountingPass<'_>> = (0..32)
            .map(|i| CountingPass {
                key: key(PassId::Classify, 200 + i),
                hash: 1,
                deps: vec![],
                runs: &runs,
                output: i64::from(i),
            })
            .collect();
        for p in &passes {
            store.demand(p);
        }
        let bs = store.byte_stats();
        assert!(bs.evicted > 0, "over-budget demands evicted cold facts");
        assert!(
            bs.resident_bytes <= 64 * 4 + 64,
            "resident stays near budget: {}",
            bs.resident_bytes
        );
        // Every re-demand still returns the right value (recomputed or
        // resident — bit-identical either way).
        for (i, p) in passes.iter().enumerate() {
            assert_eq!(*store.demand(p), i as i64);
        }
        // An unbounded store never evicts.
        let unbounded = FactStore::new();
        for p in &passes {
            unbounded.demand(p);
        }
        assert_eq!(unbounded.byte_stats().evicted, 0);
        assert_eq!(unbounded.len(), 32);
    }

    #[test]
    fn eviction_spares_running_and_invalid_slots() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let p = CountingPass {
            key: key(PassId::Classify, 1),
            hash: 1,
            deps: vec![],
            runs: &runs,
            output: 9,
        };
        store.demand(&p);
        store.invalidate(p.key());
        // A budget of one byte forces the sweep; the invalid tombstone must
        // survive it (it pins the key tier-bypassed).
        store.set_budget(Some(1));
        let filler = CountingPass {
            key: key(PassId::Classify, 2),
            hash: 1,
            deps: vec![],
            runs: &runs,
            output: 10,
        };
        store.demand(&filler);
        assert_eq!(*store.demand(&p), 9);
        assert_eq!(
            runs.load(Ordering::Relaxed),
            3,
            "tombstone forced recompute"
        );
    }

    #[test]
    fn executor_claims_every_index_once() {
        let exec = Executor::new(3);
        let hits: Vec<AtomicU64> = (0..37).map(|_| AtomicU64::new(0)).collect();
        let stats = exec.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // SUIF_EXECUTOR_THREADS (the thread-stress CI job) overrides the
        // constructor's count, so bound by whichever is in force.
        assert!(stats.workers <= exec.threads().max(1));
        assert_eq!(stats.worker_busy_secs.len(), stats.workers);
        assert!(stats.busy_secs() >= 0.0 && stats.wall_secs >= 0.0);
    }

    #[test]
    fn executor_service_runs_detached_jobs() {
        let svc = ExecutorService::new(1);
        assert!(svc.workers() >= 2, "floor of two workers");
        let counter = Arc::new(AtomicU64::new(0));
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let done_tx = done_tx.clone();
            svc.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                let _ = done_tx.send(());
            });
        }
        for _ in 0..64 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("job completion");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(svc.submitted(), 64);
        drop(svc); // joins workers; queued jobs already drained
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn executor_service_drop_finishes_queued_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let svc = ExecutorService::new(2);
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                svc.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // Drop joins after the queue drains.
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}
