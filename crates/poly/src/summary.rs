//! `<R, E, W, M>` array-access summaries and the data-flow operators of
//! Fig. 5-2 (meet `∧` and transfer `T`).

use crate::expr::{LinExpr, Var};
use crate::section::{ArrayId, Section};
use std::collections::BTreeMap;
use std::fmt;

/// Per-array access summary: a four-tuple `<R, E, W, M>` where
/// * `R` — all array sections that **may** have been read,
/// * `E` — the **upwards-exposed** read sections (read before any write in
///   the region),
/// * `W` — the **may-write** sections,
/// * `M` — the **must-write** sections.
///
/// Invariants maintained by construction: `E ⊆ R`, and `M` under-approximates
/// while `R`, `E`, `W` over-approximate (the paper keeps `W` and `M`
/// disjoint; we instead keep `M ⊆ W` and treat `W` as the full may-write set,
/// which is equivalent information and simpler to maintain conservatively).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SectionSummary {
    /// May-read sections.
    pub read: Section,
    /// Upwards-exposed read sections.
    pub exposed: Section,
    /// May-write sections.
    pub write: Section,
    /// Must-write sections.
    pub must_write: Section,
}

impl SectionSummary {
    /// The all-empty summary for an array.
    pub fn empty(array: ArrayId, ndims: u8) -> Self {
        SectionSummary {
            read: Section::empty(array, ndims),
            exposed: Section::empty(array, ndims),
            write: Section::empty(array, ndims),
            must_write: Section::empty(array, ndims),
        }
    }

    /// Summary of a single read access.
    pub fn of_read(sec: Section) -> Self {
        SectionSummary {
            read: sec.clone(),
            exposed: sec.clone(),
            write: Section::empty(sec.array, sec.ndims),
            must_write: Section::empty(sec.array, sec.ndims),
        }
    }

    /// Summary of a single (unconditional) write access.
    pub fn of_write(sec: Section) -> Self {
        SectionSummary {
            read: Section::empty(sec.array, sec.ndims),
            exposed: Section::empty(sec.array, sec.ndims),
            write: sec.clone(),
            must_write: sec,
        }
    }

    /// The control-flow meet `∧` of Fig. 5-2:
    /// `<R1∪R2, E1∪E2, W1∪W2, M1∩M2>`.
    pub fn meet(&self, other: &SectionSummary) -> SectionSummary {
        SectionSummary {
            read: self.read.union(&other.read),
            exposed: self.exposed.union(&other.exposed),
            write: self.write.union(&other.write),
            must_write: self.must_write.intersect(&other.must_write),
        }
    }

    /// The transfer function `T` of Fig. 5-2 composing a node summary `n`
    /// (executed first) with the summary of the code after it:
    /// `T(<R,E,W,M>, <Rn,En,Wn,Mn>) = <Rn∪R, En∪(E−Mn), Wn∪W, Mn∪M>`.
    pub fn transfer_before(&self, node: &SectionSummary) -> SectionSummary {
        SectionSummary {
            read: node.read.union(&self.read),
            exposed: node.exposed.union(&self.exposed.subtract(&node.must_write)),
            write: node.write.union(&self.write),
            must_write: node.must_write.union(&self.must_write),
        }
    }

    /// The loop closure of §5.2.2.1: project the loop-index symbol out of
    /// every component.  The must-write component uses *exact* projection and
    /// drops to empty when exactness cannot be guaranteed (sound
    /// under-approximation).
    pub fn closure(&self, loop_index: Var) -> SectionSummary {
        let must = self
            .must_write
            .closure_exact(loop_index)
            .unwrap_or_else(|| Section::empty(self.must_write.array, self.must_write.ndims));
        SectionSummary {
            read: self.read.closure(loop_index),
            exposed: self.exposed.closure(loop_index),
            write: self.write.closure(loop_index),
            must_write: must,
        }
    }

    /// Structure-preserving loop closure: may-components keep inexactly
    /// projectable indices as fresh existential symbols (see
    /// [`Section::closure_keep`]); the must-write component stays exact or
    /// drops.
    pub fn closure_with(&self, loop_index: Var, fresh: &mut dyn FnMut() -> Var) -> SectionSummary {
        let must = self
            .must_write
            .closure_exact(loop_index)
            .unwrap_or_else(|| Section::empty(self.must_write.array, self.must_write.ndims));
        SectionSummary {
            read: self.read.closure_keep(loop_index, fresh),
            exposed: self.exposed.closure_keep(loop_index, fresh),
            write: self.write.closure_keep(loop_index, fresh),
            must_write: must,
        }
    }

    /// Structure-preserving projection of loop-varying symbols.
    pub fn project_symbols_keep(
        &self,
        pred: &dyn Fn(Var) -> bool,
        fresh: &mut dyn FnMut() -> Var,
    ) -> SectionSummary {
        let must_ok = self
            .must_write
            .set
            .vars()
            .into_iter()
            .all(|v| !(matches!(v, Var::Sym(_)) && pred(v)));
        SectionSummary {
            read: self.read.project_symbols_keep(pred, fresh),
            exposed: self.exposed.project_symbols_keep(pred, fresh),
            write: self.write.project_symbols_keep(pred, fresh),
            must_write: if must_ok {
                self.must_write.clone()
            } else {
                Section::empty(self.must_write.array, self.must_write.ndims)
            },
        }
    }

    /// Substitute a symbol in every component (parameter mapping).
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> SectionSummary {
        SectionSummary {
            read: self.read.substitute(v, repl),
            exposed: self.exposed.substitute(v, repl),
            write: self.write.substitute(v, repl),
            must_write: self.must_write.substitute(v, repl),
        }
    }

    /// Project away symbols selected by `pred` (callee locals); must-writes
    /// become empty unless exact projection applies to all of them — we keep
    /// it simple and sound by projecting may-parts and keeping must only when
    /// it does not mention the symbols.
    pub fn project_symbols(&self, pred: impl Fn(Var) -> bool + Copy) -> SectionSummary {
        let must_ok = self
            .must_write
            .set
            .vars()
            .into_iter()
            .all(|v| !(matches!(v, Var::Sym(_)) && pred(v)));
        SectionSummary {
            read: self.read.project_symbols(pred),
            exposed: self.exposed.project_symbols(pred),
            write: self.write.project_symbols(pred),
            must_write: if must_ok {
                self.must_write.clone()
            } else {
                Section::empty(self.must_write.array, self.must_write.ndims)
            },
        }
    }

    /// True when every component is empty.
    pub fn is_empty(&self) -> bool {
        self.read.is_empty() && self.write.is_empty()
    }
}

impl fmt::Display for SectionSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<R: {}, E: {}, W: {}, M: {}>",
            self.read.set, self.exposed.set, self.write.set, self.must_write.set
        )
    }
}

/// A whole-region access summary: one [`SectionSummary`] per array touched.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AccessSummary {
    per_array: BTreeMap<ArrayId, SectionSummary>,
    /// Dimensionality registry so absent entries can be materialized.
    dims: BTreeMap<ArrayId, u8>,
}

impl AccessSummary {
    /// The empty summary.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Summary of a single access.
    pub fn of(sum: SectionSummary) -> Self {
        let mut s = Self::default();
        let id = sum.read.array;
        let nd = sum.read.ndims;
        s.dims.insert(id, nd);
        s.per_array.insert(id, sum);
        s
    }

    /// Look up (or create an empty) per-array summary.
    pub fn get(&self, array: ArrayId) -> Option<&SectionSummary> {
        self.per_array.get(&array)
    }

    /// All arrays with a (possibly empty) summary.
    pub fn arrays(&self) -> impl Iterator<Item = ArrayId> + '_ {
        self.per_array.keys().copied()
    }

    /// Iterate over `(array, summary)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ArrayId, &SectionSummary)> {
        self.per_array.iter().map(|(&a, s)| (a, s))
    }

    /// Number of arrays summarized.
    pub fn len(&self) -> usize {
        self.per_array.len()
    }

    /// True when no array is summarized.
    pub fn is_empty(&self) -> bool {
        self.per_array.is_empty()
    }

    /// Insert / replace a per-array summary.
    pub fn insert(&mut self, sum: SectionSummary) {
        let id = sum.read.array;
        self.dims.insert(id, sum.read.ndims);
        self.per_array.insert(id, sum);
    }

    fn ensure(&mut self, array: ArrayId, ndims: u8) -> &mut SectionSummary {
        self.dims.entry(array).or_insert(ndims);
        self.per_array
            .entry(array)
            .or_insert_with(|| SectionSummary::empty(array, ndims))
    }

    /// Pointwise meet `∧` across arrays.  Arrays present on one side only
    /// meet with the empty summary (whose `M` is empty, making the result's
    /// must-write empty — correct, since the other path writes nothing).
    pub fn meet(&self, other: &AccessSummary) -> AccessSummary {
        let mut out = AccessSummary::empty();
        let keys: std::collections::BTreeSet<ArrayId> = self
            .per_array
            .keys()
            .chain(other.per_array.keys())
            .copied()
            .collect();
        for a in keys {
            let nd = *self
                .dims
                .get(&a)
                .or_else(|| other.dims.get(&a))
                .unwrap_or(&1);
            let ea = SectionSummary::empty(a, nd);
            let x = self.per_array.get(&a).unwrap_or(&ea);
            let y = other.per_array.get(&a).unwrap_or(&ea);
            out.insert(x.meet(y));
        }
        out
    }

    /// Pointwise transfer `T`: `node` executes before `self` (the summary of
    /// the code following the node).
    pub fn transfer_before(&self, node: &AccessSummary) -> AccessSummary {
        let mut out = AccessSummary::empty();
        let keys: std::collections::BTreeSet<ArrayId> = self
            .per_array
            .keys()
            .chain(node.per_array.keys())
            .copied()
            .collect();
        for a in keys {
            let nd = *self
                .dims
                .get(&a)
                .or_else(|| node.dims.get(&a))
                .unwrap_or(&1);
            let ea = SectionSummary::empty(a, nd);
            let after = self.per_array.get(&a).unwrap_or(&ea);
            let n = node.per_array.get(&a).unwrap_or(&ea);
            out.insert(after.transfer_before(n));
        }
        out
    }

    /// Sequence two summaries: `first` then `second` (convenience wrapper
    /// around `transfer_before` with flipped argument order).
    pub fn then(&self, second: &AccessSummary) -> AccessSummary {
        second.transfer_before(self)
    }

    /// Structure-preserving closure across all arrays.
    pub fn closure_with(&self, loop_index: Var, fresh: &mut dyn FnMut() -> Var) -> AccessSummary {
        let mut out = AccessSummary::empty();
        for s in self.per_array.values() {
            out.insert(s.closure_with(loop_index, fresh));
        }
        out
    }

    /// Structure-preserving projection across all arrays.
    pub fn project_symbols_keep(
        &self,
        pred: &dyn Fn(Var) -> bool,
        fresh: &mut dyn FnMut() -> Var,
    ) -> AccessSummary {
        let mut out = AccessSummary::empty();
        for s in self.per_array.values() {
            out.insert(s.project_symbols_keep(pred, fresh));
        }
        out
    }

    /// Apply the loop closure to every array summary.
    pub fn closure(&self, loop_index: Var) -> AccessSummary {
        let mut out = AccessSummary::empty();
        for s in self.per_array.values() {
            out.insert(s.closure(loop_index));
        }
        out
    }

    /// Substitute a symbol everywhere.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> AccessSummary {
        let mut out = AccessSummary::empty();
        for s in self.per_array.values() {
            out.insert(s.substitute(v, repl));
        }
        out
    }

    /// Project away symbols everywhere.
    pub fn project_symbols(&self, pred: impl Fn(Var) -> bool + Copy) -> AccessSummary {
        let mut out = AccessSummary::empty();
        for s in self.per_array.values() {
            out.insert(s.project_symbols(pred));
        }
        out
    }

    /// Record a read access.
    pub fn add_read(&mut self, sec: Section) {
        let cur = self.ensure(sec.array, sec.ndims).clone();
        // read happens *after* nothing; for a single access use of_read and
        // sequence.  Here we union into R and E (callers sequence statements
        // via transfer, so add_* is only used for atomic node construction).
        let mut s = cur;
        s.read = s.read.union(&sec);
        s.exposed = s.exposed.union(&sec);
        self.insert(s);
    }

    /// Record a write access (conditionally executed writes should pass
    /// `must = false`).
    pub fn add_write(&mut self, sec: Section, must: bool) {
        let cur = self.ensure(sec.array, sec.ndims).clone();
        let mut s = cur;
        s.write = s.write.union(&sec);
        if must {
            s.must_write = s.must_write.union(&sec);
        }
        self.insert(s);
    }
}

impl fmt::Display for AccessSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.per_array.is_empty() {
            return write!(f, "<empty>");
        }
        for (a, s) in &self.per_array {
            writeln!(f, "{a}: {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, PolySet, Polyhedron};

    fn aid() -> ArrayId {
        ArrayId(7)
    }

    fn point(i: i64) -> Section {
        Section::point(aid(), &[LinExpr::constant(i)])
    }

    fn range(lo: i64, hi: i64) -> Section {
        let d = LinExpr::var(Var::Dim(0));
        Section {
            array: aid(),
            ndims: 1,
            set: PolySet::from_poly(Polyhedron::from_constraints([
                Constraint::geq(&d, &LinExpr::constant(lo)),
                Constraint::leq(&d, &LinExpr::constant(hi)),
            ])),
        }
    }

    #[test]
    fn write_then_read_is_not_exposed() {
        // a(3) = ..; .. = a(3)  — the read is covered by the must-write.
        let w = AccessSummary::of(SectionSummary::of_write(point(3)));
        let r = AccessSummary::of(SectionSummary::of_read(point(3)));
        let seq = w.then(&r);
        let s = seq.get(aid()).unwrap();
        assert!(s.exposed.is_empty(), "exposed = {}", s.exposed.set);
        assert!(!s.read.is_empty());
        assert!(!s.must_write.is_empty());
    }

    #[test]
    fn read_then_write_is_exposed() {
        let w = AccessSummary::of(SectionSummary::of_write(point(3)));
        let r = AccessSummary::of(SectionSummary::of_read(point(3)));
        let seq = r.then(&w);
        let s = seq.get(aid()).unwrap();
        assert!(!s.exposed.is_empty());
    }

    #[test]
    fn meet_drops_one_sided_must_writes() {
        // if (..) a(1:5) = ..   — after the IF, nothing is must-written.
        let w = AccessSummary::of(SectionSummary::of_write(range(1, 5)));
        let nothing = AccessSummary::empty();
        let m = w.meet(&nothing);
        let s = m.get(aid()).unwrap();
        assert!(s.must_write.is_empty());
        assert!(!s.write.is_empty());
    }

    #[test]
    fn partial_kill_leaves_remainder_exposed() {
        // a(1:3) = ..; .. = a(1:5)  — exposed should be a subset of [4,5]-ish
        // (over-approximation may keep more, but must not contain [1,3] fully
        // covered points and must contain 4 and 5).
        let w = AccessSummary::of(SectionSummary::of_write(range(1, 3)));
        let r = AccessSummary::of(SectionSummary::of_read(range(1, 5)));
        let seq = w.then(&r);
        let s = seq.get(aid()).unwrap();
        let at = |v: i64| {
            s.exposed
                .set
                .contains_point(&|var| if var == Var::Dim(0) { Some(v) } else { None })
                .unwrap()
        };
        assert!(at(4) && at(5));
        assert!(!at(2));
    }

    #[test]
    fn loop_closure_summarizes_iteration_space() {
        // for i in 1..=n: a(i) = ..   ==> W = M = a(1:n)
        let i = Var::Sym(1);
        let mut body = SectionSummary::of_write(Section::point(aid(), &[LinExpr::var(i)]));
        let bound_lo = Constraint::geq(&LinExpr::var(i), &LinExpr::constant(1));
        let bound_hi = Constraint::leq(&LinExpr::var(i), &LinExpr::constant(9));
        body.write.set = body.write.set.constrain(&bound_lo).constrain(&bound_hi);
        body.must_write.set = body
            .must_write
            .set
            .constrain(&bound_lo)
            .constrain(&bound_hi);
        let closed = body.closure(i);
        assert!(closed.must_write.provably_subset_of(&range(1, 9)));
        assert!(range(1, 9).provably_subset_of(&closed.must_write));
    }

    #[test]
    fn closure_must_write_drops_when_inexact() {
        // Writes a(2*i): integer projection is NOT the rational shadow
        // (only even elements written), so must-write must drop to empty.
        let i = Var::Sym(1);
        let sec = Section::point(aid(), &[LinExpr::term(i, 2)]);
        let body = SectionSummary::of_write(sec);
        let closed = body.closure(i);
        assert!(closed.must_write.is_empty());
        assert!(!closed.write.is_empty());
    }
}
