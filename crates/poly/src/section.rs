//! Array-section descriptors (§5.2.1).

use crate::expr::{LinExpr, Var};
use crate::polyhedron::Polyhedron;
use crate::polyset::PolySet;
use std::fmt;

/// Opaque identity of an array variable; the meaning of the id is owned by
/// the client (the analysis crate maps IR variables here).  Two arrays that
/// may overlap in storage (common-block aliases) must be mapped to the same
/// `ArrayId` by the client, per §3.4.2.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// An array section: the set of index tuples `(d0, .., d{ndims-1})` of one
/// array touched by some code region, described by a union of systems of
/// linear inequalities over the dimension variables and free program symbols.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Section {
    /// The array this section belongs to.
    pub array: ArrayId,
    /// Number of dimensions of the (declared) array.
    pub ndims: u8,
    /// The index set.
    pub set: PolySet,
}

impl Section {
    /// The empty section of an array.
    pub fn empty(array: ArrayId, ndims: u8) -> Self {
        Section {
            array,
            ndims,
            set: PolySet::empty(),
        }
    }

    /// The whole-array section (every index tuple) — the conservative
    /// approximation used for non-affine subscripts (§5.2.1: "a non-affine
    /// index in a dimension is replaced by: the entire dimension may be
    /// accessed").
    pub fn whole(array: ArrayId, ndims: u8) -> Self {
        let mut s = Section {
            array,
            ndims,
            set: PolySet::universe(),
        };
        s.set.mark_approximate();
        s
    }

    /// A section for a single access `a(e0, .., ek)`: `{ d_i == e_i }`.
    pub fn point(array: ArrayId, subscripts: &[LinExpr]) -> Self {
        let mut p = Polyhedron::universe();
        for (i, e) in subscripts.iter().enumerate() {
            p.add_constraint(crate::Constraint::eq(&LinExpr::var(Var::Dim(i as u8)), e));
        }
        Section {
            array,
            ndims: subscripts.len() as u8,
            set: PolySet::from_poly(p),
        }
    }

    /// True when the section denotes no elements.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Union with another section of the same array.
    pub fn union(&self, other: &Section) -> Section {
        debug_assert_eq!(self.array, other.array);
        Section {
            array: self.array,
            ndims: self.ndims.max(other.ndims),
            set: self.set.union(&other.set),
        }
    }

    /// Intersection.
    pub fn intersect(&self, other: &Section) -> Section {
        debug_assert_eq!(self.array, other.array);
        Section {
            array: self.array,
            ndims: self.ndims.max(other.ndims),
            set: self.set.intersect(&other.set),
        }
    }

    /// Difference (over-approximate; see [`PolySet::subtract`]).
    pub fn subtract(&self, other: &Section) -> Section {
        debug_assert_eq!(self.array, other.array);
        Section {
            array: self.array,
            ndims: self.ndims,
            set: self.set.subtract(&other.set),
        }
    }

    /// The closure operator of §5.2.2.1: project away a loop-index symbol.
    pub fn closure(&self, loop_index: Var) -> Section {
        Section {
            array: self.array,
            ndims: self.ndims,
            set: self.set.project_out(loop_index),
        }
    }

    /// Closure that preserves integer structure: project the loop index
    /// when the projection is integer-exact, otherwise *keep* it as an
    /// existentially quantified variable renamed to a fresh symbol (so that
    /// distinct sections never correlate through it).  This is how strided
    /// accesses like `d0 == i + 64·j` keep their modular structure, which
    /// the multi-dimensional sections of the paper preserve natively.
    pub fn closure_keep(&self, loop_index: Var, fresh: &mut dyn FnMut() -> Var) -> Section {
        let mut out = PolySet::empty();
        if self.set.is_approximate() {
            out.mark_approximate();
        }
        let mut renamed: Option<Var> = None;
        for p in self.set.disjuncts() {
            match p.project_exact(loop_index) {
                Some(q) => out.push(q),
                None => {
                    let r = *renamed.get_or_insert_with(&mut *fresh);
                    out.push(p.rename(loop_index, r));
                }
            }
        }
        Section {
            array: self.array,
            ndims: self.ndims,
            set: out,
        }
    }

    /// Like [`Section::closure_keep`] for a set of symbols selected by
    /// `pred` (used to eliminate loop-varying symbols without losing
    /// strides).
    pub fn project_symbols_keep(
        &self,
        pred: &dyn Fn(Var) -> bool,
        fresh: &mut dyn FnMut() -> Var,
    ) -> Section {
        let mut cur = self.clone();
        loop {
            let Some(v) = cur
                .set
                .vars()
                .into_iter()
                .find(|&v| matches!(v, Var::Sym(_)) && pred(v))
            else {
                return cur;
            };
            cur = cur.closure_keep(v, fresh);
            // closure_keep renames to fresh symbols outside pred's range,
            // so the loop terminates.
        }
    }

    /// Exact closure, `None` when exactness cannot be guaranteed (used for
    /// must-write sections).
    pub fn closure_exact(&self, loop_index: Var) -> Option<Section> {
        Some(Section {
            array: self.array,
            ndims: self.ndims,
            set: self.set.project_exact(loop_index)?,
        })
    }

    /// Substitute a symbol (e.g. actual-for-formal parameter mapping).
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> Section {
        Section {
            array: self.array,
            ndims: self.ndims,
            set: self.set.substitute(v, repl),
        }
    }

    /// Eliminate all symbols selected by `pred` (over-approximating), e.g.
    /// local variables of a callee when mapping a summary to the caller.
    pub fn project_symbols(&self, pred: impl Fn(Var) -> bool) -> Section {
        let mut out = PolySet::empty();
        for p in self.set.disjuncts() {
            out.push(p.project_out_all(|v| matches!(v, Var::Sym(_)) && pred(v)));
        }
        if self.set.is_approximate() {
            out.mark_approximate();
        }
        Section {
            array: self.array,
            ndims: self.ndims,
            set: out,
        }
    }

    /// Shift every dimension-0 index by `offset` (sub-array argument passing
    /// `a(k)`: callee index `d0` maps to caller index `d0 + k - 1`).
    pub fn shift_dim0(&self, offset: &LinExpr) -> Section {
        // d0_caller = d0_callee + offset - 1  (both 1-based)
        // We rewrite the set over a fresh var then rename back.
        let tmp = Var::Sym(u32::MAX);
        let repl = LinExpr::var(tmp).sub(offset).offset(1);
        let mut out = PolySet::empty();
        for p in self.set.disjuncts() {
            // substitute d0 := tmp - offset + 1, then rename tmp -> d0
            out.push(p.substitute(Var::Dim(0), &repl).rename(tmp, Var::Dim(0)));
        }
        if self.set.is_approximate() {
            out.mark_approximate();
        }
        Section {
            array: self.array,
            ndims: self.ndims,
            set: out,
        }
    }

    /// Retarget this section at a different array id (parameter mapping).
    pub fn retarget(&self, array: ArrayId, ndims: u8) -> Section {
        Section {
            array,
            ndims,
            set: self.set.clone(),
        }
    }

    /// Do the two sections provably not overlap?
    pub fn provably_disjoint(&self, other: &Section) -> bool {
        debug_assert_eq!(self.array, other.array);
        self.set.provably_disjoint(&other.set)
    }

    /// Is `self ⊆ other` provable?
    pub fn provably_subset_of(&self, other: &Section) -> bool {
        self.set.provably_subset_of(&other.set)
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}d]: {}", self.array, self.ndims, self.set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Constraint;

    fn a() -> ArrayId {
        ArrayId(0)
    }

    fn range_section(lo: i64, hi: i64) -> Section {
        let d = LinExpr::var(Var::Dim(0));
        Section {
            array: a(),
            ndims: 1,
            set: PolySet::from_poly(Polyhedron::from_constraints([
                Constraint::geq(&d, &LinExpr::constant(lo)),
                Constraint::leq(&d, &LinExpr::constant(hi)),
            ])),
        }
    }

    #[test]
    fn point_section_contains_only_that_index() {
        let s = Section::point(a(), &[LinExpr::constant(5)]);
        let at = |v: i64| {
            s.set
                .contains_point(&|var| if var == Var::Dim(0) { Some(v) } else { None })
                .unwrap()
        };
        assert!(at(5) && !at(4));
    }

    #[test]
    fn closure_over_loop_index() {
        // a(i) for i in 1..=n  ==> a(1:n)
        let i = Var::Sym(1);
        let mut sec = Section::point(a(), &[LinExpr::var(i)]);
        let ip = LinExpr::var(i);
        sec.set = sec
            .set
            .constrain(&Constraint::geq(&ip, &LinExpr::constant(1)))
            .constrain(&Constraint::leq(&ip, &LinExpr::constant(8)));
        let closed = sec.closure(i);
        assert!(closed.provably_subset_of(&range_section(1, 8)));
        assert!(range_section(1, 8).provably_subset_of(&closed));
    }

    #[test]
    fn shift_dim0_models_subarray_argument() {
        // Callee touches d0 in [1, n]; passed base a(k) means caller elements
        // [k, k+n-1].
        let k = Var::Sym(3);
        let callee = range_section(1, 4);
        let caller = callee.shift_dim0(&LinExpr::var(k));
        // With k = 10 the section is [10, 13].
        let at = |d: i64| {
            caller
                .set
                .contains_point(&|var| match var {
                    Var::Dim(0) => Some(d),
                    v if v == k => Some(10),
                    _ => None,
                })
                .unwrap()
        };
        assert!(at(10) && at(13));
        assert!(!at(9) && !at(14));
    }

    #[test]
    fn whole_is_approximate_universe() {
        let w = Section::whole(a(), 2);
        assert!(w.set.is_universe());
        assert!(w.set.is_approximate());
    }

    #[test]
    fn disjoint_ranges() {
        assert!(range_section(1, 5).provably_disjoint(&range_section(6, 10)));
        assert!(!range_section(1, 6).provably_disjoint(&range_section(6, 10)));
    }
}
