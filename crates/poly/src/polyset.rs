//! Finite unions of polyhedra — the paper's "sets of systems of linear
//! inequalities" (§5.2.1).

use crate::constraint::Constraint;
use crate::expr::{LinExpr, Var};
use crate::polyhedron::Polyhedron;
use crate::{subtract_test_budget, MAX_DISJUNCTS, SUBTRACT_WORK_BUDGET};
use std::fmt;

/// A union (disjunction) of convex polyhedra.
///
/// The empty union denotes the empty set.  A `PolySet` may carry an
/// `approximate` flag meaning it over-approximates the intended set (sound
/// for may-information).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PolySet {
    disjuncts: Vec<Polyhedron>,
    approximate: bool,
}

impl PolySet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The universe.
    pub fn universe() -> Self {
        PolySet {
            disjuncts: vec![Polyhedron::universe()],
            approximate: false,
        }
    }

    /// A single-polyhedron set.
    pub fn from_poly(p: Polyhedron) -> Self {
        let mut s = PolySet::empty();
        s.push(p);
        s
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Polyhedron] {
        &self.disjuncts
    }

    /// Rebuild from previously observed parts, verbatim.
    ///
    /// Unlike [`PolySet::push`] this performs no subsumption or widening —
    /// the parts must come from an earlier set (e.g. a decoded snapshot),
    /// where those reductions already ran; re-running them would change the
    /// representation and break bit-identical round-trips.
    pub fn from_parts(disjuncts: Vec<Polyhedron>, approximate: bool) -> Self {
        PolySet {
            disjuncts,
            approximate,
        }
    }

    /// The set-level `approximate` flag alone, *without* folding in the
    /// per-disjunct flags the way [`PolySet::is_approximate`] does.  This is
    /// the raw field a faithful serialization must capture.
    pub fn set_approximate(&self) -> bool {
        self.approximate
    }

    /// True when the set is syntactically empty (no satisfiable disjunct kept).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// True when any disjunct is the universe.
    pub fn is_universe(&self) -> bool {
        self.disjuncts.iter().any(|p| p.is_universe())
    }

    /// True if precision was lost building this set.
    pub fn is_approximate(&self) -> bool {
        self.approximate || self.disjuncts.iter().any(|p| p.is_approximate())
    }

    /// Mark as over-approximate.
    pub fn mark_approximate(&mut self) {
        self.approximate = true;
    }

    /// Add one disjunct, dropping proven-empty ones and merging duplicates.
    ///
    /// Subsumption uses a *cheap syntactic* test (a disjunct with a
    /// constraint superset is contained in one with a subset) — running the
    /// full Fourier–Motzkin containment here would dominate every analysis
    /// (unions happen on every meet/transfer).
    pub fn push(&mut self, p: Polyhedron) {
        if p.is_proven_empty() {
            return;
        }
        if self.disjuncts.iter().any(|q| q == &p) {
            return;
        }
        let subset_syntactic = |a: &Polyhedron, b: &Polyhedron| {
            // a ⊆ b when every constraint of b also appears in a.
            b.constraints().iter().all(|c| a.constraints().contains(c))
        };
        if self.disjuncts.iter().any(|q| subset_syntactic(&p, q)) {
            return;
        }
        self.disjuncts.retain(|q| !subset_syntactic(q, &p));
        if self.disjuncts.len() >= MAX_DISJUNCTS {
            // Sound widening for may-sets: collapse to the universe over the
            // same variables (keep a single approximate universe disjunct).
            self.disjuncts.clear();
            let mut top = Polyhedron::universe();
            top.mark_approximate();
            self.disjuncts.push(top);
            self.approximate = true;
            return;
        }
        self.disjuncts.push(p);
    }

    /// Union of two sets.
    pub fn union(&self, other: &PolySet) -> PolySet {
        let mut out = self.clone();
        out.approximate |= other.approximate;
        for p in &other.disjuncts {
            out.push(p.clone());
        }
        out
    }

    /// Pairwise intersection.
    pub fn intersect(&self, other: &PolySet) -> PolySet {
        let mut out = PolySet::empty();
        out.approximate = self.approximate || other.approximate;
        for a in &self.disjuncts {
            for b in &other.disjuncts {
                let p = a.intersect(b);
                if !p.prove_empty() {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Set difference `self \ other`, over-approximated (sound for
    /// may-information: the result is a superset of the true difference and a
    /// subset of `self`).
    ///
    /// For each disjunct of `self` we subtract each disjunct of `other` by
    /// distributing its negated constraints; if the blow-up exceeds the
    /// budget we fall back to returning the minuend disjunct unchanged.
    pub fn subtract(&self, other: &PolySet) -> PolySet {
        if other.is_empty() {
            return self.clone();
        }
        let mut current: Vec<Polyhedron> = self.disjuncts.clone();
        let mut approx = self.approximate;
        // Total emptiness-test budget for this call.  Subtracting a
        // many-disjunct subtrahend from a many-disjunct minuend is
        // quadratic in pieces, each piece needing a Fourier-Motzkin
        // emptiness proof; past this budget remaining minuend disjuncts are
        // kept unchanged (sound over-approximation).
        let mut tests_left: isize = subtract_test_budget();
        for sub in &other.disjuncts {
            if sub.is_universe() && !sub.is_approximate() {
                return PolySet::empty();
            }
            if sub.is_approximate() || other.approximate {
                // Subtrahend is over-approximate: subtracting it could remove
                // points that are actually in the true difference — skip it
                // (keeping the minuend is the sound over-approximation).
                approx = true;
                continue;
            }
            let mut next: Vec<Polyhedron> = Vec::new();
            for p in &current {
                // No subset pre-check: `p ⊆ sub` iff every piece below is
                // empty, so the distribution itself detects full removal and
                // a pre-check would compute the exact same emptiness queries
                // twice.
                // Each piece below costs an emptiness proof over roughly
                // `p`'s system; on large systems the distribution is the
                // single most expensive operation of the whole analysis.
                // Past this budget, keep the minuend unchanged (a sound
                // over-approximation of the difference).
                if tests_left <= 0
                    || p.num_constraints() * sub.num_constraints() > SUBTRACT_WORK_BUDGET
                {
                    approx = true;
                    next.push(p.clone());
                    continue;
                }
                // p \ sub = ⋃_{c ∈ sub} (p ∧ ¬c)
                let mut pieces: Vec<Polyhedron> = Vec::new();
                let mut blown = false;
                for c in sub.constraints() {
                    for neg in c.negate() {
                        let mut piece = p.clone();
                        piece.add_constraint(neg);
                        tests_left -= 1;
                        if !piece.prove_empty() {
                            pieces.push(piece);
                        }
                        if pieces.len() > MAX_DISJUNCTS {
                            blown = true;
                            break;
                        }
                    }
                    if blown {
                        break;
                    }
                }
                if blown {
                    approx = true;
                    next.push(p.clone()); // sound over-approximation
                } else {
                    next.extend(pieces);
                }
            }
            current = next;
        }
        let mut out = PolySet::empty();
        out.approximate = approx;
        for p in current {
            out.push(p);
        }
        out
    }

    /// Project a variable out of every disjunct (over-approximate / "closure").
    pub fn project_out(&self, v: Var) -> PolySet {
        let mut out = PolySet::empty();
        out.approximate = self.approximate;
        for p in &self.disjuncts {
            out.push(p.project_out(v));
        }
        out
    }

    /// Exact integer projection of a variable from every disjunct; `None` if
    /// any disjunct cannot be projected exactly.
    pub fn project_exact(&self, v: Var) -> Option<PolySet> {
        let mut out = PolySet::empty();
        out.approximate = self.approximate;
        for p in &self.disjuncts {
            out.push(p.project_exact(v)?);
        }
        Some(out)
    }

    /// Substitute a variable by an expression in every disjunct.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> PolySet {
        let mut out = PolySet::empty();
        out.approximate = self.approximate;
        for p in &self.disjuncts {
            out.push(p.substitute(v, repl));
        }
        out
    }

    /// Rename a variable in every disjunct.
    pub fn rename(&self, from: Var, to: Var) -> PolySet {
        let mut out = PolySet::empty();
        out.approximate = self.approximate;
        for p in &self.disjuncts {
            out.push(p.rename(from, to));
        }
        out
    }

    /// Add one constraint to every disjunct.
    pub fn constrain(&self, c: &Constraint) -> PolySet {
        let mut out = PolySet::empty();
        out.approximate = self.approximate;
        for p in &self.disjuncts {
            let mut q = p.clone();
            q.add_constraint(c.clone());
            if !q.prove_empty() {
                out.push(q);
            }
        }
        out
    }

    /// Can the set be proven empty?
    pub fn prove_empty(&self) -> bool {
        self.disjuncts.iter().all(|p| p.prove_empty())
    }

    /// Does `self ∩ other` provably equal the empty set?
    pub fn provably_disjoint(&self, other: &PolySet) -> bool {
        for a in &self.disjuncts {
            for b in &other.disjuncts {
                if !a.intersect(b).prove_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Does `self ⊆ other` provably hold?
    pub fn provably_subset_of(&self, other: &PolySet) -> bool {
        if self.is_approximate() && !other.is_universe() {
            return false;
        }
        self.disjuncts
            .iter()
            .all(|a| other.disjuncts.iter().any(|b| a.provably_subset_of(b)))
            || self.subtract(other).prove_empty()
    }

    /// Membership of a concrete point.
    pub fn contains_point(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<bool> {
        for p in &self.disjuncts {
            if p.contains_point(env)? {
                return Some(true);
            }
        }
        Some(false)
    }

    /// All variables mentioned.
    pub fn vars(&self) -> std::collections::BTreeSet<Var> {
        let mut out = std::collections::BTreeSet::new();
        for p in &self.disjuncts {
            out.extend(p.vars());
        }
        out
    }
}

impl fmt::Display for PolySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "∅");
        }
        for (i, p) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> Var {
        Var::Sym(id)
    }
    fn x() -> LinExpr {
        LinExpr::var(s(0))
    }

    fn interval(lo: i64, hi: i64) -> Polyhedron {
        Polyhedron::from_constraints([
            Constraint::geq(&x(), &LinExpr::constant(lo)),
            Constraint::leq(&x(), &LinExpr::constant(hi)),
        ])
    }

    #[test]
    fn union_subsumption() {
        // Subsumption is the cheap syntactic test: a disjunct whose
        // constraint set is a superset of another's is dropped.  An exact
        // duplicate is the simplest superset.
        let mut s1 = PolySet::from_poly(interval(1, 10));
        s1.push(interval(1, 10)); // identical — merged
        assert_eq!(s1.disjuncts().len(), 1);
        // [1,10] with the extra constraint x >= 2 is syntactically contained.
        let mut narrower = interval(1, 10);
        narrower.add_constraint(Constraint::geq0(x().offset(-2)));
        s1.push(narrower);
        assert_eq!(s1.disjuncts().len(), 1);
        // [2,5] is semantically inside [1,10] but shares no constraint with
        // it, so the cheap test keeps both (sound, just less compact).
        s1.push(interval(2, 5));
        assert_eq!(s1.disjuncts().len(), 2);
        s1.push(interval(20, 30));
        assert_eq!(s1.disjuncts().len(), 3);
    }

    #[test]
    fn subtract_interval() {
        // [1,10] \ [4,6] = [1,3] ∪ [7,10]
        let a = PolySet::from_poly(interval(1, 10));
        let b = PolySet::from_poly(interval(4, 6));
        let d = a.subtract(&b);
        let at = |v: i64| {
            d.contains_point(&|var| if var == s(0) { Some(v) } else { None })
                .unwrap()
        };
        assert!(at(3) && at(7) && at(1) && at(10));
        assert!(!at(4) && !at(5) && !at(6));
        assert!(!d.is_approximate());
    }

    #[test]
    fn subtract_covering_set_is_empty() {
        let a = PolySet::from_poly(interval(2, 5));
        let b = PolySet::from_poly(interval(1, 10));
        assert!(a.subtract(&b).prove_empty());
    }

    #[test]
    fn disjointness() {
        let a = PolySet::from_poly(interval(1, 5));
        let b = PolySet::from_poly(interval(6, 9));
        let c = PolySet::from_poly(interval(5, 6));
        assert!(a.provably_disjoint(&b));
        assert!(!a.provably_disjoint(&c));
    }

    #[test]
    fn subset_over_unions() {
        let mut a = PolySet::from_poly(interval(1, 3));
        a.push(interval(7, 9));
        let big = PolySet::from_poly(interval(0, 10));
        assert!(a.provably_subset_of(&big));
        assert!(!big.provably_subset_of(&a));
    }

    #[test]
    fn widening_to_universe_is_flagged() {
        let mut s1 = PolySet::empty();
        for i in 0..(MAX_DISJUNCTS as i64 + 4) {
            s1.push(interval(10 * i, 10 * i + 1));
        }
        assert!(s1.is_approximate());
        assert!(s1.is_universe());
    }

    #[test]
    fn approximate_subtrahend_is_skipped() {
        let a = PolySet::from_poly(interval(1, 10));
        let mut b = PolySet::from_poly(interval(1, 10));
        b.mark_approximate();
        let d = a.subtract(&b);
        // Sound behaviour: keep the minuend, flag approximation.
        assert!(!d.prove_empty());
        assert!(d.is_approximate());
    }

    #[test]
    fn closure_projects_loop_index() {
        // d0 == i, 1 <= i <= n  --closure over i-->  1 <= d0 <= n
        let d = LinExpr::var(Var::Dim(0));
        let i = LinExpr::var(s(1));
        let n = LinExpr::var(s(2));
        let p = Polyhedron::from_constraints([
            Constraint::eq(&d, &i),
            Constraint::geq(&i, &LinExpr::constant(1)),
            Constraint::leq(&i, &n),
        ]);
        let set = PolySet::from_poly(p).project_out(s(1));
        let at = |dv: i64, nv: i64| {
            set.contains_point(&|var| match var {
                Var::Dim(0) => Some(dv),
                Var::Sym(2) => Some(nv),
                _ => None,
            })
            .unwrap()
        };
        assert!(at(1, 5) && at(5, 5));
        assert!(!at(0, 5) && !at(6, 5));
    }
    #[test]
    fn subtract_budget_zero_keeps_minuend_approximately() {
        // With a zero budget the subtraction is skipped entirely: the
        // minuend comes back unchanged and flagged approximate (the sound
        // over-approximation the liveness transfer relies on).
        crate::set_subtract_test_budget(Some(0));
        let a = PolySet::from_poly(interval(1, 10));
        let b = PolySet::from_poly(interval(4, 6));
        let d = a.subtract(&b);
        crate::set_subtract_test_budget(None);
        assert!(d.is_approximate());
        for v in [1, 5, 10] {
            assert_eq!(
                d.contains_point(&|var| if var == s(0) { Some(v) } else { None }),
                Some(true),
                "budget-skipped subtract must keep {v}"
            );
        }
        // Default budget restored: the same subtraction is exact again.
        let d2 = a.subtract(&b);
        assert!(!d2.is_approximate());
        assert_eq!(
            d2.contains_point(&|var| if var == s(0) { Some(5) } else { None }),
            Some(false)
        );
    }
}
