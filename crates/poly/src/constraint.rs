//! Linear constraints `expr >= 0` and `expr == 0`.

use crate::expr::{LinExpr, Var};
use std::fmt;

/// Kind of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ConstraintKind {
    /// `expr >= 0`
    GeqZero,
    /// `expr == 0`
    EqZero,
}

/// A single linear constraint over integer-valued variables.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Constraint {
    /// The affine expression constrained against zero.
    pub expr: LinExpr,
    /// Whether this is an inequality or an equality.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// `expr >= 0`.
    pub fn geq0(expr: LinExpr) -> Self {
        Self {
            expr,
            kind: ConstraintKind::GeqZero,
        }
        .normalized()
    }

    /// `expr == 0`.
    pub fn eq0(expr: LinExpr) -> Self {
        Self {
            expr,
            kind: ConstraintKind::EqZero,
        }
        .normalized()
    }

    /// `lhs >= rhs`.
    pub fn geq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Self::geq0(lhs.sub(rhs))
    }

    /// `lhs <= rhs`.
    pub fn leq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Self::geq0(rhs.sub(lhs))
    }

    /// `lhs == rhs`.
    pub fn eq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Self::eq0(lhs.sub(rhs))
    }

    /// `lhs < rhs` over the integers, i.e. `rhs - lhs - 1 >= 0`.
    pub fn lt(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Self::geq0(rhs.sub(lhs).offset(-1))
    }

    /// Integer negation of this constraint.
    ///
    /// `¬(e >= 0)` is `-e - 1 >= 0`.  Equalities negate into a *disjunction*
    /// (`e >= 1 ∨ e <= -1`), so both branches are returned.
    pub fn negate(&self) -> Vec<Constraint> {
        match self.kind {
            ConstraintKind::GeqZero => vec![Constraint::geq0(self.expr.scale(-1).offset(-1))],
            ConstraintKind::EqZero => vec![
                Constraint::geq0(self.expr.clone().offset(-1)),
                Constraint::geq0(self.expr.scale(-1).offset(-1)),
            ],
        }
    }

    /// Normalize: divide by the gcd of the variable coefficients, tightening
    /// the constant with floor division (valid over the integers).
    fn normalized(mut self) -> Self {
        let g = self.expr.coef_gcd();
        if g > 1 {
            match self.kind {
                ConstraintKind::GeqZero => {
                    // g | all coefs: (g·e' + c >= 0)  <=>  (e' + floor(c/g) >= 0)
                    let c = self.expr.constant_part();
                    let mut e = self.expr.sub(&LinExpr::constant(c)).scale_div(g);
                    e = e.offset(c.div_euclid(g));
                    self.expr = e;
                }
                ConstraintKind::EqZero => {
                    let c = self.expr.constant_part();
                    if c % g == 0 {
                        let e = self
                            .expr
                            .sub(&LinExpr::constant(c))
                            .scale_div(g)
                            .offset(c / g);
                        self.expr = e;
                    }
                    // If g does not divide c the equality is unsatisfiable;
                    // keep it as-is — emptiness detection will notice.
                }
            }
        }
        self
    }

    /// True when the constraint is trivially satisfied for any assignment.
    pub fn is_trivially_true(&self) -> bool {
        self.expr.is_constant()
            && match self.kind {
                ConstraintKind::GeqZero => self.expr.constant_part() >= 0,
                ConstraintKind::EqZero => self.expr.constant_part() == 0,
            }
    }

    /// True when the constraint can be proven unsatisfiable on its own.
    pub fn is_trivially_false(&self) -> bool {
        if self.expr.is_constant() {
            return match self.kind {
                ConstraintKind::GeqZero => self.expr.constant_part() < 0,
                ConstraintKind::EqZero => self.expr.constant_part() != 0,
            };
        }
        if self.kind == ConstraintKind::EqZero {
            let g = self.expr.coef_gcd();
            if g > 1 && self.expr.constant_part() % g != 0 {
                return true;
            }
        }
        false
    }

    /// Substitute `v := repl`.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> Constraint {
        Constraint {
            expr: self.expr.substitute(v, repl),
            kind: self.kind,
        }
        .normalized()
    }

    /// Rename `from` to `to`.
    pub fn rename(&self, from: Var, to: Var) -> Constraint {
        Constraint {
            expr: self.expr.rename(from, to),
            kind: self.kind,
        }
    }
}

impl LinExpr {
    /// Divide every coefficient (not the constant) by `g`; caller guarantees
    /// divisibility of the coefficients.
    pub(crate) fn scale_div(&self, g: i64) -> LinExpr {
        debug_assert!(g > 0);
        let mut out = LinExpr::constant(self.constant_part() / g);
        for (v, c) in self.terms() {
            debug_assert_eq!(c % g, 0);
            out = out.add(&LinExpr::term(v, c / g));
        }
        out
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ConstraintKind::GeqZero => write!(f, "{} >= 0", self.expr),
            ConstraintKind::EqZero => write!(f, "{} == 0", self.expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> Var {
        Var::Sym(id)
    }

    #[test]
    fn normalization_tightens_integer_bounds() {
        // 2x + 3 >= 0  =>  x >= -3/2  =>  x >= -1  =>  x + 1 >= 0
        let c = Constraint::geq0(LinExpr::term(s(0), 2).offset(3));
        assert_eq!(c.expr, LinExpr::var(s(0)).offset(1));
    }

    #[test]
    fn negate_geq() {
        // ¬(x - 1 >= 0) = (-x >= 0)  i.e.  x <= 0
        let c = Constraint::geq0(LinExpr::var(s(0)).offset(-1));
        let n = c.negate();
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].expr, LinExpr::term(s(0), -1));
    }

    #[test]
    fn negate_eq_gives_two_branches() {
        let c = Constraint::eq0(LinExpr::var(s(0)));
        let n = c.negate();
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn trivial_detection() {
        assert!(Constraint::geq0(LinExpr::constant(0)).is_trivially_true());
        assert!(Constraint::geq0(LinExpr::constant(-1)).is_trivially_false());
        assert!(Constraint::eq0(LinExpr::constant(2)).is_trivially_false());
        // 2x + 1 == 0 has no integer solution.
        assert!(Constraint::eq0(LinExpr::term(s(0), 2).offset(1)).is_trivially_false());
    }

    #[test]
    fn geq_leq_lt_build_correct_exprs() {
        let x = LinExpr::var(s(0));
        let y = LinExpr::var(s(1));
        // x < y  ==>  y - x - 1 >= 0
        let c = Constraint::lt(&x, &y);
        assert_eq!(c.expr, y.sub(&x).offset(-1));
        let c2 = Constraint::leq(&x, &y);
        assert_eq!(c2.expr, y.sub(&x));
    }
}
