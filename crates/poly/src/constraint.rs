//! Linear constraints `expr >= 0` and `expr == 0`.

use crate::expr::{LinExpr, Var};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Kind of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ConstraintKind {
    /// `expr >= 0`
    GeqZero,
    /// `expr == 0`
    EqZero,
}

/// A single linear constraint over integer-valued variables.
///
/// Constraints are normalized on construction (coefficients divided by their
/// gcd with integer tightening, equalities sign-canonicalized) and carry
/// precomputed fingerprints of the normal form, so equality tests, dedup
/// scans, and the `prove_empty` memo probe in O(1) per constraint instead of
/// walking the term lists.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// The affine expression constrained against zero.
    pub expr: LinExpr,
    /// Whether this is an inequality or an equality.
    pub kind: ConstraintKind,
    /// FNV fingerprint of `(kind, terms, constant)` of the normal form.
    hash: u64,
    /// Fingerprint of the variable part (terms only, no constant/kind).
    vhash: u64,
    /// Fingerprint of the *negated* variable part: `a.nvhash() == b.vhash()`
    /// pre-filters "variable parts are exact negatives" pair checks.
    nvhash: u64,
}

impl PartialEq for Constraint {
    fn eq(&self, other: &Constraint) -> bool {
        self.hash == other.hash && self.kind == other.kind && self.expr == other.expr
    }
}

impl Eq for Constraint {}

impl PartialOrd for Constraint {
    fn partial_cmp(&self, other: &Constraint) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Constraint {
    fn cmp(&self, other: &Constraint) -> Ordering {
        self.expr.cmp(&other.expr).then(self.kind.cmp(&other.kind))
    }
}

impl Hash for Constraint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv(acc: u64, word: u64) -> u64 {
    (acc ^ word).wrapping_mul(FNV_PRIME)
}

#[inline]
fn var_word(v: Var) -> u64 {
    match v {
        Var::Dim(k) => u64::from(k),
        Var::Sym(id) => (1u64 << 40) | u64::from(id),
    }
}

impl Constraint {
    /// Seal a normalized `(expr, kind)` pair, computing the fingerprints.
    /// Every constructor funnels through here.
    fn finish(expr: LinExpr, kind: ConstraintKind) -> Constraint {
        let mut vh = FNV_OFFSET;
        let mut nvh = FNV_OFFSET;
        for (v, c) in expr.terms() {
            let w = var_word(v);
            vh = fnv(fnv(vh, w), c as u64);
            nvh = fnv(fnv(nvh, w), c.wrapping_neg() as u64);
        }
        let hash = fnv(fnv(vh, expr.constant_part() as u64), kind as u64);
        Constraint {
            expr,
            kind,
            hash,
            vhash: vh,
            nvhash: nvh,
        }
    }

    /// `expr >= 0`.
    pub fn geq0(expr: LinExpr) -> Self {
        Self::normalized(expr, ConstraintKind::GeqZero)
    }

    /// `expr == 0`.
    pub fn eq0(expr: LinExpr) -> Self {
        Self::normalized(expr, ConstraintKind::EqZero)
    }

    /// `lhs >= rhs`.
    pub fn geq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Self::geq0(lhs.sub(rhs))
    }

    /// `lhs <= rhs`.
    pub fn leq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Self::geq0(rhs.sub(lhs))
    }

    /// `lhs == rhs`.
    pub fn eq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Self::eq0(lhs.sub(rhs))
    }

    /// `lhs < rhs` over the integers, i.e. `rhs - lhs - 1 >= 0`.
    pub fn lt(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Self::geq0(rhs.sub(lhs).offset(-1))
    }

    /// The precomputed fingerprint of the whole constraint.
    pub(crate) fn chash(&self) -> u64 {
        self.hash
    }

    /// The precomputed fingerprint of the variable part.
    pub(crate) fn vhash(&self) -> u64 {
        self.vhash
    }

    /// The precomputed fingerprint of the negated variable part.
    pub(crate) fn nvhash(&self) -> u64 {
        self.nvhash
    }

    /// Integer negation of this constraint.
    ///
    /// `¬(e >= 0)` is `-e - 1 >= 0`.  Equalities negate into a *disjunction*
    /// (`e >= 1 ∨ e <= -1`), so both branches are returned.
    pub fn negate(&self) -> Vec<Constraint> {
        match self.kind {
            ConstraintKind::GeqZero => vec![Constraint::geq0(self.expr.scale(-1).offset(-1))],
            ConstraintKind::EqZero => vec![
                Constraint::geq0(self.expr.clone().offset(-1)),
                Constraint::geq0(self.expr.scale(-1).offset(-1)),
            ],
        }
    }

    /// Normalize to canonical form: divide by the gcd of the variable
    /// coefficients, tightening the constant with floor division (valid over
    /// the integers), and orient equalities so their leading coefficient is
    /// positive (`x - y == 0` and `y - x == 0` become one form, so dedup and
    /// memo probes unify them).
    fn normalized(mut expr: LinExpr, kind: ConstraintKind) -> Self {
        let g = expr.coef_gcd();
        if g > 1 {
            match kind {
                ConstraintKind::GeqZero => {
                    // g | all coefs: (g·e' + c >= 0)  <=>  (e' + floor(c/g) >= 0)
                    let c = expr.constant_part();
                    expr = expr
                        .sub(&LinExpr::constant(c))
                        .scale_div(g)
                        .offset(c.div_euclid(g));
                }
                ConstraintKind::EqZero => {
                    let c = expr.constant_part();
                    if c % g == 0 {
                        expr = expr.sub(&LinExpr::constant(c)).scale_div(g).offset(c / g);
                    }
                    // If g does not divide c the equality is unsatisfiable;
                    // keep it as-is — emptiness detection will notice.
                }
            }
        }
        if kind == ConstraintKind::EqZero {
            let lead = expr.terms().next().map(|(_, c)| c);
            if lead.is_some_and(|c| c < 0) {
                expr = expr.scale(-1);
            }
        }
        Self::finish(expr, kind)
    }

    /// True when the constraint is trivially satisfied for any assignment.
    pub fn is_trivially_true(&self) -> bool {
        self.expr.is_constant()
            && match self.kind {
                ConstraintKind::GeqZero => self.expr.constant_part() >= 0,
                ConstraintKind::EqZero => self.expr.constant_part() == 0,
            }
    }

    /// True when the constraint can be proven unsatisfiable on its own.
    pub fn is_trivially_false(&self) -> bool {
        if self.expr.is_constant() {
            return match self.kind {
                ConstraintKind::GeqZero => self.expr.constant_part() < 0,
                ConstraintKind::EqZero => self.expr.constant_part() != 0,
            };
        }
        if self.kind == ConstraintKind::EqZero {
            let g = self.expr.coef_gcd();
            if g > 1 && self.expr.constant_part() % g != 0 {
                return true;
            }
        }
        false
    }

    /// Substitute `v := repl`.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> Constraint {
        Self::normalized(self.expr.substitute(v, repl), self.kind)
    }

    /// Rename `from` to `to`.
    pub fn rename(&self, from: Var, to: Var) -> Constraint {
        Self::finish(self.expr.rename(from, to), self.kind)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ConstraintKind::GeqZero => write!(f, "{} >= 0", self.expr),
            ConstraintKind::EqZero => write!(f, "{} == 0", self.expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> Var {
        Var::Sym(id)
    }

    #[test]
    fn normalization_tightens_integer_bounds() {
        // 2x + 3 >= 0  =>  x >= -3/2  =>  x >= -1  =>  x + 1 >= 0
        let c = Constraint::geq0(LinExpr::term(s(0), 2).offset(3));
        assert_eq!(c.expr, LinExpr::var(s(0)).offset(1));
    }

    #[test]
    fn negate_geq() {
        // ¬(x - 1 >= 0) = (-x >= 0)  i.e.  x <= 0
        let c = Constraint::geq0(LinExpr::var(s(0)).offset(-1));
        let n = c.negate();
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].expr, LinExpr::term(s(0), -1));
    }

    #[test]
    fn negate_eq_gives_two_branches() {
        let c = Constraint::eq0(LinExpr::var(s(0)));
        let n = c.negate();
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn trivial_detection() {
        assert!(Constraint::geq0(LinExpr::constant(0)).is_trivially_true());
        assert!(Constraint::geq0(LinExpr::constant(-1)).is_trivially_false());
        assert!(Constraint::eq0(LinExpr::constant(2)).is_trivially_false());
        // 2x + 1 == 0 has no integer solution.
        assert!(Constraint::eq0(LinExpr::term(s(0), 2).offset(1)).is_trivially_false());
    }

    #[test]
    fn geq_leq_lt_build_correct_exprs() {
        let x = LinExpr::var(s(0));
        let y = LinExpr::var(s(1));
        // x < y  ==>  y - x - 1 >= 0
        let c = Constraint::lt(&x, &y);
        assert_eq!(c.expr, y.sub(&x).offset(-1));
        let c2 = Constraint::leq(&x, &y);
        assert_eq!(c2.expr, y.sub(&x));
    }

    #[test]
    fn equalities_are_sign_canonical() {
        let x = LinExpr::var(s(0));
        let y = LinExpr::var(s(1));
        // x - y == 0 and y - x == 0 normalize to the same constraint.
        let a = Constraint::eq(&x, &y);
        let b = Constraint::eq(&y, &x);
        assert_eq!(a, b);
        assert!(a.expr.coef(s(0)) > 0);
    }

    #[test]
    fn fingerprints_track_equality() {
        let x = LinExpr::var(s(0));
        let y = LinExpr::var(s(1));
        let a = Constraint::geq(&x, &y.offset(1));
        let b = Constraint::geq0(x.sub(&y).offset(-1));
        assert_eq!(a, b);
        assert_eq!(a.chash(), b.chash());
        // Same variable part, different constant: vhash matches, chash not.
        let c = Constraint::geq(&x, &y.offset(5));
        assert_eq!(a.vhash(), c.vhash());
        assert_ne!(a.chash(), c.chash());
        // Opposite variable parts link through nvhash.
        let d = Constraint::geq(&y, &x);
        assert_eq!(a.nvhash(), d.vhash());
    }
}
