//! Conjunctions of linear constraints with Fourier–Motzkin elimination.

use crate::constraint::{Constraint, ConstraintKind};
use crate::expr::{gcd, LinExpr, Var};
use crate::MAX_CONSTRAINTS;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A (possibly unbounded) convex integer polyhedron: the conjunction of a
/// set of linear constraints.
///
/// The empty conjunction is the *universe* (all assignments satisfy it).
/// A polyhedron whose constraint system is detected contradictory is kept in
/// a canonical `bottom` form.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polyhedron {
    constraints: Vec<Constraint>,
    /// Set when the system has been *proven* unsatisfiable.
    empty: bool,
    /// Set when operations had to give up (too many constraints); the
    /// polyhedron then denotes "unknown ⊇ true set" and must be treated as
    /// the universe by may-analyses.
    approximate: bool,
}

impl Polyhedron {
    /// The universe polyhedron (no constraints).
    pub fn universe() -> Self {
        Self::default()
    }

    /// The canonical empty polyhedron.
    pub fn bottom() -> Self {
        Polyhedron {
            constraints: Vec::new(),
            empty: true,
            approximate: false,
        }
    }

    /// Build from constraints.
    pub fn from_constraints(cs: impl IntoIterator<Item = Constraint>) -> Self {
        let mut p = Polyhedron::universe();
        for c in cs {
            p.add_constraint(c);
        }
        p
    }

    /// Rebuild from previously observed parts, verbatim.
    ///
    /// Unlike [`Polyhedron::from_constraints`] this performs no
    /// normalization, deduplication, or contradiction detection — the parts
    /// must come from an earlier polyhedron (e.g. a decoded snapshot), so
    /// re-running them through `add_constraint` could only change the
    /// representation, not the denoted set.
    pub fn from_parts(constraints: Vec<Constraint>, empty: bool, approximate: bool) -> Self {
        Polyhedron {
            constraints,
            empty,
            approximate,
        }
    }

    /// True if this polyhedron has been proven empty.
    pub fn is_proven_empty(&self) -> bool {
        self.empty
    }

    /// True if operations lost precision on this polyhedron (it then
    /// over-approximates the intended set).
    pub fn is_approximate(&self) -> bool {
        self.approximate
    }

    /// Mark as approximate (over-approximating).
    pub fn mark_approximate(&mut self) {
        self.approximate = true;
    }

    /// The constraints (empty slice for the universe or bottom).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// True if there are no constraints and the polyhedron is not bottom.
    pub fn is_universe(&self) -> bool {
        !self.empty && self.constraints.is_empty()
    }

    /// Whether any constraint mentions `v`.
    pub fn mentions(&self, v: Var) -> bool {
        self.constraints.iter().any(|c| c.expr.mentions(v))
    }

    /// All variables mentioned by any constraint, sorted and deduplicated.
    ///
    /// Returns a flat vector rather than a tree set: the Fourier–Motzkin
    /// loops rebuild this after every elimination step, and for the handful
    /// of variables a dependence system carries, a linear scan plus one
    /// small sort is far cheaper than B-tree node churn.
    pub fn vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = Vec::new();
        for c in &self.constraints {
            for v in c.expr.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Add one constraint, folding trivial cases.
    pub fn add_constraint(&mut self, c: Constraint) {
        if self.empty || c.is_trivially_true() {
            return;
        }
        if c.is_trivially_false() {
            *self = Polyhedron::bottom();
            return;
        }
        if self.constraints.contains(&c) {
            return;
        }
        if self.constraints.len() >= MAX_CONSTRAINTS {
            // Give simplification a chance to shrink the system before
            // approximating the new constraint away.  Pre-overhaul builds
            // dropped immediately; that path stays reachable through the
            // staging toggle for before/after benchmarking.
            if staged_emptiness_enabled() {
                self.local_simplify();
                if self.empty || self.constraints.contains(&c) {
                    return;
                }
            }
            if self.constraints.len() >= MAX_CONSTRAINTS {
                // Sound for may-sets: dropping a constraint only enlarges.
                self.approximate = true;
                APPROXIMATIONS.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.constraints.push(c);
    }

    /// Conjunction of two polyhedra.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        if self.empty || other.empty {
            return Polyhedron::bottom();
        }
        let mut out = self.clone();
        out.approximate |= other.approximate;
        for c in &other.constraints {
            out.add_constraint(c.clone());
        }
        out.local_simplify();
        out
    }

    /// Substitute `v := repl` in every constraint.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> Polyhedron {
        if self.empty {
            return Polyhedron::bottom();
        }
        let mut out = Polyhedron {
            constraints: Vec::with_capacity(self.constraints.len()),
            empty: false,
            approximate: self.approximate,
        };
        for c in &self.constraints {
            out.add_constraint(c.substitute(v, repl));
        }
        out
    }

    /// Rename a variable (the target must be fresh).
    pub fn rename(&self, from: Var, to: Var) -> Polyhedron {
        debug_assert!(!self.mentions(to));
        self.substitute(from, &LinExpr::var(to))
    }

    /// Fourier–Motzkin elimination of `v`, over-approximating the integer
    /// projection (rational shadow).  Always sound for may-sets.
    pub fn project_out(&self, v: Var) -> Polyhedron {
        if self.empty {
            return Polyhedron::bottom();
        }
        if !self.mentions(v) {
            return self.clone();
        }
        // Equality substitution first: a·v + e == 0.
        if let Some((idx, a)) = self.find_eq_with(v) {
            let eq = &self.constraints[idx];
            if a.abs() == 1 {
                // v = -e / a exactly.
                let repl = eq.expr.sub(&LinExpr::term(v, a)).scale(-a);
                let mut rest = self.clone();
                rest.constraints.remove(idx);
                return rest.substitute(v, &repl).project_out(v);
            }
        }
        let mut lower = Vec::new(); // a·v + e >= 0 with a > 0  =>  v >= -e/a
        let mut upper = Vec::new(); // -b·v + f >= 0 with b > 0 =>  v <= f/b
        let mut rest = Vec::new();
        for c in &self.constraints {
            // Expand equalities mentioning v into two inequalities.
            let split: Vec<Constraint> = match c.kind {
                ConstraintKind::EqZero if c.expr.mentions(v) => vec![
                    Constraint::geq0(c.expr.clone()),
                    Constraint::geq0(c.expr.scale(-1)),
                ],
                _ => vec![c.clone()],
            };
            for c in split {
                let a = c.expr.coef(v);
                if a > 0 {
                    lower.push(c);
                } else if a < 0 {
                    upper.push(c);
                } else {
                    rest.push(c);
                }
            }
        }
        let mut out = Polyhedron {
            constraints: Vec::new(),
            empty: false,
            approximate: self.approximate,
        };
        for c in rest {
            out.add_constraint(c);
        }
        if lower.len() * upper.len() > MAX_CONSTRAINTS {
            out.approximate = true;
            out.local_simplify();
            return out;
        }
        for l in &lower {
            let a = l.expr.coef(v);
            for u in &upper {
                let b = -u.expr.coef(v);
                debug_assert!(a > 0 && b > 0);
                // b·(a·v + e) + a·(−b·v + f) = b·e + a·f >= 0
                let g = gcd(a, b);
                let combined = l.expr.scale(b / g).add(&u.expr.scale(a / g));
                out.add_constraint(Constraint::geq0(combined));
                if out.empty {
                    return Polyhedron::bottom();
                }
            }
        }
        out.local_simplify();
        out
    }

    /// Exact integer projection of `v`.  Returns `None` when exactness
    /// cannot be guaranteed — required for must-write sections, which may
    /// only shrink.
    ///
    /// Exactness cases:
    /// * every bound on `v` has a ±1 coefficient (rational shadow = integer
    ///   shadow);
    /// * an equality with unit coefficient allows exact substitution;
    /// * a lower/upper pair `a·v >= -e`, `a·v <= f` with *equal* coefficients
    ///   whose combined slack `e + f` is a constant `>= a - 1`: any `a`
    ///   consecutive integers contain a multiple of `a`, so every rational
    ///   shadow point has an integer witness.  (This covers linearized
    ///   rectangular loop nests like `d0 = i + m·j`.)
    pub fn project_exact(&self, v: Var) -> Option<Polyhedron> {
        if self.empty {
            return Some(Polyhedron::bottom());
        }
        if !self.mentions(v) {
            return Some(self.clone());
        }
        if let Some((_, a)) = self.find_eq_with(v) {
            if a.abs() == 1 {
                return Some(self.project_out(v));
            }
        }
        // Partition the bounds (equalities with |coef| != 1 are inexact).
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for c in &self.constraints {
            let a = c.expr.coef(v);
            if a == 0 {
                continue;
            }
            if c.kind == ConstraintKind::EqZero {
                return None; // non-unit equality: gcd reasoning needed
            }
            if a > 0 {
                lower.push(c);
            } else {
                upper.push(c);
            }
        }
        let all_lower_unit = lower.iter().all(|c| c.expr.coef(v) == 1);
        let all_upper_unit = upper.iter().all(|c| c.expr.coef(v) == -1);
        if all_lower_unit || all_upper_unit {
            // A binding unit bound provides an integer witness that the
            // cross-multiplied shadow constraints validate directly.
            return Some(self.project_out(v));
        }
        // Discard unit bounds that are *integer-implied* by a non-unit bound
        // of the same direction (ceil/floor tightening): e.g. `j >= 1` is
        // implied by `6j >= d0 ∧ d0 >= 1` over the integers.  The exactness
        // decision may then ignore them: rational-shadow(full) sits between
        // integer-shadow(full) and rational-shadow(subsystem); when the
        // subsystem is exact all three coincide.
        let implied_lower = |unit: &Constraint| -> bool {
            // unit: v + e1 >= 0, i.e. v >= -e1.
            let e1 = unit.expr.sub(&LinExpr::var(v));
            lower.iter().any(|c| {
                let a = c.expr.coef(v);
                if a <= 1 {
                    return false;
                }
                // c: a·v + e >= 0 → v >= ceil(-e/a); implied when
                // a·e1 - e + a - 1 >= 0 holds throughout.
                let e = c.expr.sub(&LinExpr::term(v, a));
                let need = e1.scale(a).sub(&e).offset(a - 1);
                let mut test = self.clone();
                for neg in Constraint::geq0(need).negate() {
                    test.add_constraint(neg);
                }
                test.prove_empty()
            })
        };
        let implied_upper = |unit: &Constraint| -> bool {
            // unit: -v + f1 >= 0, i.e. v <= f1.
            let f1 = unit.expr.add(&LinExpr::var(v));
            upper.iter().any(|c| {
                let b = -c.expr.coef(v);
                if b <= 1 {
                    return false;
                }
                // c: -b·v + f >= 0 → v <= floor(f/b); implied when
                // b·f1 - f + b - 1 >= 0 holds throughout.
                let f = c.expr.add(&LinExpr::term(v, b));
                let need = f1.scale(b).sub(&f).offset(b - 1);
                let mut test = self.clone();
                for neg in Constraint::geq0(need).negate() {
                    test.add_constraint(neg);
                }
                test.prove_empty()
            })
        };
        let lower2: Vec<_> = lower
            .iter()
            .filter(|c| c.expr.coef(v) != 1 || !implied_lower(c))
            .collect();
        let upper2: Vec<_> = upper
            .iter()
            .filter(|c| c.expr.coef(v) != -1 || !implied_upper(c))
            .collect();
        // Single shared coefficient g with enough slack in every pair: any
        // g consecutive integers contain a multiple of g.
        let g = lower2.first().map(|c| c.expr.coef(v))?;
        let uniform = lower2.iter().all(|c| c.expr.coef(v) == g)
            && upper2.iter().all(|c| c.expr.coef(v) == -g);
        if !uniform {
            return None;
        }
        for l in &lower2 {
            for u in &upper2 {
                let slack = l.expr.add(&u.expr);
                if !(slack.is_constant() && slack.constant_part() >= g - 1) {
                    return None;
                }
            }
        }
        Some(self.project_out(v))
    }

    /// Eliminate every variable satisfying `pred` (over-approximating).
    ///
    /// The elimination order is chosen by the min `lower×upper` product
    /// heuristic ([`Self::elim_cost`]): each step eliminates the candidate
    /// generating the fewest Fourier–Motzkin cross products, which delays
    /// constraint blow-up far better than an arbitrary variable order.
    pub fn project_out_all(&self, pred: impl Fn(Var) -> bool) -> Polyhedron {
        let staged = staged_emptiness_enabled();
        let mut p = self.clone();
        loop {
            let vars = p.vars();
            let mut candidates = vars.into_iter().filter(|&v| pred(v));
            let v = if staged {
                candidates.min_by_key(|&v| p.elim_cost(v))
            } else {
                candidates.next()
            };
            let Some(v) = v else {
                return p;
            };
            p = p.project_out(v);
        }
    }

    /// Cost of eliminating `v` by Fourier–Motzkin: the `lower×upper` product
    /// of its bound counts — the number of cross-product constraints one
    /// elimination step would generate.  A unit-coefficient equality
    /// substitutes `v` away exactly, so it costs nothing.
    fn elim_cost(&self, v: Var) -> usize {
        let mut lower = 0usize;
        let mut upper = 0usize;
        for c in &self.constraints {
            let a = c.expr.coef(v);
            if a == 0 {
                continue;
            }
            match c.kind {
                ConstraintKind::EqZero => {
                    if a.abs() == 1 {
                        return 0;
                    }
                    lower += 1;
                    upper += 1;
                }
                ConstraintKind::GeqZero => {
                    if a > 0 {
                        lower += 1;
                    } else {
                        upper += 1;
                    }
                }
            }
        }
        lower * upper
    }

    /// Attempt to *prove* the polyhedron empty over the **integers** by
    /// Fourier–Motzkin elimination plus a modular-interval test on
    /// equalities.  `true` means definitely empty; `false` means "could not
    /// prove" (possibly non-empty).
    ///
    /// Results are memoized: the analyses re-ask the same emptiness
    /// questions constantly (every transfer-function subtraction and every
    /// dependence test), and constraint systems are plain integer data, so
    /// caching is exact.  The memo is two-level — a thread-local L1 in front
    /// of a sharded process-wide table — so parallel scheduler workers share
    /// proofs across threads and across analysis runs without contending on
    /// the hot path.
    pub fn prove_empty(&self) -> bool {
        if self.empty {
            return true;
        }
        if self.constraints.is_empty() {
            return false;
        }
        // Key: the constraint list as built (construction is deterministic,
        // so identical queries produce identical lists).  Look up by slice so
        // the common case (a hit) never clones the constraints.
        let g = global_prove_empty_cache();
        let epoch = g.epoch.load(Ordering::Acquire);
        let l1_hit = PROVE_EMPTY_L1.with(|cache| {
            let mut c = cache.borrow_mut();
            if c.epoch != epoch {
                // The global cache was cleared since this thread last looked:
                // drop the now-invalid L1 wholesale.
                c.epoch = epoch;
                c.map.clear();
            }
            c.map.get(self.constraints.as_slice()).copied()
        });
        if let Some(hit) = l1_hit {
            g.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Global lookup with in-flight deduplication: a miss inserts a
        // `Running` marker and computes outside the lock; concurrent demands
        // for the same system block on the shard's condvar and share the
        // result instead of recomputing it.  (Without this, parallel
        // classify workers each redo the expensive proofs that structurally
        // similar loops share, and the fan-out loses its speedup to
        // duplicated work.)  Proof subqueries recurse through `prove_empty`,
        // but the recursion graph is acyclic — a cycle would already be
        // infinite recursion sequentially — so waiting cannot deadlock.
        let shard = g.shard_of(self.constraints.as_slice());
        let result = loop {
            let mut m = shard.map.lock();
            match m.get(self.constraints.as_slice()) {
                Some(ProveSlot::Done(r)) => {
                    g.hits.fetch_add(1, Ordering::Relaxed);
                    break *r;
                }
                Some(ProveSlot::Running) => {
                    shard.done.wait(&mut m);
                    continue;
                }
                None => {}
            }
            m.insert(self.constraints.clone(), ProveSlot::Running);
            drop(m);
            // If the proof unwinds, the marker must not strand waiters.
            struct Claim<'a> {
                shard: &'a ProveShard,
                key: &'a [Constraint],
                armed: bool,
            }
            impl Drop for Claim<'_> {
                fn drop(&mut self) {
                    if self.armed {
                        self.shard.map.lock().remove(self.key);
                        self.shard.done.notify_all();
                    }
                }
            }
            let mut claim = Claim {
                shard,
                key: self.constraints.as_slice(),
                armed: true,
            };
            let result = self.prove_empty_uncached();
            claim.armed = false;
            g.misses.fetch_add(1, Ordering::Relaxed);
            let mut m = shard.map.lock();
            if m.len() > 100_000 {
                // Evict finished entries only: a `Running` marker has live
                // waiters (or a live runner) attached to it.
                m.retain(|_, v| matches!(v, ProveSlot::Running));
            }
            m.insert(self.constraints.clone(), ProveSlot::Done(result));
            drop(m);
            shard.done.notify_all();
            break result;
        };
        PROVE_EMPTY_L1.with(|cache| {
            let mut c = cache.borrow_mut();
            if c.map.len() > 100_000 {
                c.map.clear();
            }
            c.map.insert(self.constraints.clone(), result);
        });
        result
    }

    /// Staged emptiness ladder: cheap tests that never eliminate a variable
    /// run first, and full Fourier–Motzkin elimination only when they are
    /// inconclusive.  Every stage is sound, and the non-emptiness fast path
    /// only fires on systems full FM could never prove empty either, so the
    /// ladder computes the same answers as always-full-FM (pinned by the
    /// `prop_linexpr.rs` property suite).
    fn prove_empty_uncached(&self) -> bool {
        if !staged_emptiness_enabled() {
            // The baseline configuration routes the proof through the
            // executable pre-overhaul kernel ([`crate::legacy`]) —
            // `BTreeMap` expressions, fewest-occurrences elimination order,
            // always-full FM — so before/after benchmarks compare against
            // the representation and algorithms this overhaul replaced, not
            // just the stages a flag can skip.
            return crate::legacy::prove_empty_of(self);
        }
        // Stage 0: pairwise contradictions — e + c1 >= 0 ∧ -e + c2 >= 0 with
        // c1 + c2 < 0 — pre-filtered by the negated-part fingerprint.
        if self.pairwise_contradiction() {
            return true;
        }
        // Stage 1: GCD / modular-interval integer-solvability test on
        // the equalities.
        if self.num_constraints() <= 32 && self.modular_contradiction() {
            GCD_REJECTS.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // Stage 2: Banerjee-style interval evaluation of every
        // constraint over the box of unit bounds.
        match self.interval_stage() {
            IntervalVerdict::Empty => {
                INTERVAL_REJECTS.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            IntervalVerdict::Satisfiable => {
                QUICK_SATS.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            IntervalVerdict::Unknown => {}
        }
        // Stage 3: equalities block the dissolution test; substitute
        // the unit-coefficient ones away (an exact transformation over
        // both the rationals and the integers) and re-run the modular
        // and interval tests on the residual system.
        if self.num_constraints() <= 32
            && self
                .constraints
                .iter()
                .any(|c| c.kind == ConstraintKind::EqZero)
        {
            match self.substituted_interval_stage() {
                IntervalVerdict::Empty => {
                    INTERVAL_REJECTS.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                IntervalVerdict::Satisfiable => {
                    QUICK_SATS.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                IntervalVerdict::Unknown => {}
            }
        }
        FM_RUNS.fetch_add(1, Ordering::Relaxed);
        self.prove_empty_fm()
    }

    /// Stage 3 of the emptiness ladder: eliminate equalities by exact
    /// unit-coefficient substitution, then retry the cheap tests.
    ///
    /// Substituting `v := e` out of `±v + e == 0` is a bijection on the
    /// solution set (over ℚ *and* ℤ), so any verdict on the residual system
    /// transfers to the original: a modular/interval emptiness proof is
    /// sound, and a dissolution satisfiability proof means the original is
    /// rationally satisfiable — which full FM can never refute either.
    fn substituted_interval_stage(&self) -> IntervalVerdict {
        // Work on a bare constraint vector: the cheap re-tests below need no
        // polyhedron bookkeeping (dedup, emptiness folding), so skip it.
        let mut cs = self.constraints.clone();
        for _ in 0..8 {
            let Some((i, v, a)) = cs.iter().enumerate().find_map(|(i, c)| {
                if c.kind != ConstraintKind::EqZero {
                    return None;
                }
                c.expr
                    .terms()
                    .find(|&(_, a)| a.abs() == 1)
                    .map(|(v, a)| (i, v, a))
            }) else {
                break;
            };
            let eq = cs.swap_remove(i);
            // a·v + rest == 0  =>  v == rest·(-a)  (a is ±1).
            let repl = eq.expr.sub(&LinExpr::term(v, a)).scale(-a);
            let mut any_eq = false;
            for c in &mut cs {
                if c.expr.mentions(v) {
                    *c = c.substitute(v, &repl);
                    if c.is_trivially_false() {
                        return IntervalVerdict::Empty;
                    }
                }
                any_eq |= c.kind == ConstraintKind::EqZero;
            }
            if !any_eq {
                break;
            }
        }
        cs.retain(|c| !c.is_trivially_true());
        let q = Polyhedron {
            constraints: cs,
            empty: false,
            approximate: false,
        };
        if q.pairwise_contradiction() || q.modular_contradiction() {
            return IntervalVerdict::Empty;
        }
        q.interval_stage()
    }

    /// Stage 0 of the emptiness ladder: is some inequality pair mutually
    /// contradictory (`e >= -c1` and `e <= c2` with `c2 < -c1`)?
    fn pairwise_contradiction(&self) -> bool {
        for (i, a) in self.constraints.iter().enumerate() {
            for b in &self.constraints[i + 1..] {
                if a.kind == ConstraintKind::GeqZero
                    && b.kind == ConstraintKind::GeqZero
                    && a.nvhash() == b.vhash()
                    && neg_var_parts(&a.expr, &b.expr)
                    && a.expr
                        .constant_part()
                        .saturating_add(b.expr.constant_part())
                        < 0
                {
                    return true;
                }
            }
        }
        false
    }

    /// Full Fourier–Motzkin emptiness proof (the ladder's last stage),
    /// eliminating in min `lower×upper` cross-product order.
    fn prove_empty_fm(&self) -> bool {
        let mut p = self.clone();
        let mut fuel = 32usize;
        let mut first = true;
        loop {
            if p.empty {
                return true;
            }
            // Stage 1 already ran the modular test on the original system;
            // re-run it only after eliminations have rewritten it.
            if !first && p.num_constraints() <= 32 && p.modular_contradiction() {
                return true;
            }
            first = false;
            let vars = p.vars();
            let Some(&v0) = vars.first() else {
                // Only constant constraints remain; add_constraint already
                // folded falsities into `empty`.
                return p.empty;
            };
            if fuel == 0 || p.approximate || p.num_constraints() > 48 {
                // Budget exhausted: conservatively assume non-empty.
                return false;
            }
            fuel -= 1;
            let v = vars
                .iter()
                .copied()
                .min_by_key(|&w| p.elim_cost(w))
                .unwrap_or(v0);
            p = p.project_out(v);
        }
    }

    /// Stage 2 of the emptiness ladder, in both directions:
    ///
    /// * **Empty** — some constraint's expression, evaluated over the box of
    ///   unit constant bounds contributed by the single-variable constraints,
    ///   cannot reach satisfaction (a Banerjee-style bound check).  The box
    ///   over-approximates the solution set, so this is a sound emptiness
    ///   proof.
    /// * **Satisfiable** — the system has no equalities and dissolves by
    ///   repeatedly discarding a variable bounded on one side only (its
    ///   constraints are satisfied by pushing it to ±∞).  Such a system is
    ///   rationally satisfiable, which no sound prover — full FM included —
    ///   can ever report empty, so answering "not provably empty" here agrees
    ///   with the full pipeline while skipping every elimination.
    fn interval_stage(&self) -> IntervalVerdict {
        // Unit constant bounds per variable (post-normalization, every
        // single-variable constraint has a ±1 coefficient).
        let mut box_bounds: Vec<(Var, Option<i64>, Option<i64>)> = Vec::new();
        for c in &self.constraints {
            if c.expr.num_vars() != 1 {
                continue;
            }
            let (v, a) = c.expr.terms().next().expect("one term");
            let k = c.expr.constant_part();
            let i = match box_bounds.iter().position(|&(w, _, _)| w == v) {
                Some(i) => i,
                None => {
                    box_bounds.push((v, None, None));
                    box_bounds.len() - 1
                }
            };
            let (_, lo, hi) = &mut box_bounds[i];
            match (c.kind, a) {
                (ConstraintKind::GeqZero, 1) => *lo = Some(lo.map_or(-k, |x: i64| x.max(-k))),
                (ConstraintKind::GeqZero, -1) => *hi = Some(hi.map_or(k, |x: i64| x.min(k))),
                (ConstraintKind::EqZero, 1) => {
                    *lo = Some(lo.map_or(-k, |x: i64| x.max(-k)));
                    *hi = Some(hi.map_or(-k, |x: i64| x.min(-k)));
                }
                _ => {}
            }
        }
        let bound = |v: Var| -> (Option<i64>, Option<i64>) {
            box_bounds
                .iter()
                .find(|&&(w, _, _)| w == v)
                .map_or((None, None), |&(_, lo, hi)| (lo, hi))
        };
        // Without any unit bounds every interval is (-∞, ∞) and the Empty
        // scan can never fire; skip straight to the dissolution test.
        for c in &self.constraints {
            if box_bounds.is_empty() {
                break;
            }
            if c.expr.is_constant() {
                continue;
            }
            // Interval of the expression over the box, in i128 to dodge
            // overflow; None = unbounded in that direction.
            let mut lo: Option<i128> = Some(c.expr.constant_part() as i128);
            let mut hi: Option<i128> = Some(c.expr.constant_part() as i128);
            for (v, a) in c.expr.terms() {
                let (vlo, vhi) = bound(v);
                let (tlo, thi) = if a > 0 { (vlo, vhi) } else { (vhi, vlo) };
                lo = match (lo, tlo) {
                    (Some(acc), Some(b)) => Some(acc + a as i128 * b as i128),
                    _ => None,
                };
                hi = match (hi, thi) {
                    (Some(acc), Some(b)) => Some(acc + a as i128 * b as i128),
                    _ => None,
                };
            }
            let empty = match c.kind {
                ConstraintKind::GeqZero => hi.is_some_and(|h| h < 0),
                ConstraintKind::EqZero => hi.is_some_and(|h| h < 0) || lo.is_some_and(|l| l > 0),
            };
            if empty {
                return IntervalVerdict::Empty;
            }
        }
        // Non-emptiness by one-sided dissolution (inequality-only systems).
        if self
            .constraints
            .iter()
            .any(|c| c.kind == ConstraintKind::EqZero)
        {
            return IntervalVerdict::Unknown;
        }
        let mut alive: Vec<bool> = vec![true; self.constraints.len()];
        let mut remaining = alive.len();
        let vars = self.vars();
        loop {
            if remaining == 0 {
                return IntervalVerdict::Satisfiable;
            }
            let mut progressed = false;
            // The full variable list is a superset of the live one; vars
            // whose constraints have all died kill nothing below (the
            // `killed` guard), so iterating the superset each pass is
            // equivalent to recomputing the live set — without rebuilding
            // a var collection per pass.
            for &v in &vars {
                let mut pos = false;
                let mut neg = false;
                for (c, &a) in self.constraints.iter().zip(&alive) {
                    if !a {
                        continue;
                    }
                    match c.expr.coef(v) {
                        0 => {}
                        x if x > 0 => pos = true,
                        _ => neg = true,
                    }
                }
                if pos && neg {
                    continue;
                }
                let mut killed = false;
                for (c, a) in self.constraints.iter().zip(&mut alive) {
                    if *a && c.expr.mentions(v) {
                        *a = false;
                        remaining -= 1;
                        killed = true;
                    }
                }
                progressed |= killed;
            }
            if !progressed {
                return IntervalVerdict::Unknown;
            }
        }
    }

    /// Modular-interval test (a GCD/Banerjee-style integer refinement):
    /// for an equality `Σ aᵢvᵢ + c == 0` and a modulus `g > 1` dividing
    /// some coefficients, the residual `R = Σ_{g∤aᵢ} aᵢvᵢ + c` must be a
    /// multiple of `g`.  If the polyhedron bounds `R` into an interval
    /// containing no multiple of `g`, the system has no integer solution.
    /// (This is what separates `i1 + 64·j1 == i2 + 64·j2` accesses of
    /// column-major 2-D arrays, which rational FM cannot.)
    fn modular_contradiction(&self) -> bool {
        let eqs: Vec<&Constraint> = self
            .constraints
            .iter()
            .filter(|c| c.kind == ConstraintKind::EqZero)
            .collect();
        for eq in eqs {
            let mut moduli: Vec<i64> = eq
                .expr
                .terms()
                .map(|(_, a)| a.abs())
                .filter(|&a| a > 1)
                .collect();
            moduli.sort_unstable();
            moduli.dedup();
            for g in moduli {
                // Residual terms not divisible by g.
                let mut r = LinExpr::constant(eq.expr.constant_part());
                let mut has_divisible = false;
                for (v, a) in eq.expr.terms() {
                    if a % g == 0 {
                        has_divisible = true;
                    } else {
                        r = r.add(&LinExpr::term(v, a));
                    }
                }
                if !has_divisible {
                    continue;
                }
                if r.is_constant() {
                    if r.constant_part().rem_euclid(g) != 0 {
                        return true;
                    }
                    continue;
                }
                // Bound R cheaply: direct interval reasoning for 1- and
                // 2-variable residuals (the overwhelmingly common case:
                // `i1 - i2 + c` difference patterns from dependence tests),
                // falling back to a mini Fourier–Motzkin projection over R's
                // support otherwise.
                let bounds = self
                    .bound_residual_cheap(&r, eq)
                    .or_else(|| self.bound_residual_fm(&r, eq));
                if let Some((lo, hi)) = bounds {
                    if lo > hi {
                        return true;
                    }
                    // Any multiple of g in [lo, hi]?
                    let first = lo.div_euclid(g) + if lo.rem_euclid(g) != 0 { 1 } else { 0 };
                    if first * g > hi {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Containment test: does `self ⊆ other` *provably* hold?
    ///
    /// `self ⊆ other` iff for every constraint `c` of `other`,
    /// `self ∧ ¬c` is empty.  Negating equalities yields a disjunction, both
    /// branches of which must be empty.
    pub fn provably_subset_of(&self, other: &Polyhedron) -> bool {
        if self.empty {
            return true;
        }
        if other.empty {
            return self.prove_empty();
        }
        if self.approximate {
            // We only know an over-approximation of self.
            return other.is_universe();
        }
        for c in &other.constraints {
            for neg in c.negate() {
                let mut test = self.clone();
                test.add_constraint(neg);
                if !test.prove_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Pairwise redundancy elimination on normalized forms: dedup, reduce
    /// constraints sharing a variable part to the dominant one (stronger
    /// inequality wins; an equality subsumes consistent inequalities), and
    /// fold contradictory or interval-incompatible pairs to bottom.  Runs
    /// after every Fourier–Motzkin elimination step, so redundant cross
    /// products die before they can push the system toward
    /// `MAX_CONSTRAINTS` approximation.  Pair discovery is driven by the
    /// precomputed variable-part fingerprints — expected O(n), not O(n²)
    /// expression subtractions.
    pub fn local_simplify(&mut self) {
        if self.empty || self.constraints.len() <= 1 {
            return;
        }
        if !staged_emptiness_enabled() {
            self.legacy_local_simplify();
            return;
        }
        // Sort by fingerprint prefix rather than full `Ord`: the grouping
        // pass below only needs (a) equal constraints adjacent for `dedup`
        // and (b) constants ascending within a variable-part group, both of
        // which the `(vhash, constant, kind)` key provides without walking
        // term lists on every comparison.  The full comparison only breaks
        // the (rare) remaining ties, keeping the order deterministic.
        self.constraints.sort_unstable_by(|a, b| {
            a.vhash()
                .cmp(&b.vhash())
                .then(a.expr.constant_part().cmp(&b.expr.constant_part()))
                .then(a.kind.cmp(&b.kind))
                .then_with(|| a.expr.cmp(&b.expr))
        });
        self.constraints.dedup();
        use std::collections::HashMap;
        let cs = std::mem::take(&mut self.constraints);
        let mut kept: Vec<Option<Constraint>> = Vec::with_capacity(cs.len());
        // Variable-part fingerprint → indices into `kept`.
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::with_capacity(cs.len() * 2);
        'outer: for c in cs {
            // Same-variable-part interactions.  Sort order guarantees that
            // within a group, constants arrive ascending — the first
            // inequality kept is already the strongest.
            if let Some(idxs) = groups.get(&c.vhash()) {
                for &i in idxs {
                    let Some(k) = kept[i].as_ref() else { continue };
                    if !same_var_parts(&k.expr, &c.expr) {
                        continue;
                    }
                    let dk = k.expr.constant_part();
                    let dc = c.expr.constant_part();
                    match (k.kind, c.kind) {
                        (ConstraintKind::GeqZero, ConstraintKind::GeqZero) => {
                            debug_assert!(dk <= dc);
                            continue 'outer; // c is weaker; drop it
                        }
                        (ConstraintKind::EqZero, ConstraintKind::GeqZero) => {
                            // e == -dk forces e + dc = dc - dk.
                            if dc >= dk {
                                continue 'outer;
                            }
                            *self = Polyhedron::bottom();
                            return;
                        }
                        (ConstraintKind::GeqZero, ConstraintKind::EqZero) => {
                            if dk >= dc {
                                kept[i] = None; // equality subsumes k
                            } else {
                                *self = Polyhedron::bottom();
                                return;
                            }
                        }
                        (ConstraintKind::EqZero, ConstraintKind::EqZero) => {
                            // Identical equalities were removed by dedup;
                            // same part, different constant: contradiction.
                            *self = Polyhedron::bottom();
                            return;
                        }
                    }
                }
            }
            // Opposite-variable-part interactions (`e …` vs `-e …`).
            if let Some(idxs) = groups.get(&c.nvhash()) {
                for &i in idxs {
                    let Some(k) = kept[i].as_ref() else { continue };
                    if !neg_var_parts(&k.expr, &c.expr) {
                        continue;
                    }
                    let s = k
                        .expr
                        .constant_part()
                        .saturating_add(c.expr.constant_part());
                    match (k.kind, c.kind) {
                        (ConstraintKind::GeqZero, ConstraintKind::GeqZero) => {
                            if s < 0 {
                                *self = Polyhedron::bottom();
                                return;
                            }
                        }
                        (ConstraintKind::EqZero, ConstraintKind::GeqZero) => {
                            if s < 0 {
                                *self = Polyhedron::bottom();
                                return;
                            }
                            continue 'outer; // implied by the equality
                        }
                        (ConstraintKind::GeqZero, ConstraintKind::EqZero) => {
                            if s < 0 {
                                *self = Polyhedron::bottom();
                                return;
                            }
                            kept[i] = None;
                        }
                        (ConstraintKind::EqZero, ConstraintKind::EqZero) => {
                            if s != 0 {
                                *self = Polyhedron::bottom();
                                return;
                            }
                            continue 'outer; // same equality, negated
                        }
                    }
                }
            }
            let idx = kept.len();
            groups.entry(c.vhash()).or_default().push(idx);
            kept.push(Some(c));
        }
        self.constraints = kept.into_iter().flatten().collect();
    }

    /// The pre-overhaul simplifier, kept behind the staging toggle
    /// ([`set_staged_emptiness`]) so the before/after benchmark exercises
    /// the kernel path it claims to measure: full-`Ord` sort and dedup, an
    /// O(n²) same-part inequality dominance scan driven by expression
    /// subtraction, and an O(n²) opposite-part contradiction fold.
    fn legacy_local_simplify(&mut self) {
        self.constraints.sort_unstable();
        self.constraints.dedup();
        let mut keep: Vec<Constraint> = Vec::with_capacity(self.constraints.len());
        'outer: for c in std::mem::take(&mut self.constraints) {
            if c.kind == ConstraintKind::GeqZero {
                for k in &mut keep {
                    if k.kind == ConstraintKind::GeqZero {
                        let d = c.expr.sub(&k.expr);
                        if d.is_constant() {
                            if d.constant_part() >= 0 {
                                continue 'outer; // c is weaker; drop it
                            }
                            *k = c.clone(); // c is stronger; replace k
                            continue 'outer;
                        }
                    }
                }
            }
            keep.push(c);
        }
        self.constraints = keep;
        for (i, a) in self.constraints.iter().enumerate() {
            for b in &self.constraints[i + 1..] {
                if a.kind == ConstraintKind::GeqZero
                    && b.kind == ConstraintKind::GeqZero
                    && neg_var_parts(&a.expr, &b.expr)
                    && a.expr
                        .constant_part()
                        .saturating_add(b.expr.constant_part())
                        < 0
                {
                    *self = Polyhedron::bottom();
                    return;
                }
            }
        }
    }

    /// Check membership of a concrete point.
    pub fn contains_point(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<bool> {
        if self.empty {
            return Some(false);
        }
        for c in &self.constraints {
            let v = c.expr.eval(env)?;
            let ok = match c.kind {
                ConstraintKind::GeqZero => v >= 0,
                ConstraintKind::EqZero => v == 0,
            };
            if !ok {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Cheap residual bounding: unit constant bounds per variable, plus
    /// difference bounds for two-variable ±k residuals (covers the
    /// `i1 - i2 + c` dependence-test pattern).  Sound over-approximation.
    fn bound_residual_cheap(&self, r: &LinExpr, skip: &Constraint) -> Option<(i64, i64)> {
        let terms: Vec<(Var, i64)> = r.terms().collect();
        let c0 = r.constant_part();
        // Constant unit bounds per variable.
        let var_bounds = |v: Var| -> (Option<i64>, Option<i64>) {
            let mut lo = None;
            let mut hi = None;
            for c in &self.constraints {
                if std::ptr::eq(c, skip) {
                    continue;
                }
                let a = c.expr.coef(v);
                if a == 0 || c.expr.num_vars() != 1 {
                    continue;
                }
                let k = c.expr.constant_part();
                match (c.kind, a) {
                    (ConstraintKind::GeqZero, 1) => {
                        lo = Some(lo.map_or(-k, |x: i64| x.max(-k)));
                    }
                    (ConstraintKind::GeqZero, -1) => {
                        hi = Some(hi.map_or(k, |x: i64| x.min(k)));
                    }
                    (ConstraintKind::EqZero, 1) => {
                        lo = Some(-k);
                        hi = Some(-k);
                    }
                    _ => {}
                }
            }
            (lo, hi)
        };
        match terms.as_slice() {
            [(v, a)] => {
                let (lo, hi) = var_bounds(*v);
                let (lo, hi) = (lo?, hi?);
                let (x, y) = (a * lo, a * hi);
                Some((c0 + x.min(y), c0 + x.max(y)))
            }
            [(x, ax), (y, ay)] if *ax == -*ay => {
                // r = k·(x − y) + c0: bound d = x − y from difference
                // constraints and the interval product.
                let k = *ax;
                let (lox, hix) = var_bounds(*x);
                let (loy, hiy) = var_bounds(*y);
                let mut dlo = match (lox, hiy) {
                    (Some(a), Some(b)) => Some(a - b),
                    _ => None,
                };
                let mut dhi = match (hix, loy) {
                    (Some(a), Some(b)) => Some(a - b),
                    _ => None,
                };
                // Difference constraints ±(x − y) + c >= 0.
                for c in &self.constraints {
                    if std::ptr::eq(c, skip) || c.expr.num_vars() != 2 {
                        continue;
                    }
                    let cx = c.expr.coef(*x);
                    let cy = c.expr.coef(*y);
                    let cc = c.expr.constant_part();
                    if cx == 1 && cy == -1 && c.kind == ConstraintKind::GeqZero {
                        // x − y + cc >= 0 → d >= −cc
                        dlo = Some(dlo.map_or(-cc, |v: i64| v.max(-cc)));
                    } else if cx == -1 && cy == 1 && c.kind == ConstraintKind::GeqZero {
                        // −x + y + cc >= 0 → d <= cc
                        dhi = Some(dhi.map_or(cc, |v: i64| v.min(cc)));
                    }
                }
                let (dlo, dhi) = (dlo?, dhi?);
                let (a, b) = (k * dlo, k * dhi);
                Some((c0 + a.min(b), c0 + a.max(b)))
            }
            _ => None,
        }
    }

    /// Fallback residual bounding via a mini Fourier–Motzkin projection over
    /// the residual's support.
    fn bound_residual_fm(&self, r: &LinExpr, skip: &Constraint) -> Option<(i64, i64)> {
        let t = Var::Sym(u32::MAX);
        if self.mentions(t) {
            return None;
        }
        let support: BTreeSet<Var> = r.vars().collect();
        let mut q = Polyhedron::universe();
        for c in &self.constraints {
            if std::ptr::eq(c, skip) {
                continue;
            }
            if c.expr.vars().all(|v| support.contains(&v)) {
                q.add_constraint(c.clone());
            }
        }
        q.add_constraint(Constraint::eq(&LinExpr::var(t), r));
        let proj = q.project_out_all(|v| v != t);
        if proj.is_approximate() {
            return None;
        }
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        for c in proj.constraints() {
            let a = c.expr.coef(t);
            if a == 0 || !c.expr.sub(&LinExpr::term(t, a)).is_constant() {
                continue;
            }
            let k = c.expr.constant_part();
            match c.kind {
                ConstraintKind::GeqZero if a > 0 => {
                    // a·t + k >= 0 → t >= ceil(-k/a)
                    let b = (-k).div_euclid(a) + if (-k).rem_euclid(a) != 0 { 1 } else { 0 };
                    lo = Some(lo.map_or(b, |x: i64| x.max(b)));
                }
                ConstraintKind::GeqZero => {
                    let b = k.div_euclid(-a);
                    hi = Some(hi.map_or(b, |x: i64| x.min(b)));
                }
                ConstraintKind::EqZero if a.abs() == 1 => {
                    let v = -k / a;
                    lo = Some(lo.map_or(v, |x: i64| x.max(v)));
                    hi = Some(hi.map_or(v, |x: i64| x.min(v)));
                }
                _ => {}
            }
        }
        match (lo, hi) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        }
    }

    fn find_eq_with(&self, v: Var) -> Option<(usize, i64)> {
        self.constraints.iter().enumerate().find_map(|(i, c)| {
            if c.kind == ConstraintKind::EqZero {
                let a = c.expr.coef(v);
                if a != 0 {
                    return Some((i, a));
                }
            }
            None
        })
    }

    /// If some equality constrains `v` with a unit coefficient
    /// (`±v + e == 0`), return the expression `v` equals.  Subscript-level
    /// quick tests use this to recover `d_k == f(i)` access functions from a
    /// section disjunct without running elimination.
    pub fn solve_unit_eq(&self, v: Var) -> Option<LinExpr> {
        self.constraints.iter().find_map(|c| {
            if c.kind != ConstraintKind::EqZero {
                return None;
            }
            let a = c.expr.coef(v);
            if a.abs() != 1 {
                return None;
            }
            // a·v + rest == 0  =>  v == -rest/a == rest·(-a)  (a is ±1).
            Some(c.expr.sub(&LinExpr::term(v, a)).scale(-a))
        })
    }
}

/// True when the variable parts of `a` and `b` are exact negatives of each
/// other (so `a + b` is a constant), checked without allocating.
fn neg_var_parts(a: &LinExpr, b: &LinExpr) -> bool {
    a.num_vars() == b.num_vars()
        && a.terms()
            .zip(b.terms())
            .all(|((va, ca), (vb, cb))| va == vb && ca == -cb)
}

/// True when `a` and `b` share the exact same variable part (they differ at
/// most in the constant), checked without allocating.
fn same_var_parts(a: &LinExpr, b: &LinExpr) -> bool {
    a.num_vars() == b.num_vars()
        && a.terms()
            .zip(b.terms())
            .all(|((va, ca), (vb, cb))| va == vb && ca == cb)
}

/// Outcome of the interval stage of the emptiness ladder.
enum IntervalVerdict {
    /// Some constraint cannot be satisfied anywhere in the bounding box.
    Empty,
    /// The system provably has (rational, hence conservative) solutions.
    Satisfiable,
    /// Inconclusive — fall through to Fourier–Motzkin.
    Unknown,
}

static GCD_REJECTS: AtomicU64 = AtomicU64::new(0);
static INTERVAL_REJECTS: AtomicU64 = AtomicU64::new(0);
static QUICK_SATS: AtomicU64 = AtomicU64::new(0);
static FM_RUNS: AtomicU64 = AtomicU64::new(0);
static APPROXIMATIONS: AtomicU64 = AtomicU64::new(0);
static SUBSCRIPT_REJECTS: AtomicU64 = AtomicU64::new(0);
static STAGED_EMPTINESS: AtomicBool = AtomicBool::new(true);

/// Process-wide kernel counters: how each `prove_empty` query was resolved,
/// plus how often the constraint budget forced an approximation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolyStats {
    /// Queries resolved empty by the GCD/modular-interval stage, without
    /// eliminating a single variable.
    pub gcd_rejects: u64,
    /// Queries resolved empty by the Banerjee-style interval stage.
    pub interval_rejects: u64,
    /// Queries resolved definitely-satisfiable by one-sided dissolution.
    pub quick_sats: u64,
    /// Queries that fell through to full Fourier–Motzkin elimination.
    pub fm_runs: u64,
    /// Constraints dropped because a system stayed over `MAX_CONSTRAINTS`
    /// even after simplification (the polyhedron became approximate).
    pub approximations: u64,
    /// Dependence pair tests resolved disjoint by the subscript-level
    /// GCD/Banerjee quick test, before any joint system was even built.
    pub subscript_rejects: u64,
}

impl PolyStats {
    /// Counter-wise difference against an earlier snapshot (for per-run
    /// deltas in pass metrics).
    pub fn since(&self, earlier: &PolyStats) -> PolyStats {
        PolyStats {
            gcd_rejects: self.gcd_rejects.wrapping_sub(earlier.gcd_rejects),
            interval_rejects: self.interval_rejects.wrapping_sub(earlier.interval_rejects),
            quick_sats: self.quick_sats.wrapping_sub(earlier.quick_sats),
            fm_runs: self.fm_runs.wrapping_sub(earlier.fm_runs),
            approximations: self.approximations.wrapping_sub(earlier.approximations),
            subscript_rejects: self
                .subscript_rejects
                .wrapping_sub(earlier.subscript_rejects),
        }
    }
}

/// Snapshot the process-wide kernel counters.
pub fn poly_stats() -> PolyStats {
    PolyStats {
        gcd_rejects: GCD_REJECTS.load(Ordering::Relaxed),
        interval_rejects: INTERVAL_REJECTS.load(Ordering::Relaxed),
        quick_sats: QUICK_SATS.load(Ordering::Relaxed),
        fm_runs: FM_RUNS.load(Ordering::Relaxed),
        approximations: APPROXIMATIONS.load(Ordering::Relaxed),
        subscript_rejects: SUBSCRIPT_REJECTS.load(Ordering::Relaxed),
    }
}

/// Classic subscript-level dependence quick test: can `e1` (a subscript in
/// terms of iteration variable `i1`) and `e2` (in terms of `i2`) be equal
/// for integer `i1`, `i2` with `i1 < i2` (and both within `bounds` when the
/// loop bounds are known constants)?  Returns `true` only when equality is
/// *provably impossible* — a sound "no dependence in this direction" for the
/// dimension the two expressions subscript.
///
/// The test handles the difference `e1 - e2` only when its variables are a
/// subset of `{i1, i2}`; anything else (other symbols, other dimensions) is
/// inconclusive and returns `false`.  Three rungs, cheapest first:
/// constant difference, GCD integer-solvability, and a Banerjee-style box
/// bound (with the `i2 - i1 >= 1` distance refinement when the coefficients
/// are opposite).
pub fn subscript_pair_disjoint(
    e1: &LinExpr,
    e2: &LinExpr,
    i1: Var,
    i2: Var,
    bounds: Option<(i64, i64)>,
) -> bool {
    let diff = e1.sub(e2);
    if diff.vars().any(|v| v != i1 && v != i2) {
        return false;
    }
    let a = diff.coef(i1);
    let b = diff.coef(i2);
    let c = diff.constant_part();
    // Constant difference: the subscripts differ by a fixed nonzero amount.
    if a == 0 && b == 0 {
        if c != 0 {
            SUBSCRIPT_REJECTS.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        return false;
    }
    // GCD test: a·i1 + b·i2 = -c needs gcd(a, b) | c.
    let g = gcd(a, b);
    if g > 1 && c % g != 0 {
        SUBSCRIPT_REJECTS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    // Opposite coefficients: a·(i1 - i2) + c == 0 pins the iteration
    // distance to t = i2 - i1 = c / a, which must be >= 1 (strictly later
    // iteration) and at most the trip span when the bounds are constant.
    if a == -b && a != 0 && c % a == 0 {
        let t = c / a;
        let max_span = bounds.map_or(i64::MAX, |(lo, hi)| (hi - lo).max(0));
        if t < 1 || t > max_span {
            SUBSCRIPT_REJECTS.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        return false;
    }
    // Banerjee box test: bound a·i1 + b·i2 + c over lo <= i1, i2 <= hi.
    if let Some((lo, hi)) = bounds {
        if lo <= hi {
            let (lo, hi, a, b, c) = (
                i128::from(lo),
                i128::from(hi),
                i128::from(a),
                i128::from(b),
                i128::from(c),
            );
            let mn = c + (a * lo).min(a * hi) + (b * lo).min(b * hi);
            let mx = c + (a * lo).max(a * hi) + (b * lo).max(b * hi);
            if mn > 0 || mx < 0 {
                SUBSCRIPT_REJECTS.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
    }
    false
}

/// Enable or disable the staged emptiness ladder (and the min-product
/// elimination order that rides with it).  Disabling reverts `prove_empty`
/// to always-full-FM with the legacy fewest-occurrences order — the
/// pre-overhaul kernel — for before/after benchmarking and the
/// staged-vs-full agreement property test.  On by default.
pub fn set_staged_emptiness(on: bool) {
    STAGED_EMPTINESS.store(on, Ordering::Relaxed);
}

/// Whether the staged emptiness ladder is enabled.
pub fn staged_emptiness_enabled() -> bool {
    STAGED_EMPTINESS.load(Ordering::Relaxed)
}

/// Clear the emptiness-proof memo (benchmark support: keeps timing
/// comparisons across configurations honest).  The process-wide table is
/// emptied immediately; other threads' L1 tables are invalidated lazily via
/// an epoch bump the next time they consult the cache.  Because the memo is
/// exact (a pure function of the constraint system), a racing insert that
/// lands after the clear is still correct — clearing only affects memory and
/// timing, never results.
pub fn clear_prove_empty_cache() {
    let g = global_prove_empty_cache();
    g.epoch.fetch_add(1, Ordering::AcqRel);
    for s in &g.shards {
        // In-flight markers survive a clear: their runners are live and
        // will finish (and notify) normally; only finished proofs drop.
        s.map.lock().retain(|_, v| matches!(v, ProveSlot::Running));
    }
    PROVE_EMPTY_L1.with(|cache| {
        let mut c = cache.borrow_mut();
        c.map.clear();
        c.epoch = g.epoch.load(Ordering::Acquire);
    });
}

/// `(hits, misses)` of the emptiness-proof memo since process start
/// (L1 hits count as hits).
pub fn prove_empty_cache_counters() -> (u64, u64) {
    let g = global_prove_empty_cache();
    (
        g.hits.load(Ordering::Relaxed),
        g.misses.load(Ordering::Relaxed),
    )
}

/// Export every *finished* emptiness proof from the process-wide memo, for
/// persistence.  In-flight (`Running`) markers are skipped — their runners
/// will re-prove on the next process anyway.  The order is deterministic
/// (sorted by constraint system), so equal memo states export equal lists.
pub fn export_prove_empty_memo() -> Vec<(Vec<Constraint>, bool)> {
    let g = global_prove_empty_cache();
    let mut out = Vec::new();
    for s in &g.shards {
        let map = s.map.lock();
        for (k, v) in map.iter() {
            if let ProveSlot::Done(b) = v {
                out.push((k.clone(), *b));
            }
        }
    }
    out.sort();
    out
}

/// Seed the process-wide memo with previously exported proofs (a daemon
/// warm start).  Entries whose key already holds a slot — finished or in
/// flight — are left untouched.  The memo is exact (a pure function of the
/// integer constraint system), so importing a proof computed by an earlier
/// process is always sound.  Returns how many proofs were installed.
pub fn import_prove_empty_memo(entries: &[(Vec<Constraint>, bool)]) -> usize {
    let g = global_prove_empty_cache();
    // Group by shard first so each shard's lock is taken once per import,
    // not once per entry — a warm start replays thousands of proofs.
    let mut buckets: [Vec<&(Vec<Constraint>, bool)>; PROVE_EMPTY_SHARDS] =
        std::array::from_fn(|_| Vec::new());
    for e in entries {
        buckets[g.shard_index(&e.0)].push(e);
    }
    let mut installed = 0;
    for (i, bucket) in buckets.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let mut map = g.shards[i].map.lock();
        map.reserve(bucket.len());
        for (k, b) in bucket {
            if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(k.clone()) {
                slot.insert(ProveSlot::Done(*b));
                installed += 1;
            }
        }
    }
    installed
}

const PROVE_EMPTY_SHARDS: usize = 16;

type ProveEmptyMap = std::collections::HashMap<Vec<Constraint>, bool>;

/// One global-memo entry: the finished proof, or a marker that some thread
/// is computing it right now (waiters block on the shard's condvar).
enum ProveSlot {
    Running,
    Done(bool),
}

/// One shard of the global memo: slot map plus the condvar `Running`
/// waiters sleep on.
struct ProveShard {
    map: parking_lot::Mutex<std::collections::HashMap<Vec<Constraint>, ProveSlot>>,
    done: parking_lot::Condvar,
}

/// Process-wide memo for [`Polyhedron::prove_empty`]; exact (integer data).
struct GlobalProveEmptyCache {
    shards: [ProveShard; PROVE_EMPTY_SHARDS],
    /// Bumped by [`clear_prove_empty_cache`]; L1 tables holding an older
    /// epoch discard themselves before use.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GlobalProveEmptyCache {
    fn shard_index(&self, key: &[Constraint]) -> usize {
        // Fold the constraints' precomputed fingerprints — no term walks.
        let h = key.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, c| {
            (acc ^ c.chash()).wrapping_mul(0x0000_0100_0000_01b3)
        });
        h as usize % PROVE_EMPTY_SHARDS
    }

    fn shard_of(&self, key: &[Constraint]) -> &ProveShard {
        &self.shards[self.shard_index(key)]
    }
}

fn global_prove_empty_cache() -> &'static GlobalProveEmptyCache {
    static CACHE: std::sync::OnceLock<GlobalProveEmptyCache> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| GlobalProveEmptyCache {
        shards: std::array::from_fn(|_| ProveShard {
            map: parking_lot::Mutex::new(std::collections::HashMap::new()),
            done: parking_lot::Condvar::new(),
        }),
        epoch: AtomicU64::new(1),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Per-thread L1 in front of the global memo: hot lookups touch no lock.
struct ProveEmptyL1 {
    epoch: u64,
    map: ProveEmptyMap,
}

thread_local! {
    static PROVE_EMPTY_L1: std::cell::RefCell<ProveEmptyL1> =
        std::cell::RefCell::new(ProveEmptyL1 { epoch: 0, map: ProveEmptyMap::new() });
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "{{⊥}}");
        }
        if self.constraints.is_empty() {
            return write!(f, "{{⊤}}");
        }
        write!(f, "{{ ")?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> Var {
        Var::Sym(id)
    }
    fn x() -> LinExpr {
        LinExpr::var(s(0))
    }
    fn y() -> LinExpr {
        LinExpr::var(s(1))
    }

    /// 1 <= x <= 10
    fn range_1_10() -> Polyhedron {
        Polyhedron::from_constraints([
            Constraint::geq(&x(), &LinExpr::constant(1)),
            Constraint::leq(&x(), &LinExpr::constant(10)),
        ])
    }

    #[test]
    fn universe_and_bottom() {
        assert!(Polyhedron::universe().is_universe());
        assert!(Polyhedron::bottom().is_proven_empty());
        assert!(Polyhedron::bottom().prove_empty());
        assert!(!Polyhedron::universe().prove_empty());
    }

    #[test]
    fn contradiction_is_detected_on_add() {
        let p = Polyhedron::from_constraints([
            Constraint::geq(&x(), &LinExpr::constant(5)),
            Constraint::leq(&x(), &LinExpr::constant(2)),
        ]);
        assert!(p.prove_empty());
    }

    #[test]
    fn projection_keeps_transitive_bounds() {
        // 1 <= x <= 10, y = x + 2  ==> after eliminating x: 3 <= y <= 12
        let mut p = range_1_10();
        p.add_constraint(Constraint::eq(&y(), &x().offset(2)));
        let q = p.project_out(s(0));
        assert!(!q.mentions(s(0)));
        let in_range = |v: i64| {
            q.contains_point(&|var| if var == s(1) { Some(v) } else { None })
                .unwrap()
        };
        assert!(in_range(3));
        assert!(in_range(12));
        assert!(!in_range(2));
        assert!(!in_range(13));
    }

    #[test]
    fn projection_of_unconstrained_var_is_identity() {
        let p = range_1_10();
        assert_eq!(p.project_out(s(7)), p);
    }

    #[test]
    fn subset_tests() {
        // [2,5] ⊆ [1,10]
        let small = Polyhedron::from_constraints([
            Constraint::geq(&x(), &LinExpr::constant(2)),
            Constraint::leq(&x(), &LinExpr::constant(5)),
        ]);
        let big = range_1_10();
        assert!(small.provably_subset_of(&big));
        assert!(!big.provably_subset_of(&small));
        assert!(Polyhedron::bottom().provably_subset_of(&small));
        assert!(small.provably_subset_of(&Polyhedron::universe()));
    }

    #[test]
    fn symbolic_subset() {
        // {d0 == s0} ⊆ {s0 <= d0 <= s0 + 1}
        let d = LinExpr::var(Var::Dim(0));
        let n = LinExpr::var(s(0));
        let point = Polyhedron::from_constraints([Constraint::eq(&d, &n)]);
        let seg = Polyhedron::from_constraints([
            Constraint::geq(&d, &n),
            Constraint::leq(&d, &n.offset(1)),
        ]);
        assert!(point.provably_subset_of(&seg));
        assert!(!seg.provably_subset_of(&point));
    }

    #[test]
    fn exact_projection_rules() {
        // Unbounded above: always exact (any shadow point extends upward).
        let p = Polyhedron::from_constraints([Constraint::geq(&x().scale(2), &y())]);
        assert!(p.project_exact(s(0)).is_some());
        // Unit bounds: exact.
        let q = range_1_10();
        assert!(q.project_exact(s(0)).is_some());
        // 2x == y as inequalities: slack 0 < 1 → NOT exact (only even y).
        let tight = Polyhedron::from_constraints([
            Constraint::geq(&x().scale(2), &y()),
            Constraint::leq(&x().scale(2), &y()),
        ]);
        assert!(tight.project_exact(s(0)).is_none());
        // y <= 6x <= y+5: any 6 consecutive integers contain a multiple of
        // 6 → exact (the linearized rectangular-nest pattern).
        let nest = Polyhedron::from_constraints([
            Constraint::geq(&x().scale(6), &y()),
            Constraint::leq(&x().scale(6), &y().offset(5)),
        ]);
        assert!(nest.project_exact(s(0)).is_some());
        // Width 4 < 5 → may miss a multiple of 6 → not exact.
        let thin = Polyhedron::from_constraints([
            Constraint::geq(&x().scale(6), &y()),
            Constraint::leq(&x().scale(6), &y().offset(4)),
        ]);
        assert!(thin.project_exact(s(0)).is_none());
        // Redundant unit bound is discarded: add x >= 1 implied by
        // 6x >= y ∧ y >= 1; exactness survives.
        let with_unit = Polyhedron::from_constraints([
            Constraint::geq(&x().scale(6), &y()),
            Constraint::leq(&x().scale(6), &y().offset(5)),
            Constraint::geq(&x(), &LinExpr::constant(1)),
            Constraint::geq(&y(), &LinExpr::constant(1)),
        ]);
        assert!(with_unit.project_exact(s(0)).is_some());
    }

    #[test]
    fn membership() {
        let p = range_1_10();
        let at = |v: i64| {
            p.contains_point(&|var| if var == s(0) { Some(v) } else { None })
                .unwrap()
        };
        assert!(at(1) && at(10) && !at(0) && !at(11));
    }

    #[test]
    fn eq_substitution_path() {
        // x == 3, x >= y  -> after projecting x: 3 >= y
        let p = Polyhedron::from_constraints([
            Constraint::eq(&x(), &LinExpr::constant(3)),
            Constraint::geq(&x(), &y()),
        ]);
        let q = p.project_out(s(0));
        let at = |v: i64| {
            q.contains_point(&|var| if var == s(1) { Some(v) } else { None })
                .unwrap()
        };
        assert!(at(3) && !at(4));
    }

    #[test]
    fn dependence_style_emptiness() {
        // Two iterations i1 != i2 writing a(i): {d0 == i1, d0 == i2, i1 < i2}
        // must be provably empty (no cross-iteration overlap).
        let d = LinExpr::var(Var::Dim(0));
        let i1 = LinExpr::var(s(10));
        let i2 = LinExpr::var(s(11));
        let p = Polyhedron::from_constraints([
            Constraint::eq(&d, &i1),
            Constraint::eq(&d, &i2),
            Constraint::lt(&i1, &i2),
        ]);
        assert!(p.prove_empty());

        // Writing a(i) and reading a(i-1) across iterations overlaps:
        // {d0 == i1, d0 == i2 - 1, i1 < i2} is satisfiable.
        let q = Polyhedron::from_constraints([
            Constraint::eq(&d, &i1),
            Constraint::eq(&d, &i2.offset(-1)),
            Constraint::lt(&i1, &i2),
        ]);
        assert!(!q.prove_empty());
    }
}
