//! Conjunctions of linear constraints with Fourier–Motzkin elimination.

use crate::constraint::{Constraint, ConstraintKind};
use crate::expr::{gcd, LinExpr, Var};
use crate::MAX_CONSTRAINTS;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A (possibly unbounded) convex integer polyhedron: the conjunction of a
/// set of linear constraints.
///
/// The empty conjunction is the *universe* (all assignments satisfy it).
/// A polyhedron whose constraint system is detected contradictory is kept in
/// a canonical `bottom` form.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polyhedron {
    constraints: Vec<Constraint>,
    /// Set when the system has been *proven* unsatisfiable.
    empty: bool,
    /// Set when operations had to give up (too many constraints); the
    /// polyhedron then denotes "unknown ⊇ true set" and must be treated as
    /// the universe by may-analyses.
    approximate: bool,
}

impl Polyhedron {
    /// The universe polyhedron (no constraints).
    pub fn universe() -> Self {
        Self::default()
    }

    /// The canonical empty polyhedron.
    pub fn bottom() -> Self {
        Polyhedron {
            constraints: Vec::new(),
            empty: true,
            approximate: false,
        }
    }

    /// Build from constraints.
    pub fn from_constraints(cs: impl IntoIterator<Item = Constraint>) -> Self {
        let mut p = Polyhedron::universe();
        for c in cs {
            p.add_constraint(c);
        }
        p
    }

    /// True if this polyhedron has been proven empty.
    pub fn is_proven_empty(&self) -> bool {
        self.empty
    }

    /// True if operations lost precision on this polyhedron (it then
    /// over-approximates the intended set).
    pub fn is_approximate(&self) -> bool {
        self.approximate
    }

    /// Mark as approximate (over-approximating).
    pub fn mark_approximate(&mut self) {
        self.approximate = true;
    }

    /// The constraints (empty slice for the universe or bottom).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// True if there are no constraints and the polyhedron is not bottom.
    pub fn is_universe(&self) -> bool {
        !self.empty && self.constraints.is_empty()
    }

    /// Whether any constraint mentions `v`.
    pub fn mentions(&self, v: Var) -> bool {
        self.constraints.iter().any(|c| c.expr.mentions(v))
    }

    /// All variables mentioned by any constraint.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for c in &self.constraints {
            out.extend(c.expr.vars());
        }
        out
    }

    /// Add one constraint, folding trivial cases.
    pub fn add_constraint(&mut self, c: Constraint) {
        if self.empty || c.is_trivially_true() {
            return;
        }
        if c.is_trivially_false() {
            *self = Polyhedron::bottom();
            return;
        }
        if self.constraints.contains(&c) {
            return;
        }
        if self.constraints.len() >= MAX_CONSTRAINTS {
            // Sound for may-sets: dropping a constraint only enlarges.
            self.approximate = true;
            return;
        }
        self.constraints.push(c);
    }

    /// Conjunction of two polyhedra.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        if self.empty || other.empty {
            return Polyhedron::bottom();
        }
        let mut out = self.clone();
        out.approximate |= other.approximate;
        for c in &other.constraints {
            out.add_constraint(c.clone());
        }
        out.local_simplify();
        out
    }

    /// Substitute `v := repl` in every constraint.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> Polyhedron {
        if self.empty {
            return Polyhedron::bottom();
        }
        let mut out = Polyhedron {
            constraints: Vec::with_capacity(self.constraints.len()),
            empty: false,
            approximate: self.approximate,
        };
        for c in &self.constraints {
            out.add_constraint(c.substitute(v, repl));
        }
        out
    }

    /// Rename a variable (the target must be fresh).
    pub fn rename(&self, from: Var, to: Var) -> Polyhedron {
        debug_assert!(!self.mentions(to));
        self.substitute(from, &LinExpr::var(to))
    }

    /// Fourier–Motzkin elimination of `v`, over-approximating the integer
    /// projection (rational shadow).  Always sound for may-sets.
    pub fn project_out(&self, v: Var) -> Polyhedron {
        if self.empty {
            return Polyhedron::bottom();
        }
        if !self.mentions(v) {
            return self.clone();
        }
        // Equality substitution first: a·v + e == 0.
        if let Some((idx, a)) = self.find_eq_with(v) {
            let eq = &self.constraints[idx];
            if a.abs() == 1 {
                // v = -e / a exactly.
                let repl = eq.expr.sub(&LinExpr::term(v, a)).scale(-a);
                let mut rest = self.clone();
                rest.constraints.remove(idx);
                return rest.substitute(v, &repl).project_out(v);
            }
        }
        let mut lower = Vec::new(); // a·v + e >= 0 with a > 0  =>  v >= -e/a
        let mut upper = Vec::new(); // -b·v + f >= 0 with b > 0 =>  v <= f/b
        let mut rest = Vec::new();
        for c in &self.constraints {
            // Expand equalities mentioning v into two inequalities.
            let split: Vec<Constraint> = match c.kind {
                ConstraintKind::EqZero if c.expr.mentions(v) => vec![
                    Constraint::geq0(c.expr.clone()),
                    Constraint::geq0(c.expr.scale(-1)),
                ],
                _ => vec![c.clone()],
            };
            for c in split {
                let a = c.expr.coef(v);
                if a > 0 {
                    lower.push(c);
                } else if a < 0 {
                    upper.push(c);
                } else {
                    rest.push(c);
                }
            }
        }
        let mut out = Polyhedron {
            constraints: Vec::new(),
            empty: false,
            approximate: self.approximate,
        };
        for c in rest {
            out.add_constraint(c);
        }
        if lower.len() * upper.len() > MAX_CONSTRAINTS {
            out.approximate = true;
            out.local_simplify();
            return out;
        }
        for l in &lower {
            let a = l.expr.coef(v);
            for u in &upper {
                let b = -u.expr.coef(v);
                debug_assert!(a > 0 && b > 0);
                // b·(a·v + e) + a·(−b·v + f) = b·e + a·f >= 0
                let g = gcd(a, b);
                let combined = l.expr.scale(b / g).add(&u.expr.scale(a / g));
                out.add_constraint(Constraint::geq0(combined));
                if out.empty {
                    return Polyhedron::bottom();
                }
            }
        }
        out.local_simplify();
        out
    }

    /// Exact integer projection of `v`.  Returns `None` when exactness
    /// cannot be guaranteed — required for must-write sections, which may
    /// only shrink.
    ///
    /// Exactness cases:
    /// * every bound on `v` has a ±1 coefficient (rational shadow = integer
    ///   shadow);
    /// * an equality with unit coefficient allows exact substitution;
    /// * a lower/upper pair `a·v >= -e`, `a·v <= f` with *equal* coefficients
    ///   whose combined slack `e + f` is a constant `>= a - 1`: any `a`
    ///   consecutive integers contain a multiple of `a`, so every rational
    ///   shadow point has an integer witness.  (This covers linearized
    ///   rectangular loop nests like `d0 = i + m·j`.)
    pub fn project_exact(&self, v: Var) -> Option<Polyhedron> {
        if self.empty {
            return Some(Polyhedron::bottom());
        }
        if !self.mentions(v) {
            return Some(self.clone());
        }
        if let Some((_, a)) = self.find_eq_with(v) {
            if a.abs() == 1 {
                return Some(self.project_out(v));
            }
        }
        // Partition the bounds (equalities with |coef| != 1 are inexact).
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for c in &self.constraints {
            let a = c.expr.coef(v);
            if a == 0 {
                continue;
            }
            if c.kind == ConstraintKind::EqZero {
                return None; // non-unit equality: gcd reasoning needed
            }
            if a > 0 {
                lower.push(c);
            } else {
                upper.push(c);
            }
        }
        let all_lower_unit = lower.iter().all(|c| c.expr.coef(v) == 1);
        let all_upper_unit = upper.iter().all(|c| c.expr.coef(v) == -1);
        if all_lower_unit || all_upper_unit {
            // A binding unit bound provides an integer witness that the
            // cross-multiplied shadow constraints validate directly.
            return Some(self.project_out(v));
        }
        // Discard unit bounds that are *integer-implied* by a non-unit bound
        // of the same direction (ceil/floor tightening): e.g. `j >= 1` is
        // implied by `6j >= d0 ∧ d0 >= 1` over the integers.  The exactness
        // decision may then ignore them: rational-shadow(full) sits between
        // integer-shadow(full) and rational-shadow(subsystem); when the
        // subsystem is exact all three coincide.
        let implied_lower = |unit: &Constraint| -> bool {
            // unit: v + e1 >= 0, i.e. v >= -e1.
            let e1 = unit.expr.sub(&LinExpr::var(v));
            lower.iter().any(|c| {
                let a = c.expr.coef(v);
                if a <= 1 {
                    return false;
                }
                // c: a·v + e >= 0 → v >= ceil(-e/a); implied when
                // a·e1 - e + a - 1 >= 0 holds throughout.
                let e = c.expr.sub(&LinExpr::term(v, a));
                let need = e1.scale(a).sub(&e).offset(a - 1);
                let mut test = self.clone();
                for neg in Constraint::geq0(need).negate() {
                    test.add_constraint(neg);
                }
                test.prove_empty()
            })
        };
        let implied_upper = |unit: &Constraint| -> bool {
            // unit: -v + f1 >= 0, i.e. v <= f1.
            let f1 = unit.expr.add(&LinExpr::var(v));
            upper.iter().any(|c| {
                let b = -c.expr.coef(v);
                if b <= 1 {
                    return false;
                }
                // c: -b·v + f >= 0 → v <= floor(f/b); implied when
                // b·f1 - f + b - 1 >= 0 holds throughout.
                let f = c.expr.add(&LinExpr::term(v, b));
                let need = f1.scale(b).sub(&f).offset(b - 1);
                let mut test = self.clone();
                for neg in Constraint::geq0(need).negate() {
                    test.add_constraint(neg);
                }
                test.prove_empty()
            })
        };
        let lower2: Vec<_> = lower
            .iter()
            .filter(|c| c.expr.coef(v) != 1 || !implied_lower(c))
            .collect();
        let upper2: Vec<_> = upper
            .iter()
            .filter(|c| c.expr.coef(v) != -1 || !implied_upper(c))
            .collect();
        // Single shared coefficient g with enough slack in every pair: any
        // g consecutive integers contain a multiple of g.
        let g = lower2.first().map(|c| c.expr.coef(v))?;
        let uniform = lower2.iter().all(|c| c.expr.coef(v) == g)
            && upper2.iter().all(|c| c.expr.coef(v) == -g);
        if !uniform {
            return None;
        }
        for l in &lower2 {
            for u in &upper2 {
                let slack = l.expr.add(&u.expr);
                if !(slack.is_constant() && slack.constant_part() >= g - 1) {
                    return None;
                }
            }
        }
        Some(self.project_out(v))
    }

    /// Eliminate every variable satisfying `pred` (over-approximating).
    pub fn project_out_all(&self, pred: impl Fn(Var) -> bool) -> Polyhedron {
        let mut p = self.clone();
        loop {
            let Some(v) = p.vars().into_iter().find(|&v| pred(v)) else {
                return p;
            };
            p = p.project_out(v);
        }
    }

    /// Attempt to *prove* the polyhedron empty over the **integers** by
    /// Fourier–Motzkin elimination plus a modular-interval test on
    /// equalities.  `true` means definitely empty; `false` means "could not
    /// prove" (possibly non-empty).
    ///
    /// Results are memoized: the analyses re-ask the same emptiness
    /// questions constantly (every transfer-function subtraction and every
    /// dependence test), and constraint systems are plain integer data, so
    /// caching is exact.  The memo is two-level — a thread-local L1 in front
    /// of a sharded process-wide table — so parallel scheduler workers share
    /// proofs across threads and across analysis runs without contending on
    /// the hot path.
    pub fn prove_empty(&self) -> bool {
        if self.empty {
            return true;
        }
        if self.constraints.is_empty() {
            return false;
        }
        // Key: the constraint list as built (construction is deterministic,
        // so identical queries produce identical lists).  Look up by slice so
        // the common case (a hit) never clones the constraints.
        let g = global_prove_empty_cache();
        let epoch = g.epoch.load(Ordering::Acquire);
        let l1_hit = PROVE_EMPTY_L1.with(|cache| {
            let mut c = cache.borrow_mut();
            if c.epoch != epoch {
                // The global cache was cleared since this thread last looked:
                // drop the now-invalid L1 wholesale.
                c.epoch = epoch;
                c.map.clear();
            }
            c.map.get(self.constraints.as_slice()).copied()
        });
        if let Some(hit) = l1_hit {
            g.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Global lookup with in-flight deduplication: a miss inserts a
        // `Running` marker and computes outside the lock; concurrent demands
        // for the same system block on the shard's condvar and share the
        // result instead of recomputing it.  (Without this, parallel
        // classify workers each redo the expensive proofs that structurally
        // similar loops share, and the fan-out loses its speedup to
        // duplicated work.)  Proof subqueries recurse through `prove_empty`,
        // but the recursion graph is acyclic — a cycle would already be
        // infinite recursion sequentially — so waiting cannot deadlock.
        let shard = g.shard_of(self.constraints.as_slice());
        let result = loop {
            let mut m = shard.map.lock();
            match m.get(self.constraints.as_slice()) {
                Some(ProveSlot::Done(r)) => {
                    g.hits.fetch_add(1, Ordering::Relaxed);
                    break *r;
                }
                Some(ProveSlot::Running) => {
                    shard.done.wait(&mut m);
                    continue;
                }
                None => {}
            }
            m.insert(self.constraints.clone(), ProveSlot::Running);
            drop(m);
            // If the proof unwinds, the marker must not strand waiters.
            struct Claim<'a> {
                shard: &'a ProveShard,
                key: &'a [Constraint],
                armed: bool,
            }
            impl Drop for Claim<'_> {
                fn drop(&mut self) {
                    if self.armed {
                        self.shard.map.lock().remove(self.key);
                        self.shard.done.notify_all();
                    }
                }
            }
            let mut claim = Claim {
                shard,
                key: self.constraints.as_slice(),
                armed: true,
            };
            let result = self.prove_empty_uncached();
            claim.armed = false;
            g.misses.fetch_add(1, Ordering::Relaxed);
            let mut m = shard.map.lock();
            if m.len() > 100_000 {
                // Evict finished entries only: a `Running` marker has live
                // waiters (or a live runner) attached to it.
                m.retain(|_, v| matches!(v, ProveSlot::Running));
            }
            m.insert(self.constraints.clone(), ProveSlot::Done(result));
            drop(m);
            shard.done.notify_all();
            break result;
        };
        PROVE_EMPTY_L1.with(|cache| {
            let mut c = cache.borrow_mut();
            if c.map.len() > 100_000 {
                c.map.clear();
            }
            c.map.insert(self.constraints.clone(), result);
        });
        result
    }

    fn prove_empty_uncached(&self) -> bool {
        // Cheap pairwise contradiction check first: e >= 0 and -e - k >= 0 (k >= 1).
        for (i, a) in self.constraints.iter().enumerate() {
            for b in &self.constraints[i + 1..] {
                if a.kind == ConstraintKind::GeqZero
                    && b.kind == ConstraintKind::GeqZero
                    && neg_var_parts(&a.expr, &b.expr)
                    && a.expr.constant_part() + b.expr.constant_part() < 0
                {
                    return true;
                }
            }
        }
        let mut p = self.clone();
        let mut fuel = 32usize;
        loop {
            if p.empty {
                return true;
            }
            if p.num_constraints() <= 32 && p.modular_contradiction() {
                return true;
            }
            let vars = p.vars();
            let Some(&v) = vars.iter().next() else {
                // Only constant constraints remain; add_constraint already
                // folded falsities into `empty`.
                return p.empty;
            };
            if fuel == 0 || p.approximate || p.num_constraints() > 48 {
                // Budget exhausted: conservatively assume non-empty.
                return false;
            }
            fuel -= 1;
            // Prefer eliminating the variable with the fewest occurrences to
            // delay blow-up.
            let v = vars
                .iter()
                .copied()
                .min_by_key(|&w| p.constraints.iter().filter(|c| c.expr.mentions(w)).count())
                .unwrap_or(v);
            p = p.project_out(v);
        }
    }

    /// Modular-interval test (a GCD/Banerjee-style integer refinement):
    /// for an equality `Σ aᵢvᵢ + c == 0` and a modulus `g > 1` dividing
    /// some coefficients, the residual `R = Σ_{g∤aᵢ} aᵢvᵢ + c` must be a
    /// multiple of `g`.  If the polyhedron bounds `R` into an interval
    /// containing no multiple of `g`, the system has no integer solution.
    /// (This is what separates `i1 + 64·j1 == i2 + 64·j2` accesses of
    /// column-major 2-D arrays, which rational FM cannot.)
    fn modular_contradiction(&self) -> bool {
        let eqs: Vec<&Constraint> = self
            .constraints
            .iter()
            .filter(|c| c.kind == ConstraintKind::EqZero)
            .collect();
        for eq in eqs {
            let mut moduli: Vec<i64> = eq
                .expr
                .terms()
                .map(|(_, a)| a.abs())
                .filter(|&a| a > 1)
                .collect();
            moduli.sort_unstable();
            moduli.dedup();
            for g in moduli {
                // Residual terms not divisible by g.
                let mut r = LinExpr::constant(eq.expr.constant_part());
                let mut has_divisible = false;
                for (v, a) in eq.expr.terms() {
                    if a % g == 0 {
                        has_divisible = true;
                    } else {
                        r = r.add(&LinExpr::term(v, a));
                    }
                }
                if !has_divisible {
                    continue;
                }
                if r.is_constant() {
                    if r.constant_part().rem_euclid(g) != 0 {
                        return true;
                    }
                    continue;
                }
                // Bound R cheaply: direct interval reasoning for 1- and
                // 2-variable residuals (the overwhelmingly common case:
                // `i1 - i2 + c` difference patterns from dependence tests),
                // falling back to a mini Fourier–Motzkin projection over R's
                // support otherwise.
                let bounds = self
                    .bound_residual_cheap(&r, eq)
                    .or_else(|| self.bound_residual_fm(&r, eq));
                if let Some((lo, hi)) = bounds {
                    if lo > hi {
                        return true;
                    }
                    // Any multiple of g in [lo, hi]?
                    let first = lo.div_euclid(g) + if lo.rem_euclid(g) != 0 { 1 } else { 0 };
                    if first * g > hi {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Containment test: does `self ⊆ other` *provably* hold?
    ///
    /// `self ⊆ other` iff for every constraint `c` of `other`,
    /// `self ∧ ¬c` is empty.  Negating equalities yields a disjunction, both
    /// branches of which must be empty.
    pub fn provably_subset_of(&self, other: &Polyhedron) -> bool {
        if self.empty {
            return true;
        }
        if other.empty {
            return self.prove_empty();
        }
        if self.approximate {
            // We only know an over-approximation of self.
            return other.is_universe();
        }
        for c in &other.constraints {
            for neg in c.negate() {
                let mut test = self.clone();
                test.add_constraint(neg);
                if !test.prove_empty() {
                    return false;
                }
            }
        }
        true
    }

    /// Local simplification: dedup, drop constraints implied by an identical
    /// stronger one (same variable part, weaker constant).
    pub fn local_simplify(&mut self) {
        if self.empty {
            return;
        }
        self.constraints.sort_unstable();
        self.constraints.dedup();
        // a: e + c1 >= 0, b: e + c2 >= 0 with c1 <= c2 — keep only a.
        let mut keep: Vec<Constraint> = Vec::with_capacity(self.constraints.len());
        'outer: for c in std::mem::take(&mut self.constraints) {
            if c.kind == ConstraintKind::GeqZero {
                for k in &mut keep {
                    if k.kind == ConstraintKind::GeqZero {
                        let d = c.expr.sub(&k.expr);
                        if d.is_constant() {
                            if d.constant_part() >= 0 {
                                // c is weaker; drop it.
                                continue 'outer;
                            } else {
                                // c is stronger; replace k.
                                *k = c.clone();
                                continue 'outer;
                            }
                        }
                    }
                }
            }
            keep.push(c);
        }
        self.constraints = keep;
        // Contradiction fold.
        for (i, a) in self.constraints.iter().enumerate() {
            for b in &self.constraints[i + 1..] {
                if a.kind == ConstraintKind::GeqZero
                    && b.kind == ConstraintKind::GeqZero
                    && neg_var_parts(&a.expr, &b.expr)
                    && a.expr.constant_part() + b.expr.constant_part() < 0
                {
                    *self = Polyhedron::bottom();
                    return;
                }
            }
        }
    }

    /// Check membership of a concrete point.
    pub fn contains_point(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<bool> {
        if self.empty {
            return Some(false);
        }
        for c in &self.constraints {
            let v = c.expr.eval(env)?;
            let ok = match c.kind {
                ConstraintKind::GeqZero => v >= 0,
                ConstraintKind::EqZero => v == 0,
            };
            if !ok {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Cheap residual bounding: unit constant bounds per variable, plus
    /// difference bounds for two-variable ±k residuals (covers the
    /// `i1 - i2 + c` dependence-test pattern).  Sound over-approximation.
    fn bound_residual_cheap(&self, r: &LinExpr, skip: &Constraint) -> Option<(i64, i64)> {
        let terms: Vec<(Var, i64)> = r.terms().collect();
        let c0 = r.constant_part();
        // Constant unit bounds per variable.
        let var_bounds = |v: Var| -> (Option<i64>, Option<i64>) {
            let mut lo = None;
            let mut hi = None;
            for c in &self.constraints {
                if std::ptr::eq(c, skip) {
                    continue;
                }
                let a = c.expr.coef(v);
                if a == 0 || c.expr.num_vars() != 1 {
                    continue;
                }
                let k = c.expr.constant_part();
                match (c.kind, a) {
                    (ConstraintKind::GeqZero, 1) => {
                        lo = Some(lo.map_or(-k, |x: i64| x.max(-k)));
                    }
                    (ConstraintKind::GeqZero, -1) => {
                        hi = Some(hi.map_or(k, |x: i64| x.min(k)));
                    }
                    (ConstraintKind::EqZero, 1) => {
                        lo = Some(-k);
                        hi = Some(-k);
                    }
                    _ => {}
                }
            }
            (lo, hi)
        };
        match terms.as_slice() {
            [(v, a)] => {
                let (lo, hi) = var_bounds(*v);
                let (lo, hi) = (lo?, hi?);
                let (x, y) = (a * lo, a * hi);
                Some((c0 + x.min(y), c0 + x.max(y)))
            }
            [(x, ax), (y, ay)] if *ax == -*ay => {
                // r = k·(x − y) + c0: bound d = x − y from difference
                // constraints and the interval product.
                let k = *ax;
                let (lox, hix) = var_bounds(*x);
                let (loy, hiy) = var_bounds(*y);
                let mut dlo = match (lox, hiy) {
                    (Some(a), Some(b)) => Some(a - b),
                    _ => None,
                };
                let mut dhi = match (hix, loy) {
                    (Some(a), Some(b)) => Some(a - b),
                    _ => None,
                };
                // Difference constraints ±(x − y) + c >= 0.
                for c in &self.constraints {
                    if std::ptr::eq(c, skip) || c.expr.num_vars() != 2 {
                        continue;
                    }
                    let cx = c.expr.coef(*x);
                    let cy = c.expr.coef(*y);
                    let cc = c.expr.constant_part();
                    if cx == 1 && cy == -1 && c.kind == ConstraintKind::GeqZero {
                        // x − y + cc >= 0 → d >= −cc
                        dlo = Some(dlo.map_or(-cc, |v: i64| v.max(-cc)));
                    } else if cx == -1 && cy == 1 && c.kind == ConstraintKind::GeqZero {
                        // −x + y + cc >= 0 → d <= cc
                        dhi = Some(dhi.map_or(cc, |v: i64| v.min(cc)));
                    }
                }
                let (dlo, dhi) = (dlo?, dhi?);
                let (a, b) = (k * dlo, k * dhi);
                Some((c0 + a.min(b), c0 + a.max(b)))
            }
            _ => None,
        }
    }

    /// Fallback residual bounding via a mini Fourier–Motzkin projection over
    /// the residual's support.
    fn bound_residual_fm(&self, r: &LinExpr, skip: &Constraint) -> Option<(i64, i64)> {
        let t = Var::Sym(u32::MAX);
        if self.mentions(t) {
            return None;
        }
        let support: BTreeSet<Var> = r.vars().collect();
        let mut q = Polyhedron::universe();
        for c in &self.constraints {
            if std::ptr::eq(c, skip) {
                continue;
            }
            if c.expr.vars().all(|v| support.contains(&v)) {
                q.add_constraint(c.clone());
            }
        }
        q.add_constraint(Constraint::eq(&LinExpr::var(t), r));
        let proj = q.project_out_all(|v| v != t);
        if proj.is_approximate() {
            return None;
        }
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        for c in proj.constraints() {
            let a = c.expr.coef(t);
            if a == 0 || !c.expr.sub(&LinExpr::term(t, a)).is_constant() {
                continue;
            }
            let k = c.expr.constant_part();
            match c.kind {
                ConstraintKind::GeqZero if a > 0 => {
                    // a·t + k >= 0 → t >= ceil(-k/a)
                    let b = (-k).div_euclid(a) + if (-k).rem_euclid(a) != 0 { 1 } else { 0 };
                    lo = Some(lo.map_or(b, |x: i64| x.max(b)));
                }
                ConstraintKind::GeqZero => {
                    let b = k.div_euclid(-a);
                    hi = Some(hi.map_or(b, |x: i64| x.min(b)));
                }
                ConstraintKind::EqZero if a.abs() == 1 => {
                    let v = -k / a;
                    lo = Some(lo.map_or(v, |x: i64| x.max(v)));
                    hi = Some(hi.map_or(v, |x: i64| x.min(v)));
                }
                _ => {}
            }
        }
        match (lo, hi) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        }
    }

    fn find_eq_with(&self, v: Var) -> Option<(usize, i64)> {
        self.constraints.iter().enumerate().find_map(|(i, c)| {
            if c.kind == ConstraintKind::EqZero {
                let a = c.expr.coef(v);
                if a != 0 {
                    return Some((i, a));
                }
            }
            None
        })
    }
}

/// True when the variable parts of `a` and `b` are exact negatives of each
/// other (so `a + b` is a constant), checked without allocating.
fn neg_var_parts(a: &LinExpr, b: &LinExpr) -> bool {
    a.num_vars() == b.num_vars()
        && a.terms()
            .zip(b.terms())
            .all(|((va, ca), (vb, cb))| va == vb && ca == -cb)
}

/// Clear the emptiness-proof memo (benchmark support: keeps timing
/// comparisons across configurations honest).  The process-wide table is
/// emptied immediately; other threads' L1 tables are invalidated lazily via
/// an epoch bump the next time they consult the cache.  Because the memo is
/// exact (a pure function of the constraint system), a racing insert that
/// lands after the clear is still correct — clearing only affects memory and
/// timing, never results.
pub fn clear_prove_empty_cache() {
    let g = global_prove_empty_cache();
    g.epoch.fetch_add(1, Ordering::AcqRel);
    for s in &g.shards {
        // In-flight markers survive a clear: their runners are live and
        // will finish (and notify) normally; only finished proofs drop.
        s.map.lock().retain(|_, v| matches!(v, ProveSlot::Running));
    }
    PROVE_EMPTY_L1.with(|cache| {
        let mut c = cache.borrow_mut();
        c.map.clear();
        c.epoch = g.epoch.load(Ordering::Acquire);
    });
}

/// `(hits, misses)` of the emptiness-proof memo since process start
/// (L1 hits count as hits).
pub fn prove_empty_cache_counters() -> (u64, u64) {
    let g = global_prove_empty_cache();
    (
        g.hits.load(Ordering::Relaxed),
        g.misses.load(Ordering::Relaxed),
    )
}

/// Export every *finished* emptiness proof from the process-wide memo, for
/// persistence.  In-flight (`Running`) markers are skipped — their runners
/// will re-prove on the next process anyway.  The order is deterministic
/// (sorted by constraint system), so equal memo states export equal lists.
pub fn export_prove_empty_memo() -> Vec<(Vec<Constraint>, bool)> {
    let g = global_prove_empty_cache();
    let mut out = Vec::new();
    for s in &g.shards {
        let map = s.map.lock();
        for (k, v) in map.iter() {
            if let ProveSlot::Done(b) = v {
                out.push((k.clone(), *b));
            }
        }
    }
    out.sort();
    out
}

/// Seed the process-wide memo with previously exported proofs (a daemon
/// warm start).  Entries whose key already holds a slot — finished or in
/// flight — are left untouched.  The memo is exact (a pure function of the
/// integer constraint system), so importing a proof computed by an earlier
/// process is always sound.  Returns how many proofs were installed.
pub fn import_prove_empty_memo(entries: &[(Vec<Constraint>, bool)]) -> usize {
    let g = global_prove_empty_cache();
    let mut installed = 0;
    for (k, b) in entries {
        let s = g.shard_of(k);
        let mut map = s.map.lock();
        if !map.contains_key(k) {
            map.insert(k.clone(), ProveSlot::Done(*b));
            installed += 1;
        }
    }
    installed
}

const PROVE_EMPTY_SHARDS: usize = 16;

type ProveEmptyMap = std::collections::HashMap<Vec<Constraint>, bool>;

/// One global-memo entry: the finished proof, or a marker that some thread
/// is computing it right now (waiters block on the shard's condvar).
enum ProveSlot {
    Running,
    Done(bool),
}

/// One shard of the global memo: slot map plus the condvar `Running`
/// waiters sleep on.
struct ProveShard {
    map: parking_lot::Mutex<std::collections::HashMap<Vec<Constraint>, ProveSlot>>,
    done: parking_lot::Condvar,
}

/// Process-wide memo for [`Polyhedron::prove_empty`]; exact (integer data).
struct GlobalProveEmptyCache {
    shards: [ProveShard; PROVE_EMPTY_SHARDS],
    /// Bumped by [`clear_prove_empty_cache`]; L1 tables holding an older
    /// epoch discard themselves before use.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GlobalProveEmptyCache {
    fn shard_of(&self, key: &[Constraint]) -> &ProveShard {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % PROVE_EMPTY_SHARDS]
    }
}

fn global_prove_empty_cache() -> &'static GlobalProveEmptyCache {
    static CACHE: std::sync::OnceLock<GlobalProveEmptyCache> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| GlobalProveEmptyCache {
        shards: std::array::from_fn(|_| ProveShard {
            map: parking_lot::Mutex::new(std::collections::HashMap::new()),
            done: parking_lot::Condvar::new(),
        }),
        epoch: AtomicU64::new(1),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Per-thread L1 in front of the global memo: hot lookups touch no lock.
struct ProveEmptyL1 {
    epoch: u64,
    map: ProveEmptyMap,
}

thread_local! {
    static PROVE_EMPTY_L1: std::cell::RefCell<ProveEmptyL1> =
        std::cell::RefCell::new(ProveEmptyL1 { epoch: 0, map: ProveEmptyMap::new() });
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.empty {
            return write!(f, "{{⊥}}");
        }
        if self.constraints.is_empty() {
            return write!(f, "{{⊤}}");
        }
        write!(f, "{{ ")?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> Var {
        Var::Sym(id)
    }
    fn x() -> LinExpr {
        LinExpr::var(s(0))
    }
    fn y() -> LinExpr {
        LinExpr::var(s(1))
    }

    /// 1 <= x <= 10
    fn range_1_10() -> Polyhedron {
        Polyhedron::from_constraints([
            Constraint::geq(&x(), &LinExpr::constant(1)),
            Constraint::leq(&x(), &LinExpr::constant(10)),
        ])
    }

    #[test]
    fn universe_and_bottom() {
        assert!(Polyhedron::universe().is_universe());
        assert!(Polyhedron::bottom().is_proven_empty());
        assert!(Polyhedron::bottom().prove_empty());
        assert!(!Polyhedron::universe().prove_empty());
    }

    #[test]
    fn contradiction_is_detected_on_add() {
        let p = Polyhedron::from_constraints([
            Constraint::geq(&x(), &LinExpr::constant(5)),
            Constraint::leq(&x(), &LinExpr::constant(2)),
        ]);
        assert!(p.prove_empty());
    }

    #[test]
    fn projection_keeps_transitive_bounds() {
        // 1 <= x <= 10, y = x + 2  ==> after eliminating x: 3 <= y <= 12
        let mut p = range_1_10();
        p.add_constraint(Constraint::eq(&y(), &x().offset(2)));
        let q = p.project_out(s(0));
        assert!(!q.mentions(s(0)));
        let in_range = |v: i64| {
            q.contains_point(&|var| if var == s(1) { Some(v) } else { None })
                .unwrap()
        };
        assert!(in_range(3));
        assert!(in_range(12));
        assert!(!in_range(2));
        assert!(!in_range(13));
    }

    #[test]
    fn projection_of_unconstrained_var_is_identity() {
        let p = range_1_10();
        assert_eq!(p.project_out(s(7)), p);
    }

    #[test]
    fn subset_tests() {
        // [2,5] ⊆ [1,10]
        let small = Polyhedron::from_constraints([
            Constraint::geq(&x(), &LinExpr::constant(2)),
            Constraint::leq(&x(), &LinExpr::constant(5)),
        ]);
        let big = range_1_10();
        assert!(small.provably_subset_of(&big));
        assert!(!big.provably_subset_of(&small));
        assert!(Polyhedron::bottom().provably_subset_of(&small));
        assert!(small.provably_subset_of(&Polyhedron::universe()));
    }

    #[test]
    fn symbolic_subset() {
        // {d0 == s0} ⊆ {s0 <= d0 <= s0 + 1}
        let d = LinExpr::var(Var::Dim(0));
        let n = LinExpr::var(s(0));
        let point = Polyhedron::from_constraints([Constraint::eq(&d, &n)]);
        let seg = Polyhedron::from_constraints([
            Constraint::geq(&d, &n),
            Constraint::leq(&d, &n.offset(1)),
        ]);
        assert!(point.provably_subset_of(&seg));
        assert!(!seg.provably_subset_of(&point));
    }

    #[test]
    fn exact_projection_rules() {
        // Unbounded above: always exact (any shadow point extends upward).
        let p = Polyhedron::from_constraints([Constraint::geq(&x().scale(2), &y())]);
        assert!(p.project_exact(s(0)).is_some());
        // Unit bounds: exact.
        let q = range_1_10();
        assert!(q.project_exact(s(0)).is_some());
        // 2x == y as inequalities: slack 0 < 1 → NOT exact (only even y).
        let tight = Polyhedron::from_constraints([
            Constraint::geq(&x().scale(2), &y()),
            Constraint::leq(&x().scale(2), &y()),
        ]);
        assert!(tight.project_exact(s(0)).is_none());
        // y <= 6x <= y+5: any 6 consecutive integers contain a multiple of
        // 6 → exact (the linearized rectangular-nest pattern).
        let nest = Polyhedron::from_constraints([
            Constraint::geq(&x().scale(6), &y()),
            Constraint::leq(&x().scale(6), &y().offset(5)),
        ]);
        assert!(nest.project_exact(s(0)).is_some());
        // Width 4 < 5 → may miss a multiple of 6 → not exact.
        let thin = Polyhedron::from_constraints([
            Constraint::geq(&x().scale(6), &y()),
            Constraint::leq(&x().scale(6), &y().offset(4)),
        ]);
        assert!(thin.project_exact(s(0)).is_none());
        // Redundant unit bound is discarded: add x >= 1 implied by
        // 6x >= y ∧ y >= 1; exactness survives.
        let with_unit = Polyhedron::from_constraints([
            Constraint::geq(&x().scale(6), &y()),
            Constraint::leq(&x().scale(6), &y().offset(5)),
            Constraint::geq(&x(), &LinExpr::constant(1)),
            Constraint::geq(&y(), &LinExpr::constant(1)),
        ]);
        assert!(with_unit.project_exact(s(0)).is_some());
    }

    #[test]
    fn membership() {
        let p = range_1_10();
        let at = |v: i64| {
            p.contains_point(&|var| if var == s(0) { Some(v) } else { None })
                .unwrap()
        };
        assert!(at(1) && at(10) && !at(0) && !at(11));
    }

    #[test]
    fn eq_substitution_path() {
        // x == 3, x >= y  -> after projecting x: 3 >= y
        let p = Polyhedron::from_constraints([
            Constraint::eq(&x(), &LinExpr::constant(3)),
            Constraint::geq(&x(), &y()),
        ]);
        let q = p.project_out(s(0));
        let at = |v: i64| {
            q.contains_point(&|var| if var == s(1) { Some(v) } else { None })
                .unwrap()
        };
        assert!(at(3) && !at(4));
    }

    #[test]
    fn dependence_style_emptiness() {
        // Two iterations i1 != i2 writing a(i): {d0 == i1, d0 == i2, i1 < i2}
        // must be provably empty (no cross-iteration overlap).
        let d = LinExpr::var(Var::Dim(0));
        let i1 = LinExpr::var(s(10));
        let i2 = LinExpr::var(s(11));
        let p = Polyhedron::from_constraints([
            Constraint::eq(&d, &i1),
            Constraint::eq(&d, &i2),
            Constraint::lt(&i1, &i2),
        ]);
        assert!(p.prove_empty());

        // Writing a(i) and reading a(i-1) across iterations overlaps:
        // {d0 == i1, d0 == i2 - 1, i1 < i2} is satisfiable.
        let q = Polyhedron::from_constraints([
            Constraint::eq(&d, &i1),
            Constraint::eq(&d, &i2.offset(-1)),
            Constraint::lt(&i1, &i2),
        ]);
        assert!(!q.prove_empty());
    }
}
