//! The pre-overhaul polyhedral kernel, kept as an executable reference.
//!
//! This module preserves the kernel the overhaul replaced — `BTreeMap`-backed
//! expressions, no precomputed fingerprints, O(n²) subtraction-driven
//! simplification, fewest-occurrences Fourier–Motzkin elimination order, and
//! no staged emptiness ladder — ported verbatim from the pre-overhaul
//! sources, minus the memo (the caller's memo wraps both kernels).
//!
//! It serves two purposes:
//!
//! * **Honest before/after benchmarking.** When the staging toggle
//!   ([`crate::set_staged_emptiness`]) is off, [`prove_empty_of`] routes
//!   emptiness proofs through this kernel, so the benchmark's baseline
//!   configuration pays the representation costs the overhaul removed —
//!   not just the algorithmic ones a flag can switch.
//! * **Differential testing.** Both kernels answer the same question
//!   ("provably empty over ℤ?"), so property tests can compare their
//!   verdicts on random systems; divergence is only legal where the staged
//!   ladder is strictly more precise.

use crate::constraint::ConstraintKind;
use crate::expr::{gcd, Var};
use crate::MAX_CONSTRAINTS;
use std::collections::{BTreeMap, BTreeSet};

/// The pre-overhaul affine expression: a `BTreeMap` of terms, heap-allocated
/// per expression, with no inline storage and no fingerprints.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct LinExpr {
    terms: BTreeMap<Var, i64>,
    constant: i64,
}

impl LinExpr {
    fn constant(c: i64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    fn var(v: Var) -> Self {
        Self::term(v, 1)
    }

    fn term(v: Var, coef: i64) -> Self {
        let mut terms = BTreeMap::new();
        if coef != 0 {
            terms.insert(v, coef);
        }
        LinExpr { terms, constant: 0 }
    }

    fn constant_part(&self) -> i64 {
        self.constant
    }

    fn coef(&self, v: Var) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    fn terms(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    fn num_vars(&self) -> usize {
        self.terms.len()
    }

    fn mentions(&self, v: Var) -> bool {
        self.terms.contains_key(&v)
    }

    fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.keys().copied()
    }

    fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant = out.constant.saturating_add(other.constant);
        for (v, c) in other.terms() {
            let e = out.terms.entry(v).or_insert(0);
            *e = e.saturating_add(c);
            if *e == 0 {
                out.terms.remove(&v);
            }
        }
        out
    }

    fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    fn scale(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::default();
        }
        LinExpr {
            terms: self
                .terms
                .iter()
                .map(|(&v, &c)| (v, c.saturating_mul(k)))
                .collect(),
            constant: self.constant.saturating_mul(k),
        }
    }

    fn substitute(&self, v: Var, repl: &LinExpr) -> LinExpr {
        let c = self.coef(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&v);
        out.add(&repl.scale(c))
    }

    fn coef_gcd(&self) -> i64 {
        self.terms.values().fold(0i64, |g, &c| gcd(g, c.abs()))
    }

    /// Divide every coefficient by `g`; caller guarantees divisibility.
    fn scale_div(&self, g: i64) -> LinExpr {
        debug_assert!(g > 0);
        let mut out = LinExpr::constant(self.constant_part() / g);
        for (v, c) in self.terms() {
            debug_assert_eq!(c % g, 0);
            out = out.add(&LinExpr::term(v, c / g));
        }
        out
    }

    fn offset(&self, k: i64) -> LinExpr {
        let mut out = self.clone();
        out.constant = out.constant.saturating_add(k);
        out
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct Constraint {
    expr: LinExpr,
    kind: ConstraintKind,
}

impl Constraint {
    fn geq0(expr: LinExpr) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::GeqZero,
        }
        .normalized()
    }

    fn eq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint {
            expr: lhs.sub(rhs),
            kind: ConstraintKind::EqZero,
        }
        .normalized()
    }

    /// Normalize: divide by the gcd of the variable coefficients, tightening
    /// the constant with floor division (valid over the integers).
    fn normalized(mut self) -> Self {
        let g = self.expr.coef_gcd();
        if g > 1 {
            match self.kind {
                ConstraintKind::GeqZero => {
                    let c = self.expr.constant_part();
                    let mut e = self.expr.sub(&LinExpr::constant(c)).scale_div(g);
                    e = e.offset(c.div_euclid(g));
                    self.expr = e;
                }
                ConstraintKind::EqZero => {
                    let c = self.expr.constant_part();
                    if c % g == 0 {
                        self.expr = self
                            .expr
                            .sub(&LinExpr::constant(c))
                            .scale_div(g)
                            .offset(c / g);
                    }
                    // g ∤ c: unsatisfiable; kept as-is for the emptiness
                    // machinery to notice.
                }
            }
        }
        self
    }

    fn is_trivially_true(&self) -> bool {
        self.expr.is_constant()
            && match self.kind {
                ConstraintKind::GeqZero => self.expr.constant_part() >= 0,
                ConstraintKind::EqZero => self.expr.constant_part() == 0,
            }
    }

    fn is_trivially_false(&self) -> bool {
        if self.expr.is_constant() {
            return match self.kind {
                ConstraintKind::GeqZero => self.expr.constant_part() < 0,
                ConstraintKind::EqZero => self.expr.constant_part() != 0,
            };
        }
        if self.kind == ConstraintKind::EqZero {
            let g = self.expr.coef_gcd();
            if g > 1 && self.expr.constant_part() % g != 0 {
                return true;
            }
        }
        false
    }

    fn substitute(&self, v: Var, repl: &LinExpr) -> Constraint {
        Constraint {
            expr: self.expr.substitute(v, repl),
            kind: self.kind,
        }
        .normalized()
    }
}

fn neg_var_parts(a: &LinExpr, b: &LinExpr) -> bool {
    a.num_vars() == b.num_vars()
        && a.terms()
            .zip(b.terms())
            .all(|((va, ca), (vb, cb))| va == vb && ca == cb.saturating_neg())
}

#[derive(Clone, Debug)]
struct Polyhedron {
    constraints: Vec<Constraint>,
    empty: bool,
    approximate: bool,
}

impl Polyhedron {
    fn universe() -> Self {
        Polyhedron {
            constraints: Vec::new(),
            empty: false,
            approximate: false,
        }
    }

    fn bottom() -> Self {
        Polyhedron {
            constraints: Vec::new(),
            empty: true,
            approximate: false,
        }
    }

    fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    fn mentions(&self, v: Var) -> bool {
        self.constraints.iter().any(|c| c.expr.mentions(v))
    }

    fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for c in &self.constraints {
            out.extend(c.expr.vars());
        }
        out
    }

    fn add_constraint(&mut self, c: Constraint) {
        if self.empty || c.is_trivially_true() {
            return;
        }
        if c.is_trivially_false() {
            *self = Polyhedron::bottom();
            return;
        }
        if self.constraints.contains(&c) {
            return;
        }
        if self.constraints.len() >= MAX_CONSTRAINTS {
            // Sound for may-sets: dropping a constraint only enlarges.
            self.approximate = true;
            return;
        }
        self.constraints.push(c);
    }

    fn substitute(&self, v: Var, repl: &LinExpr) -> Polyhedron {
        if self.empty {
            return Polyhedron::bottom();
        }
        let mut out = Polyhedron {
            constraints: Vec::with_capacity(self.constraints.len()),
            empty: false,
            approximate: self.approximate,
        };
        for c in &self.constraints {
            out.add_constraint(c.substitute(v, repl));
        }
        out
    }

    fn find_eq_with(&self, v: Var) -> Option<(usize, i64)> {
        self.constraints.iter().enumerate().find_map(|(i, c)| {
            if c.kind == ConstraintKind::EqZero {
                let a = c.expr.coef(v);
                if a != 0 {
                    return Some((i, a));
                }
            }
            None
        })
    }

    /// Fourier–Motzkin elimination of `v` (rational shadow).
    fn project_out(&self, v: Var) -> Polyhedron {
        if self.empty {
            return Polyhedron::bottom();
        }
        if !self.mentions(v) {
            return self.clone();
        }
        // Equality substitution first: a·v + e == 0 with a = ±1.
        if let Some((idx, a)) = self.find_eq_with(v) {
            let eq = &self.constraints[idx];
            if a.abs() == 1 {
                let repl = eq.expr.sub(&LinExpr::term(v, a)).scale(-a);
                let mut rest = self.clone();
                rest.constraints.remove(idx);
                return rest.substitute(v, &repl).project_out(v);
            }
        }
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        let mut rest = Vec::new();
        for c in &self.constraints {
            let split: Vec<Constraint> = match c.kind {
                ConstraintKind::EqZero if c.expr.mentions(v) => vec![
                    Constraint::geq0(c.expr.clone()),
                    Constraint::geq0(c.expr.scale(-1)),
                ],
                _ => vec![c.clone()],
            };
            for c in split {
                let a = c.expr.coef(v);
                if a > 0 {
                    lower.push(c);
                } else if a < 0 {
                    upper.push(c);
                } else {
                    rest.push(c);
                }
            }
        }
        let mut out = Polyhedron {
            constraints: Vec::new(),
            empty: false,
            approximate: self.approximate,
        };
        for c in rest {
            out.add_constraint(c);
        }
        if lower.len() * upper.len() > MAX_CONSTRAINTS {
            out.approximate = true;
            out.local_simplify();
            return out;
        }
        for l in &lower {
            let a = l.expr.coef(v);
            for u in &upper {
                let b = -u.expr.coef(v);
                debug_assert!(a > 0 && b > 0);
                let g = gcd(a, b);
                let combined = l.expr.scale(b / g).add(&u.expr.scale(a / g));
                out.add_constraint(Constraint::geq0(combined));
                if out.empty {
                    return Polyhedron::bottom();
                }
            }
        }
        out.local_simplify();
        out
    }

    fn project_out_all(&self, pred: impl Fn(Var) -> bool) -> Polyhedron {
        let mut p = self.clone();
        loop {
            let Some(v) = p.vars().into_iter().find(|&v| pred(v)) else {
                return p;
            };
            p = p.project_out(v);
        }
    }

    /// Dedup plus O(n²) same-part dominance and contradiction scans, each
    /// driven by full expression subtraction.
    fn local_simplify(&mut self) {
        if self.empty {
            return;
        }
        self.constraints
            .sort_unstable_by(|a, b| a.expr.terms.cmp(&b.expr.terms).then(a.kind.cmp(&b.kind)));
        self.constraints.dedup();
        let mut keep: Vec<Constraint> = Vec::with_capacity(self.constraints.len());
        'outer: for c in std::mem::take(&mut self.constraints) {
            if c.kind == ConstraintKind::GeqZero {
                for k in &mut keep {
                    if k.kind == ConstraintKind::GeqZero {
                        let d = c.expr.sub(&k.expr);
                        if d.is_constant() {
                            if d.constant_part() >= 0 {
                                continue 'outer; // c is weaker; drop it
                            }
                            *k = c.clone(); // c is stronger; replace k
                            continue 'outer;
                        }
                    }
                }
            }
            keep.push(c);
        }
        self.constraints = keep;
        for (i, a) in self.constraints.iter().enumerate() {
            for b in &self.constraints[i + 1..] {
                if a.kind == ConstraintKind::GeqZero
                    && b.kind == ConstraintKind::GeqZero
                    && neg_var_parts(&a.expr, &b.expr)
                    && a.expr
                        .constant_part()
                        .saturating_add(b.expr.constant_part())
                        < 0
                {
                    *self = Polyhedron::bottom();
                    return;
                }
            }
        }
    }

    /// The pre-overhaul emptiness proof: pairwise contradictions, then the
    /// Fourier–Motzkin loop with the modular test re-run every iteration and
    /// the fewest-occurrences elimination order.
    fn prove_empty(&self) -> bool {
        for (i, a) in self.constraints.iter().enumerate() {
            for b in &self.constraints[i + 1..] {
                if a.kind == ConstraintKind::GeqZero
                    && b.kind == ConstraintKind::GeqZero
                    && neg_var_parts(&a.expr, &b.expr)
                    && a.expr
                        .constant_part()
                        .saturating_add(b.expr.constant_part())
                        < 0
                {
                    return true;
                }
            }
        }
        let mut p = self.clone();
        let mut fuel = 32usize;
        loop {
            if p.empty {
                return true;
            }
            if p.num_constraints() <= 32 && p.modular_contradiction() {
                return true;
            }
            let vars = p.vars();
            let Some(&v) = vars.iter().next() else {
                return p.empty;
            };
            if fuel == 0 || p.approximate || p.num_constraints() > 48 {
                // Budget exhausted: conservatively assume non-empty.
                return false;
            }
            fuel -= 1;
            let v = vars
                .iter()
                .copied()
                .min_by_key(|&w| p.constraints.iter().filter(|c| c.expr.mentions(w)).count())
                .unwrap_or(v);
            p = p.project_out(v);
        }
    }

    /// Modular-interval test: for an equality `Σ aᵢvᵢ + c == 0` and a
    /// modulus `g > 1` dividing some coefficients, the residual must be a
    /// multiple of `g`; an interval for the residual containing no such
    /// multiple proves integer emptiness.
    fn modular_contradiction(&self) -> bool {
        let eqs: Vec<&Constraint> = self
            .constraints
            .iter()
            .filter(|c| c.kind == ConstraintKind::EqZero)
            .collect();
        for eq in eqs {
            let mut moduli: Vec<i64> = eq
                .expr
                .terms()
                .map(|(_, a)| a.abs())
                .filter(|&a| a > 1)
                .collect();
            moduli.sort_unstable();
            moduli.dedup();
            for g in moduli {
                let mut r = LinExpr::constant(eq.expr.constant_part());
                let mut has_divisible = false;
                for (v, a) in eq.expr.terms() {
                    if a % g == 0 {
                        has_divisible = true;
                    } else {
                        r = r.add(&LinExpr::term(v, a));
                    }
                }
                if !has_divisible {
                    continue;
                }
                if r.is_constant() {
                    if r.constant_part().rem_euclid(g) != 0 {
                        return true;
                    }
                    continue;
                }
                let bounds = self
                    .bound_residual_cheap(&r, eq)
                    .or_else(|| self.bound_residual_fm(&r, eq));
                if let Some((lo, hi)) = bounds {
                    if lo > hi {
                        return true;
                    }
                    let first = lo.div_euclid(g) + if lo.rem_euclid(g) != 0 { 1 } else { 0 };
                    if first * g > hi {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Cheap residual bounding: unit constant bounds per variable, plus
    /// difference bounds for two-variable ±k residuals.
    fn bound_residual_cheap(&self, r: &LinExpr, skip: &Constraint) -> Option<(i64, i64)> {
        let terms: Vec<(Var, i64)> = r.terms().collect();
        let c0 = r.constant_part();
        let var_bounds = |v: Var| -> (Option<i64>, Option<i64>) {
            let mut lo = None;
            let mut hi = None;
            for c in &self.constraints {
                if std::ptr::eq(c, skip) {
                    continue;
                }
                let a = c.expr.coef(v);
                if a == 0 || c.expr.num_vars() != 1 {
                    continue;
                }
                let k = c.expr.constant_part();
                match (c.kind, a) {
                    (ConstraintKind::GeqZero, 1) => {
                        lo = Some(lo.map_or(-k, |x: i64| x.max(-k)));
                    }
                    (ConstraintKind::GeqZero, -1) => {
                        hi = Some(hi.map_or(k, |x: i64| x.min(k)));
                    }
                    (ConstraintKind::EqZero, 1) => {
                        lo = Some(-k);
                        hi = Some(-k);
                    }
                    _ => {}
                }
            }
            (lo, hi)
        };
        match terms.as_slice() {
            [(v, a)] => {
                let (lo, hi) = var_bounds(*v);
                let (lo, hi) = (lo?, hi?);
                let (x, y) = (a * lo, a * hi);
                Some((c0 + x.min(y), c0 + x.max(y)))
            }
            [(x, ax), (y, ay)] if *ax == -*ay => {
                let k = *ax;
                let (lox, hix) = var_bounds(*x);
                let (loy, hiy) = var_bounds(*y);
                let mut dlo = match (lox, hiy) {
                    (Some(a), Some(b)) => Some(a - b),
                    _ => None,
                };
                let mut dhi = match (hix, loy) {
                    (Some(a), Some(b)) => Some(a - b),
                    _ => None,
                };
                for c in &self.constraints {
                    if std::ptr::eq(c, skip) || c.expr.num_vars() != 2 {
                        continue;
                    }
                    let cx = c.expr.coef(*x);
                    let cy = c.expr.coef(*y);
                    let cc = c.expr.constant_part();
                    if cx == 1 && cy == -1 && c.kind == ConstraintKind::GeqZero {
                        dlo = Some(dlo.map_or(-cc, |v: i64| v.max(-cc)));
                    } else if cx == -1 && cy == 1 && c.kind == ConstraintKind::GeqZero {
                        dhi = Some(dhi.map_or(cc, |v: i64| v.min(cc)));
                    }
                }
                let (dlo, dhi) = (dlo?, dhi?);
                let (a, b) = (k * dlo, k * dhi);
                Some((c0 + a.min(b), c0 + a.max(b)))
            }
            _ => None,
        }
    }

    /// Fallback residual bounding via a mini Fourier–Motzkin projection over
    /// the residual's support.
    fn bound_residual_fm(&self, r: &LinExpr, skip: &Constraint) -> Option<(i64, i64)> {
        let t = Var::Sym(u32::MAX);
        if self.mentions(t) {
            return None;
        }
        let support: BTreeSet<Var> = r.vars().collect();
        let mut q = Polyhedron::universe();
        for c in &self.constraints {
            if std::ptr::eq(c, skip) {
                continue;
            }
            if c.expr.vars().all(|v| support.contains(&v)) {
                q.add_constraint(c.clone());
            }
        }
        q.add_constraint(Constraint::eq(&LinExpr::var(t), r));
        let proj = q.project_out_all(|v| v != t);
        if proj.approximate {
            return None;
        }
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        for c in &proj.constraints {
            let a = c.expr.coef(t);
            if a == 0 || !c.expr.sub(&LinExpr::term(t, a)).is_constant() {
                continue;
            }
            let k = c.expr.constant_part();
            match c.kind {
                ConstraintKind::GeqZero if a > 0 => {
                    let b = (-k).div_euclid(a) + if (-k).rem_euclid(a) != 0 { 1 } else { 0 };
                    lo = Some(lo.map_or(b, |x: i64| x.max(b)));
                }
                ConstraintKind::GeqZero => {
                    let b = k.div_euclid(-a);
                    hi = Some(hi.map_or(b, |x: i64| x.min(b)));
                }
                ConstraintKind::EqZero if a.abs() == 1 => {
                    let v = -k / a;
                    lo = Some(lo.map_or(v, |x: i64| x.max(v)));
                    hi = Some(hi.map_or(v, |x: i64| x.min(v)));
                }
                _ => {}
            }
        }
        match (lo, hi) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        }
    }
}

/// Prove emptiness of an overhauled-kernel polyhedron with the pre-overhaul
/// kernel: convert the (already normalized) constraints into the `BTreeMap`
/// representation and run the old pipeline end to end.  Called under the
/// memo, exactly like the staged ladder.
pub(crate) fn prove_empty_of(p: &crate::polyhedron::Polyhedron) -> bool {
    if p.is_proven_empty() {
        return true;
    }
    let mut q = Polyhedron {
        constraints: Vec::with_capacity(p.num_constraints()),
        empty: false,
        approximate: p.is_approximate(),
    };
    for c in p.constraints() {
        q.add_constraint(Constraint {
            expr: LinExpr {
                terms: c.expr.terms().collect(),
                constant: c.expr.constant_part(),
            },
            kind: c.kind,
        });
        if q.empty {
            return true;
        }
    }
    q.prove_empty()
}
