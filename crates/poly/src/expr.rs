//! Affine (linear + constant) integer expressions over symbolic variables.

use std::collections::BTreeMap;
use std::fmt;

/// A variable appearing in a linear expression.
///
/// Two name spaces exist:
/// * `Dim(k)` — the `k`-th dimension variable of an array section (the
///   paper's `d0..dn`), always bound by the section itself;
/// * `Sym(id)` — a free symbolic variable: a loop index, a formal parameter,
///   or a symbolic constant of the surrounding program.  The meaning of `id`
///   is owned by the client (the analysis crate maps IR variable ids here).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Var {
    /// Array dimension variable `d<k>`.
    Dim(u8),
    /// Free symbolic variable with a client-defined identity.
    Sym(u32),
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::Dim(k) => write!(f, "d{k}"),
            Var::Sym(s) => write!(f, "s{s}"),
        }
    }
}

/// An affine expression `c + Σ a_i · v_i` with `i64` coefficients.
///
/// Coefficients of value zero are never stored, so structural equality is
/// semantic equality.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, i64>,
    constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `1 · v`.
    pub fn var(v: Var) -> Self {
        Self::term(v, 1)
    }

    /// The expression `coef · v`.
    pub fn term(v: Var, coef: i64) -> Self {
        let mut terms = BTreeMap::new();
        if coef != 0 {
            terms.insert(v, coef);
        }
        Self { terms, constant: 0 }
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coef(&self, v: Var) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    /// Iterate over the `(var, coef)` terms with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// True if the expression is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// True if the expression is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant == 0
    }

    /// Number of variables with non-zero coefficients.
    pub fn num_vars(&self) -> usize {
        self.terms.len()
    }

    /// True if `v` occurs with a non-zero coefficient.
    pub fn mentions(&self, v: Var) -> bool {
        self.terms.contains_key(&v)
    }

    /// All variables occurring in the expression.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.keys().copied()
    }

    /// Add two expressions.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant = out.constant.saturating_add(other.constant);
        for (v, c) in other.terms() {
            let e = out.terms.entry(v).or_insert(0);
            *e = e.saturating_add(c);
            if *e == 0 {
                out.terms.remove(&v);
            }
        }
        out
    }

    /// Subtract `other` from `self`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// Multiply by a constant.
    pub fn scale(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self
                .terms
                .iter()
                .map(|(&v, &c)| (v, c.saturating_mul(k)))
                .collect(),
            constant: self.constant.saturating_mul(k),
        }
    }

    /// Add a constant offset.
    pub fn offset(&self, k: i64) -> LinExpr {
        let mut out = self.clone();
        out.constant = out.constant.saturating_add(k);
        out
    }

    /// Substitute `v := repl` throughout.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> LinExpr {
        let c = self.coef(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&v);
        out.add(&repl.scale(c))
    }

    /// Rename variable `from` to `to`.  `to` must not already occur.
    pub fn rename(&self, from: Var, to: Var) -> LinExpr {
        self.substitute(from, &LinExpr::var(to))
    }

    /// Greatest common divisor of all variable coefficients (0 if constant).
    pub fn coef_gcd(&self) -> i64 {
        self.terms.values().fold(0i64, |g, &c| gcd(g, c.abs()))
    }

    /// Evaluate under a full assignment; `None` if some variable is unbound.
    pub fn eval(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (v, c) in self.terms() {
            acc = acc.checked_add(c.checked_mul(env(v)?)?)?;
        }
        Some(acc)
    }
}

/// gcd with `gcd(0, x) = x`.
pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> Var {
        Var::Sym(id)
    }

    #[test]
    fn zero_coefficients_are_not_stored() {
        let e = LinExpr::term(s(1), 2).add(&LinExpr::term(s(1), -2));
        assert!(e.is_zero());
        assert_eq!(e.num_vars(), 0);
    }

    #[test]
    fn add_sub_scale() {
        let e = LinExpr::var(s(0)).add(&LinExpr::constant(3));
        let f = e.scale(2); // 2*s0 + 6
        assert_eq!(f.coef(s(0)), 2);
        assert_eq!(f.constant_part(), 6);
        let g = f.sub(&e); // s0 + 3
        assert_eq!(g, e);
    }

    #[test]
    fn substitute_replaces_all_occurrences() {
        // 3*s0 + s1 + 1 with s0 := s2 - 2  =>  3*s2 + s1 - 5
        let e = LinExpr::term(s(0), 3).add(&LinExpr::var(s(1))).offset(1);
        let repl = LinExpr::var(s(2)).offset(-2);
        let out = e.substitute(s(0), &repl);
        assert_eq!(out.coef(s(2)), 3);
        assert_eq!(out.coef(s(1)), 1);
        assert_eq!(out.coef(s(0)), 0);
        assert_eq!(out.constant_part(), -5);
    }

    #[test]
    fn eval_respects_env() {
        let e = LinExpr::term(s(0), 2)
            .add(&LinExpr::term(s(1), -1))
            .offset(7);
        let v = e.eval(&|v| match v {
            Var::Sym(0) => Some(5),
            Var::Sym(1) => Some(3),
            _ => None,
        });
        assert_eq!(v, Some(2 * 5 - 3 + 7));
        let unbound = e.eval(&|_| None);
        assert_eq!(unbound, None);
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::term(s(0), 2)
            .add(&LinExpr::term(Var::Dim(0), -1))
            .offset(-4);
        assert_eq!(format!("{e}"), "-d0 + 2s0 - 4");
    }

    #[test]
    fn gcd_of_coefs() {
        let e = LinExpr::term(s(0), 6).add(&LinExpr::term(s(1), -9));
        assert_eq!(e.coef_gcd(), 3);
        assert_eq!(LinExpr::constant(5).coef_gcd(), 0);
    }
}
