//! Affine (linear + constant) integer expressions over symbolic variables.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A variable appearing in a linear expression.
///
/// Two name spaces exist:
/// * `Dim(k)` — the `k`-th dimension variable of an array section (the
///   paper's `d0..dn`), always bound by the section itself;
/// * `Sym(id)` — a free symbolic variable: a loop index, a formal parameter,
///   or a symbolic constant of the surrounding program.  The meaning of `id`
///   is owned by the client (the analysis crate maps IR variable ids here).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Var {
    /// Array dimension variable `d<k>`.
    Dim(u8),
    /// Free symbolic variable with a client-defined identity.
    Sym(u32),
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::Dim(k) => write!(f, "d{k}"),
            Var::Sym(s) => write!(f, "s{s}"),
        }
    }
}

/// Inline capacity of a [`LinExpr`]'s term list.  Dependence systems are
/// dominated by 1–3 term expressions (`d0 - i1 + c` and friends), so four
/// inline slots cover almost every expression without touching the heap.
const INLINE_TERMS: usize = 4;

/// Sorted `(var, coefficient)` list: inline up to [`INLINE_TERMS`] entries,
/// spilling to the heap beyond.  Terms are kept sorted by [`Var`] with no
/// zero coefficients, so slice comparison is semantic comparison.
#[derive(Clone)]
enum Terms {
    Inline {
        len: u8,
        buf: [(Var, i64); INLINE_TERMS],
    },
    Heap(Vec<(Var, i64)>),
}

impl Terms {
    const EMPTY_SLOT: (Var, i64) = (Var::Dim(0), 0);

    fn new() -> Terms {
        Terms::Inline {
            len: 0,
            buf: [Self::EMPTY_SLOT; INLINE_TERMS],
        }
    }

    fn as_slice(&self) -> &[(Var, i64)] {
        match self {
            Terms::Inline { len, buf } => &buf[..*len as usize],
            Terms::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [(Var, i64)] {
        match self {
            Terms::Inline { len, buf } => &mut buf[..*len as usize],
            Terms::Heap(v) => v,
        }
    }

    /// Append a term; `v` must sort after every stored var and `c` must be
    /// non-zero (the merge loops below guarantee both).
    fn push(&mut self, v: Var, c: i64) {
        debug_assert!(c != 0);
        debug_assert!(self.as_slice().last().is_none_or(|&(lv, _)| lv < v));
        match self {
            Terms::Inline { len, buf } => {
                if (*len as usize) < INLINE_TERMS {
                    buf[*len as usize] = (v, c);
                    *len += 1;
                } else {
                    let mut heap = Vec::with_capacity(INLINE_TERMS * 2);
                    heap.extend_from_slice(buf);
                    heap.push((v, c));
                    *self = Terms::Heap(heap);
                }
            }
            Terms::Heap(h) => h.push((v, c)),
        }
    }
}

impl Default for Terms {
    fn default() -> Terms {
        Terms::new()
    }
}

impl fmt::Debug for Terms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.as_slice().iter().map(|&(v, c)| (v, c)))
            .finish()
    }
}

/// An affine expression `c + Σ a_i · v_i` with `i64` coefficients.
///
/// Coefficients of value zero are never stored and terms are kept sorted by
/// variable, so structural equality is semantic equality.
#[derive(Clone, Debug, Default)]
pub struct LinExpr {
    terms: Terms,
    constant: i64,
}

impl PartialEq for LinExpr {
    fn eq(&self, other: &LinExpr) -> bool {
        self.constant == other.constant && self.terms.as_slice() == other.terms.as_slice()
    }
}

impl Eq for LinExpr {}

impl PartialOrd for LinExpr {
    fn partial_cmp(&self, other: &LinExpr) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LinExpr {
    fn cmp(&self, other: &LinExpr) -> Ordering {
        self.terms
            .as_slice()
            .cmp(other.terms.as_slice())
            .then(self.constant.cmp(&other.constant))
    }
}

impl Hash for LinExpr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.terms.as_slice().hash(state);
        self.constant.hash(state);
    }
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        Self {
            terms: Terms::new(),
            constant: c,
        }
    }

    /// The expression `1 · v`.
    pub fn var(v: Var) -> Self {
        Self::term(v, 1)
    }

    /// The expression `coef · v`.
    pub fn term(v: Var, coef: i64) -> Self {
        let mut terms = Terms::new();
        if coef != 0 {
            terms.push(v, coef);
        }
        Self { terms, constant: 0 }
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coef(&self, v: Var) -> i64 {
        let s = self.terms.as_slice();
        if s.len() <= 8 {
            s.iter()
                .find(|&&(w, _)| w == v)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        } else {
            match s.binary_search_by(|&(w, _)| w.cmp(&v)) {
                Ok(i) => s[i].1,
                Err(_) => 0,
            }
        }
    }

    /// Iterate over the `(var, coef)` terms with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (Var, i64)> + '_ {
        self.terms.as_slice().iter().copied()
    }

    /// True if the expression is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.as_slice().is_empty()
    }

    /// True if the expression is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.is_constant() && self.constant == 0
    }

    /// Number of variables with non-zero coefficients.
    pub fn num_vars(&self) -> usize {
        self.terms.as_slice().len()
    }

    /// True if `v` occurs with a non-zero coefficient.
    pub fn mentions(&self, v: Var) -> bool {
        self.coef(v) != 0
    }

    /// All variables occurring in the expression.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.as_slice().iter().map(|&(v, _)| v)
    }

    /// Add two expressions (sorted-merge of the term lists).
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let constant = self.constant.saturating_add(other.constant);
        let a = self.terms.as_slice();
        let b = other.terms.as_slice();
        if b.is_empty() {
            return LinExpr {
                terms: self.terms.clone(),
                constant,
            };
        }
        if a.is_empty() {
            return LinExpr {
                terms: other.terms.clone(),
                constant,
            };
        }
        let mut terms = Terms::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (va, ca) = a[i];
            let (vb, cb) = b[j];
            match va.cmp(&vb) {
                Ordering::Less => {
                    terms.push(va, ca);
                    i += 1;
                }
                Ordering::Greater => {
                    terms.push(vb, cb);
                    j += 1;
                }
                Ordering::Equal => {
                    let c = ca.saturating_add(cb);
                    if c != 0 {
                        terms.push(va, c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(v, c) in &a[i..] {
            terms.push(v, c);
        }
        for &(v, c) in &b[j..] {
            terms.push(v, c);
        }
        LinExpr { terms, constant }
    }

    /// Subtract `other` from `self`.
    ///
    /// A direct sorted-merge with saturating negation — bit-identical to
    /// `add(&other.scale(-1))` (`saturating_neg` and `saturating_mul(-1)`
    /// agree on every `i64`) without materializing the negated temporary.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        let constant = self
            .constant
            .saturating_add(other.constant.saturating_neg());
        let b = other.terms.as_slice();
        if b.is_empty() {
            return LinExpr {
                terms: self.terms.clone(),
                constant,
            };
        }
        let a = self.terms.as_slice();
        let mut terms = Terms::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (va, ca) = a[i];
            let (vb, cb) = b[j];
            match va.cmp(&vb) {
                Ordering::Less => {
                    terms.push(va, ca);
                    i += 1;
                }
                Ordering::Greater => {
                    terms.push(vb, cb.saturating_neg());
                    j += 1;
                }
                Ordering::Equal => {
                    let c = ca.saturating_add(cb.saturating_neg());
                    if c != 0 {
                        terms.push(va, c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(v, c) in &a[i..] {
            terms.push(v, c);
        }
        for &(v, c) in &b[j..] {
            terms.push(v, c.saturating_neg());
        }
        LinExpr { terms, constant }
    }

    /// Multiply by a constant.
    pub fn scale(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        let mut out = self.clone();
        for t in out.terms.as_mut_slice() {
            t.1 = t.1.saturating_mul(k);
        }
        out.constant = self.constant.saturating_mul(k);
        out
    }

    /// Add a constant offset.
    pub fn offset(&self, k: i64) -> LinExpr {
        let mut out = self.clone();
        out.constant = out.constant.saturating_add(k);
        out
    }

    /// Remove the `v` term, leaving everything else untouched.
    fn without(&self, v: Var) -> LinExpr {
        let mut terms = Terms::new();
        for &(w, c) in self.terms.as_slice() {
            if w != v {
                terms.push(w, c);
            }
        }
        LinExpr {
            terms,
            constant: self.constant,
        }
    }

    /// Substitute `v := repl` throughout.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> LinExpr {
        let c = self.coef(v);
        if c == 0 {
            return self.clone();
        }
        self.without(v).add(&repl.scale(c))
    }

    /// Rename variable `from` to `to`.  `to` must not already occur.
    pub fn rename(&self, from: Var, to: Var) -> LinExpr {
        self.substitute(from, &LinExpr::var(to))
    }

    /// Greatest common divisor of all variable coefficients (0 if constant).
    pub fn coef_gcd(&self) -> i64 {
        self.terms
            .as_slice()
            .iter()
            .fold(0i64, |g, &(_, c)| gcd(g, c.abs()))
    }

    /// Divide every coefficient (not the constant) by `g`; caller guarantees
    /// divisibility of the coefficients.
    pub(crate) fn scale_div(&self, g: i64) -> LinExpr {
        debug_assert!(g > 0);
        let mut out = self.clone();
        for t in out.terms.as_mut_slice() {
            debug_assert_eq!(t.1 % g, 0);
            t.1 /= g;
        }
        out.constant = self.constant / g;
        out
    }

    /// Evaluate under a full assignment; `None` if some variable is unbound.
    pub fn eval(&self, env: &dyn Fn(Var) -> Option<i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (v, c) in self.terms() {
            acc = acc.checked_add(c.checked_mul(env(v)?)?)?;
        }
        Some(acc)
    }
}

/// gcd with `gcd(0, x) = x`.
pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> Var {
        Var::Sym(id)
    }

    #[test]
    fn zero_coefficients_are_not_stored() {
        let e = LinExpr::term(s(1), 2).add(&LinExpr::term(s(1), -2));
        assert!(e.is_zero());
        assert_eq!(e.num_vars(), 0);
    }

    #[test]
    fn add_sub_scale() {
        let e = LinExpr::var(s(0)).add(&LinExpr::constant(3));
        let f = e.scale(2); // 2*s0 + 6
        assert_eq!(f.coef(s(0)), 2);
        assert_eq!(f.constant_part(), 6);
        let g = f.sub(&e); // s0 + 3
        assert_eq!(g, e);
    }

    #[test]
    fn substitute_replaces_all_occurrences() {
        // 3*s0 + s1 + 1 with s0 := s2 - 2  =>  3*s2 + s1 - 5
        let e = LinExpr::term(s(0), 3).add(&LinExpr::var(s(1))).offset(1);
        let repl = LinExpr::var(s(2)).offset(-2);
        let out = e.substitute(s(0), &repl);
        assert_eq!(out.coef(s(2)), 3);
        assert_eq!(out.coef(s(1)), 1);
        assert_eq!(out.coef(s(0)), 0);
        assert_eq!(out.constant_part(), -5);
    }

    #[test]
    fn eval_respects_env() {
        let e = LinExpr::term(s(0), 2)
            .add(&LinExpr::term(s(1), -1))
            .offset(7);
        let v = e.eval(&|v| match v {
            Var::Sym(0) => Some(5),
            Var::Sym(1) => Some(3),
            _ => None,
        });
        assert_eq!(v, Some(2 * 5 - 3 + 7));
        let unbound = e.eval(&|_| None);
        assert_eq!(unbound, None);
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::term(s(0), 2)
            .add(&LinExpr::term(Var::Dim(0), -1))
            .offset(-4);
        assert_eq!(format!("{e}"), "-d0 + 2s0 - 4");
    }

    #[test]
    fn gcd_of_coefs() {
        let e = LinExpr::term(s(0), 6).add(&LinExpr::term(s(1), -9));
        assert_eq!(e.coef_gcd(), 3);
        assert_eq!(LinExpr::constant(5).coef_gcd(), 0);
    }

    #[test]
    fn heap_spill_preserves_order_and_equality() {
        // Five terms spill past the inline capacity of four.
        let mut e = LinExpr::zero();
        for id in (0..5u32).rev() {
            e = e.add(&LinExpr::term(s(id), id as i64 + 1));
        }
        assert_eq!(e.num_vars(), 5);
        let got: Vec<Var> = e.vars().collect();
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(got, sorted);
        // Building in ascending order yields the identical expression.
        let mut f = LinExpr::zero();
        for id in 0..5u32 {
            f = f.add(&LinExpr::term(s(id), id as i64 + 1));
        }
        assert_eq!(e, f);
        // Cancelling one spilled term drops back to four live terms.
        let g = e.add(&LinExpr::term(s(4), -5));
        assert_eq!(g.num_vars(), 4);
        assert!(!g.mentions(s(4)));
    }
}
