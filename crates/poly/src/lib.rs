//! Polyhedral math substrate for the SUIF Explorer reproduction.
//!
//! The SUIF parallelizer represents array accesses as *sets of systems of
//! linear inequalities* whose integer solutions are the accessed array
//! indices (Liao, CSL-TR-00-807 §2.4, §5.2.1).  This crate provides that
//! representation and the operations the analyses need:
//!
//! * [`LinExpr`] — affine expressions over [`Var`]s with `i64` coefficients,
//! * [`Constraint`] — `expr >= 0` / `expr == 0` constraints,
//! * [`Polyhedron`] — conjunctions of constraints with Fourier–Motzkin
//!   elimination, emptiness proofs, and containment tests,
//! * [`PolySet`] — finite unions of polyhedra (the paper's "sets of systems"),
//! * [`Section`] — an array-section descriptor: a [`PolySet`] over dimension
//!   variables `d0..dk` and free symbolic variables,
//! * [`SectionSummary`] — the `<R, E, W, M>` four-tuple of sections used by
//!   the array data-flow and liveness analyses (§5.2.1), together with the
//!   meet `∧` and transfer `T` operators of Fig. 5-2.
//!
//! All operations are *conservative*: may-information (R, E, W) only ever
//! over-approximates, and must-information (M) only ever under-approximates.
//! Fourier–Motzkin is performed over the rationals, which over-approximates
//! the integer projection; exact (unit-coefficient) projection is available
//! for must-sections via [`Polyhedron::project_exact`].
//!
//! ```
//! use suif_poly::{Constraint, LinExpr, Polyhedron, Var};
//! // Writes a(i), reads a(i-1): can two iterations i1 < i2 touch the same
//! // element?  { d0 == i1, d0 == i2 - 1, i1 < i2 } is satisfiable.
//! let d0 = LinExpr::var(Var::Dim(0));
//! let i1 = LinExpr::var(Var::Sym(1));
//! let i2 = LinExpr::var(Var::Sym(2));
//! let sys = Polyhedron::from_constraints([
//!     Constraint::eq(&d0, &i1),
//!     Constraint::eq(&d0, &i2.offset(-1)),
//!     Constraint::lt(&i1, &i2),
//! ]);
//! assert!(!sys.prove_empty()); // dependence!
//! ```

#![warn(missing_docs)]

mod constraint;
mod expr;
mod legacy;
mod polyhedron;
mod polyset;
mod section;
mod summary;

pub use constraint::{Constraint, ConstraintKind};
pub use expr::{LinExpr, Var};
pub use polyhedron::{
    clear_prove_empty_cache, export_prove_empty_memo, import_prove_empty_memo, poly_stats,
    prove_empty_cache_counters, set_staged_emptiness, staged_emptiness_enabled,
    subscript_pair_disjoint, PolyStats, Polyhedron,
};
pub use polyset::PolySet;
pub use section::{ArrayId, Section};
pub use summary::{AccessSummary, SectionSummary};

/// Hard cap on the number of constraints a polyhedron may hold before
/// operations start to approximate (drop to a sound top/bottom value).
///
/// Fourier–Motzkin elimination is worst-case exponential; the paper notes the
/// same and keeps summaries merged "when no information is lost" (§5.2.1).
pub const MAX_CONSTRAINTS: usize = 160;

/// Hard cap on the number of disjuncts a [`PolySet`] may hold.
pub const MAX_DISJUNCTS: usize = 24;

/// Work budget for the constraint-distribution step of [`PolySet::subtract`]:
/// when `minuend constraints × subtrahend constraints` exceeds this, the
/// minuend disjunct is kept unchanged (sound over-approximation) instead of
/// being split into pieces each needing an emptiness proof.
pub const SUBTRACT_WORK_BUDGET: usize = 160;

/// Total emptiness-test budget for one [`PolySet::subtract`] call; past it
/// remaining minuend disjuncts are returned unchanged (sound
/// over-approximation).  Bounds the worst-case transfer-function cost on
/// loops whose exposed/must-write sets have many large disjuncts.
pub const SUBTRACT_TEST_BUDGET: isize = 1024;

thread_local! {
    static SUBTRACT_TEST_BUDGET_OVERRIDE: std::cell::Cell<Option<isize>> =
        const { std::cell::Cell::new(None) };
}

/// The effective per-call subtract test budget for this thread
/// ([`SUBTRACT_TEST_BUDGET`] unless overridden).
pub fn subtract_test_budget() -> isize {
    SUBTRACT_TEST_BUDGET_OVERRIDE
        .with(|c| c.get())
        .unwrap_or(SUBTRACT_TEST_BUDGET)
}

/// Override the subtract test budget on this thread (ablation/benchmark
/// support; `None` restores the default).  `isize::MAX` disables the budget.
pub fn set_subtract_test_budget(v: Option<isize>) {
    SUBTRACT_TEST_BUDGET_OVERRIDE.with(|c| c.set(v));
}
