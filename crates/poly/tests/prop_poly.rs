//! Property-based tests for the polyhedral substrate.
//!
//! Strategy: generate small random polyhedra over a handful of variables with
//! small coefficients, then validate the *semantic* contracts of each
//! operation by brute-force enumeration of a bounded grid of integer points.
//! Conservativeness contracts:
//!   * `prove_empty() == true`  ⇒ no grid point is a member,
//!   * `project_out(v)` contains the shadow of every member,
//!   * `provably_subset_of` ⇒ grid-subset,
//!   * `subtract` over-approximates the true difference but stays ⊆ minuend,
//!   * `intersect`/`union` are exact on the grid.

use proptest::prelude::*;
use suif_poly::{Constraint, LinExpr, PolySet, Polyhedron, Var};

const VARS: [Var; 3] = [Var::Sym(0), Var::Sym(1), Var::Sym(2)];
const GRID: std::ops::RangeInclusive<i64> = -4..=4;

fn lin_expr() -> impl Strategy<Value = LinExpr> {
    (prop::collection::vec(-3i64..=3, 3), -6i64..=6).prop_map(|(coefs, c)| {
        let mut e = LinExpr::constant(c);
        for (i, &k) in coefs.iter().enumerate() {
            e = e.add(&LinExpr::term(VARS[i], k));
        }
        e
    })
}

fn constraint() -> impl Strategy<Value = Constraint> {
    (lin_expr(), prop::bool::ANY).prop_map(|(e, eq)| {
        if eq {
            Constraint::eq0(e)
        } else {
            Constraint::geq0(e)
        }
    })
}

fn polyhedron() -> impl Strategy<Value = Polyhedron> {
    prop::collection::vec(constraint(), 0..5).prop_map(Polyhedron::from_constraints)
}

fn member(p: &Polyhedron, pt: &[i64; 3]) -> bool {
    p.contains_point(&|v| match v {
        Var::Sym(i) if (i as usize) < 3 => Some(pt[i as usize]),
        _ => None,
    })
    .unwrap_or(false)
}

fn set_member(s: &PolySet, pt: &[i64; 3]) -> bool {
    s.contains_point(&|v| match v {
        Var::Sym(i) if (i as usize) < 3 => Some(pt[i as usize]),
        _ => None,
    })
    .unwrap_or(false)
}

fn grid_points() -> Vec<[i64; 3]> {
    let mut out = Vec::new();
    for a in GRID {
        for b in GRID {
            for c in GRID {
                out.push([a, b, c]);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prove_empty_is_sound(p in polyhedron()) {
        if p.prove_empty() {
            for pt in grid_points() {
                prop_assert!(!member(&p, &pt), "claimed empty but contains {pt:?}: {p}");
            }
        }
    }

    #[test]
    fn intersection_is_exact_on_grid(a in polyhedron(), b in polyhedron()) {
        let i = a.intersect(&b);
        for pt in grid_points() {
            let want = member(&a, &pt) && member(&b, &pt);
            let got = member(&i, &pt);
            prop_assert_eq!(got, want, "at {:?}: a={} b={} i={}", pt, a, b, i);
        }
    }

    #[test]
    fn projection_over_approximates(p in polyhedron(), vi in 0u32..3) {
        let v = Var::Sym(vi);
        let q = p.project_out(v);
        prop_assert!(!q.mentions(v));
        for pt in grid_points() {
            if member(&p, &pt) {
                // The shadow (same point, v free) must be in q; evaluating q
                // at pt suffices because q does not mention v.
                prop_assert!(member(&q, &pt), "projection lost point {pt:?}");
            }
        }
    }

    #[test]
    fn subset_proof_is_sound(a in polyhedron(), b in polyhedron()) {
        if a.provably_subset_of(&b) {
            for pt in grid_points() {
                if member(&a, &pt) {
                    prop_assert!(member(&b, &pt), "claimed a⊆b but {pt:?} only in a");
                }
            }
        }
    }

    #[test]
    fn union_is_exact_on_grid(a in polyhedron(), b in polyhedron()) {
        let sa = PolySet::from_poly(a.clone());
        let sb = PolySet::from_poly(b.clone());
        let u = sa.union(&sb);
        for pt in grid_points() {
            let want = member(&a, &pt) || member(&b, &pt);
            prop_assert_eq!(set_member(&u, &pt), want, "at {:?}", pt);
        }
    }

    #[test]
    fn subtract_brackets_true_difference(a in polyhedron(), b in polyhedron()) {
        let sa = PolySet::from_poly(a.clone());
        let sb = PolySet::from_poly(b.clone());
        let d = sa.subtract(&sb);
        for pt in grid_points() {
            let in_a = member(&a, &pt);
            let in_b = member(&b, &pt);
            let got = set_member(&d, &pt);
            // Over-approximation of a \ b:
            if in_a && !in_b {
                prop_assert!(got, "true-difference point {pt:?} lost");
            }
            // ... but never beyond a:
            if got {
                prop_assert!(in_a, "difference invented point {pt:?}");
            }
        }
    }

    #[test]
    fn multi_disjunct_subtract_brackets_true_difference(
        aa in proptest::collection::vec(polyhedron(), 1..4),
        bb in proptest::collection::vec(polyhedron(), 1..4),
    ) {
        // Same bracket property as the single-disjunct test, but through the
        // disjunct-set code path where the piece-distribution and its
        // budgets (SUBTRACT_WORK_BUDGET / SUBTRACT_TEST_BUDGET) engage.
        let mut sa = PolySet::empty();
        for p in &aa { sa.push(p.clone()); }
        let mut sb = PolySet::empty();
        for p in &bb { sb.push(p.clone()); }
        let d = sa.subtract(&sb);
        for pt in grid_points() {
            let in_a = aa.iter().any(|p| member(p, &pt));
            let in_b = bb.iter().any(|p| member(p, &pt));
            let got = set_member(&d, &pt);
            // The soundness property: no true-difference point may be lost.
            if in_a && !in_b {
                prop_assert!(got, "true-difference point {pt:?} lost");
            }
            // Exact results additionally stay within the minuend; an
            // approximate result may exceed it (the MAX_DISJUNCTS widening
            // collapses to an approximate universe).
            if got && !d.is_approximate() {
                prop_assert!(in_a, "exact difference invented point {pt:?}");
            }
        }
    }

    #[test]
    fn exact_projection_matches_integer_shadow(p in polyhedron(), vi in 0u32..3) {
        let v = Var::Sym(vi);
        if let Some(q) = p.project_exact(v) {
            // Exactness: every point of q extends to a member of p for SOME
            // integer v within a generous range.
            for pt in grid_points() {
                if member(&q, &pt) && !q.mentions(v) {
                    let mut witness = false;
                    for val in -64..=64 {
                        let mut ext = pt;
                        ext[vi as usize] = val;
                        if member(&p, &ext) {
                            witness = true;
                            break;
                        }
                    }
                    // Rational FM with unit coefficients is exact, so a
                    // witness must exist (within the scanned range, which is
                    // wide enough for our ±6 constants and ±3 coefficients).
                    prop_assert!(witness, "exact projection kept non-shadow point {pt:?} of {p}");
                }
            }
        }
    }

    #[test]
    fn disjointness_proof_is_sound(a in polyhedron(), b in polyhedron()) {
        let sa = PolySet::from_poly(a.clone());
        let sb = PolySet::from_poly(b.clone());
        if sa.provably_disjoint(&sb) {
            for pt in grid_points() {
                prop_assert!(!(member(&a, &pt) && member(&b, &pt)),
                    "claimed disjoint but share {pt:?}");
            }
        }
    }

    #[test]
    fn constraint_negation_partitions_space(c in constraint()) {
        // x satisfies c XOR x satisfies some negation branch.
        let p = Polyhedron::from_constraints([c.clone()]);
        let negs: Vec<Polyhedron> = c
            .negate()
            .into_iter()
            .map(|n| Polyhedron::from_constraints([n]))
            .collect();
        for pt in grid_points() {
            let pos = member(&p, &pt);
            let neg = negs.iter().any(|n| member(n, &pt));
            prop_assert!(pos ^ neg, "negation not a partition at {pt:?} for {c}");
        }
    }
}
