//! Property tests for the inline small-vector `LinExpr` and the staged
//! emptiness ladder.
//!
//! The small-vector representation must be *bit-identical* to the old
//! `BTreeMap<Var, i64>` model — same terms, same order, same saturating
//! arithmetic, same zero-elision — so every structure keyed or sorted on
//! expressions (memo tables, constraint dedup, snapshot codec) is oblivious
//! to the change.  `RefExpr` below is that reference model; each arithmetic
//! op is checked against it on random inputs.
//!
//! The second group differentially tests the staged `prove_empty` ladder
//! (GCD / interval / quick-sat, then Fourier–Motzkin) against the executable
//! pre-overhaul kernel (`suif_poly::legacy`, selected by turning the staging
//! toggle off): on random small polyhedra both kernels must return the same
//! verdict, up to provably-sound precision differences.

use proptest::prelude::*;
use std::collections::BTreeMap;
use suif_poly::{Constraint, LinExpr, Polyhedron, Var};

const VARS: [Var; 5] = [
    Var::Dim(0),
    Var::Dim(1),
    Var::Sym(0),
    Var::Sym(7),
    Var::Sym(900),
];

/// The pre-overhaul `LinExpr` representation, reimplemented as the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RefExpr {
    terms: BTreeMap<Var, i64>,
    constant: i64,
}

impl RefExpr {
    fn zero() -> RefExpr {
        RefExpr {
            terms: BTreeMap::new(),
            constant: 0,
        }
    }

    fn from_parts(coefs: &[(Var, i64)], constant: i64) -> RefExpr {
        let mut e = RefExpr::zero();
        e.constant = constant;
        for &(v, c) in coefs {
            let n = e.terms.get(&v).copied().unwrap_or(0).saturating_add(c);
            if n == 0 {
                e.terms.remove(&v);
            } else {
                e.terms.insert(v, n);
            }
        }
        e
    }

    fn coef(&self, v: Var) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    fn add(&self, other: &RefExpr) -> RefExpr {
        let mut out = self.clone();
        out.constant = out.constant.saturating_add(other.constant);
        for (&v, &c) in &other.terms {
            let n = out.coef(v).saturating_add(c);
            if n == 0 {
                out.terms.remove(&v);
            } else {
                out.terms.insert(v, n);
            }
        }
        out
    }

    fn scale(&self, k: i64) -> RefExpr {
        if k == 0 {
            return RefExpr::zero();
        }
        RefExpr {
            terms: self
                .terms
                .iter()
                .map(|(&v, &c)| (v, c.saturating_mul(k)))
                .collect(),
            constant: self.constant.saturating_mul(k),
        }
    }

    fn sub(&self, other: &RefExpr) -> RefExpr {
        self.add(&other.scale(-1))
    }

    fn substitute(&self, v: Var, repl: &RefExpr) -> RefExpr {
        let c = self.coef(v);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&v);
        out.add(&repl.scale(c))
    }
}

/// Bit-identity: same terms in the same (sorted) order, same constant.
fn assert_same(got: &LinExpr, want: &RefExpr) -> Result<(), TestCaseError> {
    let g: Vec<(Var, i64)> = got.terms().collect();
    let w: Vec<(Var, i64)> = want.terms.iter().map(|(&v, &c)| (v, c)).collect();
    prop_assert_eq!(&g, &w, "terms diverge: {:?} vs {:?}", got, want);
    prop_assert_eq!(got.constant_part(), want.constant);
    for &v in &VARS {
        prop_assert_eq!(got.coef(v), want.coef(v));
    }
    let gv: Vec<Var> = got.vars().collect();
    let wv: Vec<Var> = want.terms.keys().copied().collect();
    prop_assert_eq!(gv, wv);
    Ok(())
}

/// A random expression together with its reference model, built through the
/// same `term`-accumulation path on both sides (exercising spill past the
/// inline capacity when many distinct vars land).
fn pair() -> impl Strategy<Value = (LinExpr, RefExpr)> {
    (
        prop::collection::vec((0usize..VARS.len(), -9i64..=9), 0..8),
        -20i64..=20,
    )
        .prop_map(|(picks, k)| {
            let coefs: Vec<(Var, i64)> = picks.iter().map(|&(i, c)| (VARS[i], c)).collect();
            let mut e = LinExpr::constant(k);
            for &(v, c) in &coefs {
                e = e.add(&LinExpr::term(v, c));
            }
            (e, RefExpr::from_parts(&coefs, k))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn construction_matches_reference(p in pair()) {
        assert_same(&p.0, &p.1)?;
    }

    #[test]
    fn add_matches_reference(a in pair(), b in pair()) {
        assert_same(&a.0.add(&b.0), &a.1.add(&b.1))?;
    }

    #[test]
    fn sub_matches_reference(a in pair(), b in pair()) {
        assert_same(&a.0.sub(&b.0), &a.1.sub(&b.1))?;
    }

    #[test]
    fn scale_matches_reference(a in pair(), k in -5i64..=5) {
        assert_same(&a.0.scale(k), &a.1.scale(k))?;
    }

    #[test]
    fn substitute_matches_reference(a in pair(), r in pair(), vi in 0usize..VARS.len()) {
        let v = VARS[vi];
        // The replacement must not mention the substituted variable.
        let repl = r.0.sub(&LinExpr::term(v, r.0.coef(v)));
        let repl_ref = r.1.sub(&RefExpr::from_parts(&[(v, r.1.coef(v))], 0));
        assert_same(&a.0.substitute(v, &repl), &a.1.substitute(v, &repl_ref))?;
    }

    #[test]
    fn eq_ord_hash_follow_reference_equality(a in pair(), b in pair()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let same = a.1 == b.1;
        prop_assert_eq!(a.0 == b.0, same);
        prop_assert_eq!(a.0.cmp(&b.0) == std::cmp::Ordering::Equal, same);
        if same {
            let h = |e: &LinExpr| {
                let mut s = DefaultHasher::new();
                e.hash(&mut s);
                s.finish()
            };
            prop_assert_eq!(h(&a.0), h(&b.0));
        }
    }
}

// ---------------------------------------------------------------------------
// Staged ladder vs. pre-overhaul kernel agreement.
// ---------------------------------------------------------------------------

fn lin_expr() -> impl Strategy<Value = LinExpr> {
    (prop::collection::vec(-3i64..=3, 3), -6i64..=6).prop_map(|(coefs, c)| {
        let mut e = LinExpr::constant(c);
        for (i, &k) in coefs.iter().enumerate() {
            e = e.add(&LinExpr::term(VARS[i], k));
        }
        e
    })
}

fn constraint() -> impl Strategy<Value = Constraint> {
    (lin_expr(), prop::bool::ANY).prop_map(|(e, eq)| {
        if eq {
            Constraint::eq0(e)
        } else {
            Constraint::geq0(e)
        }
    })
}

/// No integer point of the bounded grid satisfies `p` — the witness check
/// backing any "proven empty" claim at the coefficient/constant scales the
/// strategies generate.
fn grid_clean(p: &Polyhedron) -> bool {
    let grid = -8i64..=8;
    for a in grid.clone() {
        for b in grid.clone() {
            for c in grid.clone() {
                let inside = p
                    .contains_point(&|v| match v {
                        Var::Dim(0) => Some(a),
                        Var::Dim(1) => Some(b),
                        Var::Sym(0) => Some(c),
                        _ => None,
                    })
                    .unwrap_or(false);
                if inside {
                    return false;
                }
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The staged ladder and the pre-overhaul kernel (`suif_poly::legacy`,
    /// routed via the toggle) reach the same `prove_empty` verdict on random
    /// polyhedra — except where integrality makes them legitimately differ
    /// in *precision*: the two kernels run different elimination orders and
    /// modular tests (rational FM is blind to integrality), so one may prove
    /// an integrally-empty system that the other only fails to refute.  A
    /// diverging "empty" claim must then be demonstrably sound: no integer
    /// grid point may satisfy the system.
    #[test]
    fn staged_prove_empty_agrees_with_legacy_kernel(
        cs in prop::collection::vec(constraint(), 0..6),
    ) {
        let p = Polyhedron::from_constraints(cs);
        // The memo is mode-oblivious; clear it between configurations so
        // the second run cannot answer from the first run's entries.
        suif_poly::clear_prove_empty_cache();
        suif_poly::set_staged_emptiness(false);
        let legacy = p.prove_empty();
        suif_poly::clear_prove_empty_cache();
        suif_poly::set_staged_emptiness(true);
        let staged = p.prove_empty();
        suif_poly::clear_prove_empty_cache();
        if staged != legacy {
            prop_assert!(
                grid_clean(&p),
                "kernels diverge (staged={}, legacy={}) on a non-empty system {}",
                staged, legacy, p
            );
        }
    }
}
