//! Chapter 4 figures: the SUIF Explorer case studies.

use crate::common::{self, Table};
use std::collections::HashSet;
use suif_analysis::{LoopVerdict, ParallelizeConfig, VarClass};
use suif_benchmarks::{apps, ch4_apps, BenchProgram, Scale};
use suif_explorer::Explorer;
use suif_parallel::ParallelPlans;
use suif_slicing::{SliceKind, SliceOptions, Slicer};

fn explorer_config(bench: &BenchProgram, user: bool) -> ParallelizeConfig {
    ParallelizeConfig {
        assertions: if user {
            common::assertions(bench)
        } else {
            vec![]
        },
        ..Default::default()
    }
}

/// Fig. 4-1: program information and results of automatic parallelization.
pub fn fig4_1(scale: Scale) -> String {
    let mut t = Table::new(&[
        "program",
        "description",
        "lines",
        "coverage",
        "granularity",
        "speedup(2p)",
        "speedup(4p)",
    ]);
    for bench in ch4_apps(Scale::Test) {
        let program = bench.parse();
        let ex = Explorer::with_config(
            &program,
            explorer_config(&bench, false),
            bench.input.clone(),
        )
        .expect("explorer");
        let guru = ex.guru();
        // Speedups on the larger scale.
        let big = ch4_apps(scale)
            .into_iter()
            .find(|b| b.name == bench.name)
            .unwrap();
        let big_p = big.parse();
        let pa = common::analyze(&big_p, None);
        let plans = ParallelPlans::from_analysis(&pa);
        let s2 = common::speedup(&big_p, &plans, &big.input, 2, 2);
        let s4 = common::speedup(&big_p, &plans, &big.input, 4, 2);
        t.row(vec![
            bench.name.to_string(),
            bench.description.to_string(),
            bench.num_lines().to_string(),
            format!("{:.0}%", guru.coverage * 100.0),
            format!("{:.3} ms", guru.granularity_ms),
            common::fmt_speedup(s2),
            common::fmt_speedup(s4),
        ]);
    }
    format!(
        "Fig 4-1: program information and automatic parallelization\n{}",
        t.render()
    )
}

/// Fig. 4-2 / 4-4: codeview of mdg before and after the user assertion.
pub fn fig4_2() -> String {
    let bench = apps::mdg(Scale::Test);
    let program = bench.parse();
    let mut ex = Explorer::with_config(&program, explorer_config(&bench, false), vec![]).unwrap();
    let before = {
        let guru = ex.guru();
        suif_explorer::codeview(&ex, &guru)
    };
    // Replay the user's assertions through the resident fact store: only
    // the asserted loops reclassify, and the profile runs are kept.
    ex.apply_assertions(common::assertions(&bench));
    let after = {
        let guru = ex.guru();
        suif_explorer::codeview(&ex, &guru)
    };
    format!(
        "Fig 4-2: mdg codeview, automatic parallelization\n{before}\n\
         Fig 4-4: mdg codeview after the user privatizes rl in interf/1000\n{after}"
    )
}

/// Fig. 4-3: slices of the relevant references in `interf/1000`.
pub fn fig4_3() -> String {
    slice_figure(apps::mdg(Scale::Test), "interf/1000", "Fig 4-3")
}

/// Fig. 4-5: slices of the relevant references in `vsetuv/85`.
pub fn fig4_5() -> String {
    slice_figure(apps::hydro(Scale::Test), "vsetuv/85", "Fig 4-5")
}

fn slice_figure(bench: BenchProgram, loop_name: &str, tag: &str) -> String {
    let program = bench.parse();
    let mut ex = Explorer::with_config(
        &program,
        explorer_config(&bench, false),
        bench.input.clone(),
    )
    .unwrap();
    let li = ex
        .analysis
        .ctx
        .tree
        .loops
        .iter()
        .find(|l| l.name == loop_name)
        .expect("loop")
        .clone();
    let slices = ex.slices_for_dep(li.stmt, 0);
    let mut lines: std::collections::BTreeSet<u32> = Default::default();
    let mut terms: std::collections::BTreeSet<u32> = Default::default();
    for (_, prog, ctrl) in &slices {
        lines.extend(prog.lines.iter().copied());
        lines.extend(ctrl.lines.iter().copied());
        for s in prog.terminals.iter().chain(ctrl.terminals.iter()) {
            if let Some((stmt, _)) = program.find_stmt(*s) {
                terms.insert(stmt.line());
            }
        }
    }
    let view = suif_explorer::source_view(&ex, li.line, li.end_line, &lines, &terms);
    format!(
        "{tag}: array- and region-restricted slices for the unresolved dependence in {loop_name}\n\
         (S = in slice, ? = pruned terminal)\n{view}"
    )
}

/// Fig. 4-6: the memory-performance advisory — conflicting data
/// decompositions between hydro's user-parallelized loops (§4.2.4).
pub fn fig4_6() -> String {
    let bench = apps::hydro(Scale::Test);
    let program = bench.parse();
    let pa = common::analyze(&program, Some(&bench));
    format!(
        "Fig 4-6: hydro data-decomposition advisory (with the user's assertions applied)\n{}",
        suif_analysis::decomp::render_advisory(&pa)
    )
}

/// Fig. 4-7: number of loops requiring user intervention.
pub fn fig4_7() -> String {
    let mut t = Table::new(&[
        "program",
        "kind",
        "executed",
        "sequential",
        "important",
        "imp+no dyn dep",
        "user-parallelized",
        "remaining important",
    ]);
    let mut totals = [0usize; 6];
    for bench in ch4_apps(Scale::Test) {
        let program = bench.parse();
        let auto = Explorer::with_config(
            &program,
            explorer_config(&bench, false),
            bench.input.clone(),
        )
        .unwrap();
        let user_pa = common::analyze(&program, Some(&bench));
        let guru = auto.guru();
        let executed_set: HashSet<_> = auto
            .profile
            .profiles
            .iter()
            .filter(|(_, p)| p.invocations > 0)
            .map(|(&s, _)| s)
            .collect();
        let user_parallel = user_pa.parallel_loops();
        let auto_parallel = auto.parallel_loops();

        for inter in [true, false] {
            let loops: Vec<_> = auto
                .analysis
                .ctx
                .tree
                .loops
                .iter()
                .filter(|l| l.has_calls == inter && executed_set.contains(&l.stmt))
                .collect();
            let executed = loops.len();
            let sequential = loops
                .iter()
                .filter(|l| !auto_parallel.contains(&l.stmt))
                .count();
            let important: Vec<_> = guru
                .targets
                .iter()
                .filter(|tl| tl.important && tl.has_calls == inter)
                .collect();
            let no_dyn = important.iter().filter(|tl| !tl.dynamic_dep).count();
            // User-parallelized: important targets that become parallel with
            // the assertions.
            let user_par: Vec<_> = important
                .iter()
                .filter(|tl| user_parallel.contains(&tl.stmt))
                .collect();
            // Remaining: important, still sequential, and not nested inside
            // a user-parallelized loop.
            let remaining = important
                .iter()
                .filter(|tl| !user_parallel.contains(&tl.stmt))
                .filter(|tl| {
                    !user_parallel
                        .iter()
                        .any(|&p| auto.analysis.ctx.tree.is_nested_in(tl.stmt, p))
                })
                .count();
            for (i, v) in [
                executed,
                sequential,
                important.len(),
                no_dyn,
                user_par.len(),
                remaining,
            ]
            .iter()
            .enumerate()
            {
                totals[i] += v;
            }
            t.row(vec![
                bench.name.to_string(),
                if inter { "inter" } else { "intra" }.into(),
                executed.to_string(),
                sequential.to_string(),
                important.len().to_string(),
                no_dyn.to_string(),
                user_par.len().to_string(),
                remaining.to_string(),
            ]);
        }
    }
    t.row(vec![
        "TOTAL".into(),
        "".into(),
        totals[0].to_string(),
        totals[1].to_string(),
        totals[2].to_string(),
        totals[3].to_string(),
        totals[4].to_string(),
        totals[5].to_string(),
    ]);
    format!(
        "Fig 4-7: number of loops requiring user intervention\n{}",
        t.render()
    )
}

/// Fig. 4-8: average slice sizes (program & control; full / loop / CR / AR)
/// as a percentage of the loop size, for the user-examined loops.
pub fn fig4_8() -> String {
    let mut t = Table::new(&[
        "loop", "lines", "P full%", "P loop%", "P CR%", "P AR%", "C full%", "C loop%", "C CR%",
        "C AR%",
    ]);
    for bench in ch4_apps(Scale::Test) {
        let program = bench.parse();
        let pa = common::analyze(&program, None);
        let mut slicer = Slicer::new(&program);
        let mut loops: Vec<String> = bench
            .assertions
            .iter()
            .map(|a| a.loop_name.clone())
            .collect();
        loops.dedup();
        for lname in loops {
            let Some(li) = pa.ctx.tree.loops.iter().find(|l| l.name == lname) else {
                continue;
            };
            let Some(LoopVerdict::Sequential { deps, .. }) = pa.verdicts.get(&li.stmt) else {
                continue;
            };
            let Some(dep) = deps.first() else { continue };
            let size = li.size_lines.max(1) as f64;
            // Query slices of the subscript/bound scalars at the dep sites.
            let mut queries: Vec<(suif_ir::StmtId, suif_ir::VarId)> = Vec::new();
            for &(stmt, _, _, _) in &dep.sites {
                if let Some((s, _)) = program.find_stmt(stmt) {
                    let mut vars = Vec::new();
                    collect_read_scalars(s, &mut vars);
                    for v in vars {
                        queries.push((stmt, v));
                    }
                }
            }
            let mut acc = [0f64; 8];
            let mut n = 0usize;
            for (stmt, v) in queries {
                let variants: [(usize, SliceKind, SliceOptions); 4] = [
                    (0, SliceKind::Program, SliceOptions::default()),
                    (1, SliceKind::Program, SliceOptions::default()),
                    (
                        2,
                        SliceKind::Program,
                        SliceOptions {
                            region: Some(li.stmt),
                            ..Default::default()
                        },
                    ),
                    (
                        3,
                        SliceKind::Program,
                        SliceOptions {
                            region: Some(li.stmt),
                            array_restricted: true,
                            ..Default::default()
                        },
                    ),
                ];
                let mut any = false;
                for (slot, kind, opts) in &variants {
                    for (off, k) in [(0usize, *kind), (4, SliceKind::Control)] {
                        let Some(sl) = slicer.slice_use(stmt, v, k, opts) else {
                            continue;
                        };
                        any = true;
                        let count = if *slot == 1 {
                            sl.lines_within(li.line, li.end_line)
                        } else {
                            sl.num_lines()
                        } as f64;
                        acc[off + slot] += count / size * 100.0;
                    }
                }
                if any {
                    n += 1;
                }
            }
            if n == 0 {
                continue;
            }
            let cells: Vec<String> = acc.iter().map(|x| format!("{:.0}", x / n as f64)).collect();
            let mut row = vec![li.name.clone(), li.size_lines.to_string()];
            row.extend(cells);
            t.row(row);
        }
    }
    format!(
        "Fig 4-8: average slice size as % of loop size (P = program slice, C = control slice;\n\
         full / loop-only lines / code-region-restricted / +array-restricted)\n{}",
        t.render()
    )
}

fn collect_read_scalars(s: &suif_ir::Stmt, out: &mut Vec<suif_ir::VarId>) {
    use suif_ir::{Ref, Stmt};
    let mut push = |v: suif_ir::VarId| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            rhs.visit_scalar_reads(&mut push);
            if let Ref::Element(_, subs) = lhs {
                for e in subs {
                    e.visit_scalar_reads(&mut push);
                }
            }
        }
        Stmt::If { cond, .. } => cond.visit_scalar_reads(&mut push),
        Stmt::Do { lo, hi, .. } => {
            lo.visit_scalar_reads(&mut push);
            hi.visit_scalar_reads(&mut push);
        }
        _ => {}
    }
}

/// Fig. 4-9: variables parallelized automatically vs with user input, over
/// the user-parallelized loops.
pub fn fig4_9() -> String {
    let mut t = Table::new(&["", "class", "mdg", "arc3d", "hydro", "flo88", "total"]);
    let benches = ch4_apps(Scale::Test);
    let mut rows: Vec<(&str, &str, [usize; 4])> = vec![
        ("automatic", "parallel arrays", [0; 4]),
        ("automatic", "privatizable arrays", [0; 4]),
        ("automatic", "privatizable scalars", [0; 4]),
        ("automatic", "reduction arrays", [0; 4]),
        ("automatic", "reduction scalars", [0; 4]),
        ("user", "privatizable arrays", [0; 4]),
        ("user", "privatizable scalars", [0; 4]),
    ];
    for (bi, bench) in benches.iter().enumerate() {
        let program = bench.parse();
        let user_pa = common::analyze(&program, Some(bench));
        let loops: HashSet<String> = bench
            .assertions
            .iter()
            .map(|a| a.loop_name.clone())
            .collect();
        for lname in &loops {
            let Some(li) = user_pa.ctx.tree.loops.iter().find(|l| &l.name == lname) else {
                continue;
            };
            let Some(v) = user_pa.verdicts.get(&li.stmt) else {
                continue;
            };
            let asserted: HashSet<&str> = bench
                .assertions
                .iter()
                .filter(|a| &a.loop_name == lname)
                .map(|a| a.var.as_str())
                .collect();
            for (&obj, class) in v.classes() {
                let name = user_pa.ctx.array_name(obj);
                let is_arr = user_pa.ctx.is_array_object(obj);
                let user_supplied = asserted.contains(name.as_str())
                    || asserted.iter().any(|a| name == format!("/{a}/"));
                let idx = match (class, is_arr, user_supplied) {
                    (VarClass::Parallel, true, false) => Some(0),
                    (VarClass::Privatizable { .. }, true, false) => Some(1),
                    (VarClass::Privatizable { .. }, false, false) => Some(2),
                    (VarClass::Reduction(_), true, false) => Some(3),
                    (VarClass::Reduction(_), false, false) => Some(4),
                    (VarClass::Privatizable { .. }, true, true) => Some(5),
                    (VarClass::Privatizable { .. }, false, true) => Some(6),
                    _ => None,
                };
                if let Some(i) = idx {
                    rows[i].2[bi] += 1;
                }
            }
        }
    }
    for (who, class, counts) in rows {
        let total: usize = counts.iter().sum();
        t.row(vec![
            who.into(),
            class.into(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
            total.to_string(),
        ]);
    }
    format!(
        "Fig 4-9: user-assisted parallelization of the case-study loops\n{}",
        t.render()
    )
}

/// Fig. 4-10: parallelization with and without user intervention.
pub fn fig4_10(scale: Scale) -> String {
    let mut t = Table::new(&[
        "program",
        "mode",
        "coverage",
        "granularity",
        "speedup(2p)",
        "speedup(4p)",
    ]);
    for bench in ch4_apps(Scale::Test) {
        let program = bench.parse();
        // One Explorer per program; the user's assertions are replayed into
        // it instead of rebuilding (and re-profiling) from scratch.
        let mut ex = Explorer::with_config(
            &program,
            explorer_config(&bench, false),
            bench.input.clone(),
        )
        .unwrap();
        for user in [false, true] {
            if user {
                ex.apply_assertions(common::assertions(&bench));
            }
            let guru = ex.guru();
            let big = ch4_apps(scale)
                .into_iter()
                .find(|b| b.name == bench.name)
                .unwrap();
            let big_p = big.parse();
            let pa = common::analyze(&big_p, if user { Some(&big) } else { None });
            let plans = ParallelPlans::from_analysis(&pa);
            let s2 = common::speedup(&big_p, &plans, &big.input, 2, 2);
            let s4 = common::speedup(&big_p, &plans, &big.input, 4, 2);
            t.row(vec![
                bench.name.to_string(),
                if user { "with user input" } else { "automatic" }.into(),
                format!("{:.0}%", guru.coverage * 100.0),
                format!("{:.3} ms", guru.granularity_ms),
                common::fmt_speedup(s2),
                common::fmt_speedup(s4),
            ]);
        }
    }
    format!(
        "Fig 4-10: parallelization with and without user intervention\n{}",
        t.render()
    )
}
