//! Chapter 6 figures: interprocedural reduction analysis.

use crate::common::{self, Table};
use std::collections::HashMap;
use suif_analysis::{reduction, ParallelizeConfig, Parallelizer, RedOp};
use suif_benchmarks::{ch6_apps, Scale};
use suif_dynamic::machine::Machine;
use suif_dynamic::{LoopProfiler, NoHooks};
use suif_ir::Stmt;
use suif_parallel::{Finalization, ParallelPlans, RuntimeConfig};

/// Fig. 6-2: static counts of recognized commutative-update sites by
/// operation type across the suite.
pub fn fig6_2() -> String {
    let mut t = Table::new(&["program", "sum", "product", "min", "max", "total"]);
    let mut totals = [0usize; 4];
    for bench in ch6_apps(Scale::Test) {
        let program = bench.parse();
        let mut counts: HashMap<RedOp, usize> = HashMap::new();
        for proc in &program.procedures {
            program.walk_stmts(proc.id, &mut |s, _| {
                if let Some(site) = reduction::recognize_stmt(s) {
                    *counts.entry(site.op).or_insert(0) += 1;
                }
                if let Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } = s
                {
                    if let Some(site) = reduction::recognize_if_minmax(cond, then_body, else_body) {
                        *counts.entry(site.op).or_insert(0) += 1;
                    }
                }
            });
        }
        let row = [
            counts.get(&RedOp::Add).copied().unwrap_or(0),
            counts.get(&RedOp::Mul).copied().unwrap_or(0),
            counts.get(&RedOp::Min).copied().unwrap_or(0),
            counts.get(&RedOp::Max).copied().unwrap_or(0),
        ];
        for (i, v) in row.iter().enumerate() {
            totals[i] += v;
        }
        t.row(vec![
            bench.name.to_string(),
            row[0].to_string(),
            row[1].to_string(),
            row[2].to_string(),
            row[3].to_string(),
            row.iter().sum::<usize>().to_string(),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        totals[0].to_string(),
        totals[1].to_string(),
        totals[2].to_string(),
        totals[3].to_string(),
        totals.iter().sum::<usize>().to_string(),
    ]);
    format!(
        "Fig 6-2: recognized commutative updates by operation type\n{}",
        t.render()
    )
}

/// Fig. 6-3: program information for the reduction suite.
pub fn fig6_3() -> String {
    let mut t = Table::new(&["program", "description", "no. of lines"]);
    for bench in ch6_apps(Scale::Test) {
        t.row(vec![
            bench.name.to_string(),
            bench.description.to_string(),
            bench.num_lines().to_string(),
        ]);
    }
    format!(
        "Fig 6-3: reduction-suite program information\n{}",
        t.render()
    )
}

/// Fig. 6-4: static impact of reductions — parallelizable loops with and
/// without reduction recognition.
pub fn fig6_4() -> String {
    let mut t = Table::new(&[
        "program",
        "loops",
        "parallel w/o reductions",
        "parallel with reductions",
    ]);
    for bench in ch6_apps(Scale::Test) {
        let program = bench.parse();
        let with = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let without = Parallelizer::analyze(
            &program,
            ParallelizeConfig {
                enable_reduction: false,
                ..Default::default()
            },
        );
        t.row(vec![
            bench.name.to_string(),
            with.ctx.tree.loops.len().to_string(),
            without.parallel_loops().len().to_string(),
            with.parallel_loops().len().to_string(),
        ]);
    }
    format!(
        "Fig 6-4: impact of reductions (static measurements)\n{}",
        t.render()
    )
}

/// Fig. 6-5: coverage and granularity on the programs where parallel
/// reductions have an impact.
pub fn fig6_5() -> String {
    let mut t = Table::new(&[
        "program",
        "coverage w/o red",
        "coverage with red",
        "granularity with red",
    ]);
    for bench in ch6_apps(Scale::Test) {
        let program = bench.parse();
        // Profile once.
        let mut profiler = LoopProfiler::new();
        {
            let mut m = Machine::new(&program, &mut profiler).unwrap();
            m.set_input(bench.input.clone());
            m.run().unwrap();
        }
        let profile = profiler.report();
        let with = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let without = Parallelizer::analyze(
            &program,
            ParallelizeConfig {
                enable_reduction: false,
                ..Default::default()
            },
        );
        let cov_with = profile.coverage(&with.parallel_loops());
        let cov_without = profile.coverage(&without.parallel_loops());
        let gran = profile.granularity(&with.parallel_loops());
        t.row(vec![
            bench.name.to_string(),
            format!("{:.0}%", cov_without * 100.0),
            format!("{:.0}%", cov_with * 100.0),
            format!("{gran:.0} ops"),
        ]);
    }
    format!(
        "Fig 6-5: coverage and granularity with parallel reductions\n{}",
        t.render()
    )
}

fn reduction_speedups(scale: Scale, finalization: Finalization, tag: &str) -> String {
    let mut t = Table::new(&[
        "program",
        "speedup w/o red (2p)",
        "speedup with red (2p)",
        "with red (4p)",
    ]);
    for bench in ch6_apps(scale) {
        let program = bench.parse();
        let with = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let without = Parallelizer::analyze(
            &program,
            ParallelizeConfig {
                enable_reduction: false,
                ..Default::default()
            },
        );
        let plans_with = ParallelPlans::from_analysis(&with);
        let plans_without = ParallelPlans::from_analysis(&without);
        let cfg = |threads| RuntimeConfig {
            threads,
            min_parallel_iters: 4,
            min_parallel_cost: 2048,
            finalization,
            schedule: Default::default(),
        };
        let sp = |plans: &ParallelPlans, threads: usize| {
            let seq = suif_parallel::sequential_ops(&program, &bench.input).unwrap();
            let par =
                suif_parallel::parallel_ops(&program, plans, &cfg(threads), &bench.input).unwrap();
            seq as f64 / (par as f64).max(1.0)
        };
        t.row(vec![
            bench.name.to_string(),
            common::fmt_speedup(sp(&plans_without, 2)),
            common::fmt_speedup(sp(&plans_with, 2)),
            common::fmt_speedup(sp(&plans_with, 4)),
        ]);
    }
    format!("{tag}\n{}", t.render())
}

/// Fig. 6-6: performance improvement due to reduction analysis, serialized
/// finalization (the 4-processor Challenge analogue).
pub fn fig6_6(scale: Scale) -> String {
    reduction_speedups(
        scale,
        Finalization::Serialized,
        "Fig 6-6: speedups with/without reduction analysis (serialized finalization)",
    )
}

/// Fig. 6-7: same with staggered-lock finalization (the Origin analogue).
pub fn fig6_7(scale: Scale) -> String {
    reduction_speedups(
        scale,
        Finalization::StaggeredLocks { sections: 8 },
        "Fig 6-7: speedups with/without reduction analysis (staggered-lock finalization)",
    )
}

/// Helper used by EXPERIMENTS.md generation: quick sanity run of a program.
pub fn run_once(bench: &suif_benchmarks::BenchProgram) -> Vec<String> {
    let program = bench.parse();
    let mut hooks = NoHooks;
    let mut m = Machine::new(&program, &mut hooks).unwrap();
    m.set_input(bench.input.clone());
    m.run().unwrap();
    m.output.clone()
}
