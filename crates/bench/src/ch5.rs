//! Chapter 5 figures: array liveness analysis and its applications.

use crate::common::{self, Table};
use std::time::Instant;
use suif_analysis::liveness::{analyze_liveness, bottom_up};
use suif_analysis::{
    contract, split, AnalysisCtx, ArrayDataFlow, LivenessMode, ParallelizeConfig, Parallelizer,
};
use suif_benchmarks::{apps, ch5_apps, Scale};
use suif_parallel::ParallelPlans;

const MODES: [(&str, LivenessMode); 3] = [
    ("flow-insensitive", LivenessMode::FlowInsensitive),
    ("1-bit", LivenessMode::OneBit),
    ("full", LivenessMode::Full),
];

/// Fig. 5-5: program information for the liveness suite.
pub fn fig5_5() -> String {
    let mut t = Table::new(&["program", "description", "no. of lines"]);
    for bench in ch5_apps(Scale::Test) {
        t.row(vec![
            bench.name.to_string(),
            bench.description.to_string(),
            bench.num_lines().to_string(),
        ]);
    }
    format!(
        "Fig 5-5: liveness-suite program information\n{}",
        t.render()
    )
}

/// Fig. 5-6: total running time of the interprocedural analysis
/// (base / +bottom-up / +flow-insensitive / +1-bit / +full top-down).
pub fn fig5_6(scale: Scale) -> String {
    let mut t = Table::new(&[
        "program",
        "base(ms)",
        "bottom-up(ms)",
        "flow-insens(ms)",
        "1-bit(ms)",
        "full(ms)",
    ]);
    for bench in ch5_apps(scale) {
        let program = bench.parse();
        // Base: context building (symbol/region/call-graph work).
        let t0 = Instant::now();
        let ctx = AnalysisCtx::new(&program);
        let base = t0.elapsed();
        // Bottom-up array data flow.
        let t1 = Instant::now();
        let df = ArrayDataFlow::analyze(&ctx);
        let bu = t1.elapsed();
        let saved = bottom_up(&ctx, &df);
        let mut cells = vec![
            bench.name.to_string(),
            format!("{:.1}", base.as_secs_f64() * 1e3),
            format!("{:.1}", (base + bu).as_secs_f64() * 1e3),
        ];
        for (_, mode) in MODES {
            let res = analyze_liveness(&ctx, &df, &saved, mode);
            cells.push(format!(
                "{:.1}",
                (base + bu + res.elapsed).as_secs_f64() * 1e3
            ));
        }
        t.row(cells);
    }
    format!(
        "Fig 5-6: total running time of the interprocedural analysis (cumulative, ms)\n{}",
        t.render()
    )
}

/// Fig. 5-7: #loops, #modified array variables, and %dead at loop exits per
/// liveness variant.
pub fn fig5_7() -> String {
    let mut t = Table::new(&[
        "program",
        "#loop",
        "#mod",
        "%dead FI",
        "%dead 1-bit",
        "%dead full",
    ]);
    for bench in ch5_apps(Scale::Test) {
        let program = bench.parse();
        let ctx = AnalysisCtx::new(&program);
        let df = ArrayDataFlow::analyze(&ctx);
        let saved = bottom_up(&ctx, &df);
        let nloops = ctx.tree.loops.len();
        let mut cells = vec![bench.name.to_string(), nloops.to_string()];
        let mut nmod_total = 0usize;
        let mut dead_counts = Vec::new();
        for (_, mode) in MODES {
            let res = analyze_liveness(&ctx, &df, &saved, mode);
            let mut nmod = 0usize;
            let mut dead = 0usize;
            for l in &ctx.tree.loops {
                let written = res.written.get(&l.stmt).cloned().unwrap_or_default();
                for id in written {
                    if !ctx.is_array_object(id) {
                        continue;
                    }
                    nmod += 1;
                    if res.is_dead_after(l.stmt, id) {
                        dead += 1;
                    }
                }
            }
            nmod_total = nmod;
            dead_counts.push(if nmod > 0 {
                100.0 * dead as f64 / nmod as f64
            } else {
                0.0
            });
        }
        cells.insert(2, nmod_total.to_string());
        for d in dead_counts {
            cells.push(format!("{d:.0}%"));
        }
        t.row(cells);
    }
    format!(
        "Fig 5-7: modified array variables in loops and % found dead at loop exits\n{}",
        t.render()
    )
}

/// Fig. 5-8: dead privatizable arrays, extra parallel loops, and the
/// resulting speedup per liveness variant.
pub fn fig5_8(scale: Scale) -> String {
    let mut t = Table::new(&[
        "program",
        "variant",
        "#dead priv",
        "#extra par loops",
        "speedup(2p)",
    ]);
    for bench in ch5_apps(scale) {
        let program = bench.parse();
        // Baseline: no liveness.
        let base = Parallelizer::analyze(
            &program,
            ParallelizeConfig {
                liveness: None,
                ..Default::default()
            },
        );
        let base_parallel = base.parallel_loops();
        let base_plans = ParallelPlans::from_analysis(&base);
        let s_base = common::speedup(&program, &base_plans, &bench.input, 2, 2);
        t.row(vec![
            bench.name.to_string(),
            "base".into(),
            "0".into(),
            "0".into(),
            common::fmt_speedup(s_base),
        ]);
        for (label, mode) in MODES {
            let pa = common::analyze_liveness_mode(&program, Some(mode));
            // Dead privatizable arrays: objects classified privatizable
            // without finalization in some loop.
            let mut dead_priv = 0usize;
            for v in pa.verdicts.values() {
                for class in v.classes().values() {
                    if matches!(
                        class,
                        suif_analysis::VarClass::Privatizable {
                            needs_finalization: false
                        }
                    ) {
                        dead_priv += 1;
                    }
                }
            }
            let extra = pa.parallel_loops().difference(&base_parallel).count();
            let plans = ParallelPlans::from_analysis(&pa);
            let s = common::speedup(&program, &plans, &bench.input, 2, 2);
            t.row(vec![
                bench.name.to_string(),
                label.into(),
                dead_priv.to_string(),
                extra.to_string(),
                common::fmt_speedup(s),
            ]);
        }
    }
    format!(
        "Fig 5-8: dead privatizable arrays and improved loops per liveness variant\n{}",
        t.render()
    )
}

/// Fig. 5-10: common-block splits and resulting speedups.
pub fn fig5_10(scale: Scale) -> String {
    let mut t = Table::new(&["program", "#splits", "speedup before", "speedup after"]);
    for bench in [apps::arc3d(scale), apps::wave5(scale), apps::hydro2d(scale)] {
        let program = bench.parse();
        let pa = common::analyze(&program, None);
        let splits = split::find_splits(&pa);
        let plans = ParallelPlans::from_analysis(&pa);
        let before = common::speedup(&program, &plans, &bench.input, 2, 2);
        let after = if splits.is_empty() {
            before
        } else {
            match split::apply_splits(&program, &splits) {
                Ok(p2) => {
                    let pa2 = common::analyze(&p2, None);
                    let plans2 = ParallelPlans::from_analysis(&pa2);
                    common::speedup(&p2, &plans2, &bench.input, 2, 2)
                }
                Err(_) => before,
            }
        };
        t.row(vec![
            bench.name.to_string(),
            splits.len().to_string(),
            common::fmt_speedup(before),
            common::fmt_speedup(after),
        ]);
    }
    format!(
        "Fig 5-10: common-block live-range splits and speedups\n{}",
        t.render()
    )
}

/// Fig. 5-11: the flo88 contraction before/after source.
pub fn fig5_11() -> String {
    let bench = apps::flo88(Scale::Test, true);
    let program = bench.parse();
    let pa = common::analyze(&program, None);
    let cands = contract::find_candidates(&pa);
    let mut out = String::from("Fig 5-11: flo88 array contraction\ncandidates:\n");
    for c in &cands {
        out.push_str(&format!(
            "  contract `{}` (rank {} -> {}) against {}\n",
            program.var(c.var).name,
            program.var(c.var).dims.len(),
            program.var(c.var).dims.len() - 1,
            pa.ctx
                .tree
                .loop_of(c.loop_stmt)
                .map(|l| l.name.clone())
                .unwrap_or_default(),
        ));
    }
    if let Some(c) = cands.first() {
        if let Ok(p2) = contract::apply(&program, c) {
            let name = program.var(c.var).name.clone();
            out.push_str(&format!("\nafter contracting `{name}`, psmoo becomes:\n"));
            if let Some(proc2) = p2.proc_by_name("psmoo") {
                out.push_str(&suif_ir::pretty::proc_to_string(&p2, proc2));
            }
        }
    }
    out
}

/// Fig. 5-12: flo88 speedups without and with array contraction.
pub fn fig5_12(scale: Scale) -> String {
    let bench = apps::flo88(scale, true);
    let program = bench.parse();
    let pa = common::analyze(&program, None);
    let plans = ParallelPlans::from_analysis(&pa);
    // Apply every contraction candidate.
    let mut contracted = program.clone();
    loop {
        let pa_c = common::analyze(&contracted, None);
        let cands = contract::find_candidates(&pa_c);
        let Some(c) = cands.first() else { break };
        match contract::apply(&contracted, c) {
            Ok(p2) => contracted = p2,
            Err(_) => break,
        }
    }
    let pa2 = common::analyze(&contracted, None);
    let plans2 = ParallelPlans::from_analysis(&pa2);
    let footprint = |p: &suif_ir::Program| -> i64 {
        p.vars
            .iter()
            .filter_map(|v| if v.is_array() { v.const_size() } else { None })
            .sum()
    };
    let mut t = Table::new(&[
        "threads",
        "speedup (no contraction)",
        "speedup (contracted)",
    ]);
    for threads in common::speedup_threads() {
        let s1 = common::speedup(&program, &plans, &bench.input, threads, 2);
        let s2 = common::speedup(&contracted, &plans2, &bench.input, threads, 2);
        t.row(vec![
            threads.to_string(),
            common::fmt_speedup(s1),
            common::fmt_speedup(s2),
        ]);
    }
    format!(
        "Fig 5-12: flo88 speedups without and with array contraction\n\
         array footprint: {} -> {} cells ({} saved; the paper's speedup gain\n\
         comes from this footprint fitting in cache, which the virtual-op\n\
         cost model deliberately does not simulate — see EXPERIMENTS.md)\n{}",
        footprint(&program),
        footprint(&contracted),
        footprint(&program) - footprint(&contracted),
        t.render()
    )
}
