//! Shared helpers for the figure harness.

use suif_analysis::{Assertion, LivenessMode, ParallelizeConfig, Parallelizer, ProgramAnalysis};
use suif_benchmarks::BenchProgram;
use suif_ir::Program;
use suif_parallel::{Finalization, ParallelPlans, RuntimeConfig};

/// Convert a benchmark's string assertions into analysis assertions.
pub fn assertions(bench: &BenchProgram) -> Vec<Assertion> {
    bench
        .assertions
        .iter()
        .map(|a| {
            if a.privatize {
                Assertion::Privatizable {
                    loop_name: a.loop_name.clone(),
                    var: a.var.clone(),
                }
            } else {
                Assertion::Independent {
                    loop_name: a.loop_name.clone(),
                    var: a.var.clone(),
                }
            }
        })
        .collect()
}

/// Analyze with/without the user's assertions.
pub fn analyze<'p>(program: &'p Program, user: Option<&BenchProgram>) -> ProgramAnalysis<'p> {
    let config = ParallelizeConfig {
        assertions: user.map(assertions).unwrap_or_default(),
        ..Default::default()
    };
    Parallelizer::analyze(program, config)
}

/// Analyze with an explicit liveness mode (or none).
pub fn analyze_liveness_mode(program: &Program, mode: Option<LivenessMode>) -> ProgramAnalysis<'_> {
    Parallelizer::analyze(
        program,
        ParallelizeConfig {
            liveness: mode,
            ..Default::default()
        },
    )
}

/// Default runtime configuration at a thread count.
pub fn runtime(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        threads,
        min_parallel_iters: 4,
        min_parallel_cost: 2048,
        finalization: Finalization::StaggeredLocks { sections: 8 },
        schedule: Default::default(),
    }
}

/// Simulated-multiprocessor speedup of a plan at a thread count: the ratio
/// of deterministic virtual-op costs (sequential ops vs main ops + parallel
/// critical path + overhead model).  `reps` is kept for API symmetry; the
/// measure is deterministic.
pub fn speedup(
    program: &Program,
    plans: &ParallelPlans,
    input: &[f64],
    threads: usize,
    _reps: usize,
) -> f64 {
    let seq = suif_parallel::sequential_ops(program, input).unwrap_or(u64::MAX);
    let par =
        suif_parallel::parallel_ops(program, plans, &runtime(threads), input).unwrap_or(u64::MAX);
    if par == 0 {
        return 0.0;
    }
    seq as f64 / par as f64
}

/// Format a speedup.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}")
}

/// A plain text table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a header row.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |row: &[String]| {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Thread counts used by the speedup figures (the paper's 4- and 8-processor
/// columns; this host is smaller, which EXPERIMENTS.md notes).
pub fn speedup_threads() -> Vec<usize> {
    vec![2, 4]
}
