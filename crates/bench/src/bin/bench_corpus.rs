//! Corpus-mode benchmark for CI: fan a generator-built fleet of MiniF
//! programs across the corpus driver with injected faults and a bounded
//! shared tier, and report throughput and memory.  Emitted to
//! `BENCH_7.json`.
//!
//! Two passes over the same fixed-seed corpus (default 1000 programs):
//!
//! * **cold** — the corpus plus three hostile entries (a parse error, an
//!   oversize blob, and one generated program armed to panic inside the
//!   analysis).  Asserts the isolation contract: every sibling completes,
//!   every fault is exactly one error record, the run never fails.
//! * **warm** — the clean corpus again over the now-populated tier; its
//!   hit ratio is what the content-addressed tier buys a fleet that
//!   re-analyzes (restarts, re-runs, overlapping batches).  The cold pass
//!   cannot hit: distinct programs have distinct content hashes.
//!
//! Usage: `bench_corpus [programs] [workers] [shared_budget_bytes]`

use std::sync::Arc;
use std::time::Instant;
use suif_analysis::{SharedFactTier, SummaryCache};
use suif_server::{generated_entries, run_corpus, CorpusEntry, CorpusOptions, CorpusRun};

const SEED_BASE: u64 = 20_000;

fn main() {
    let mut args = std::env::args().skip(1);
    let programs: usize = args
        .next()
        .map(|a| a.parse().expect("programs"))
        .unwrap_or(1000);
    let workers: usize = args
        .next()
        .map(|a| a.parse().expect("workers"))
        .unwrap_or(0);
    let shared_budget: u64 = args
        .next()
        .map(|a| a.parse().expect("shared_budget_bytes"))
        .unwrap_or(16 << 20);

    let mut entries = generated_entries(programs, SEED_BASE);
    let panic_name = minif_gen::name_for_seed(SEED_BASE + (programs as u64) / 2);
    entries.push(CorpusEntry {
        name: "hostile-parse".into(),
        source: "program p\nthis is not minif\n".into(),
    });
    entries.push(CorpusEntry {
        name: "hostile-oversize".into(),
        source: "x".repeat(128 * 1024),
    });
    let total = entries.len();

    let tier = Arc::new(SharedFactTier::with_budget(Some(shared_budget as usize)));
    let cache = Arc::new(SummaryCache::new());
    let opts = CorpusOptions {
        workers,
        // Cap above every generated program, below the oversize blob.
        max_program_bytes: 64 * 1024,
        inject_panic: Some(panic_name.clone()),
        ..CorpusOptions::default()
    };

    let timed = |entries: Vec<CorpusEntry>, opts: &CorpusOptions| -> (CorpusRun, f64, usize) {
        let t0 = Instant::now();
        let mut streamed = 0usize;
        let run = run_corpus(entries, opts, &tier, &cache, |_| streamed += 1);
        (run, t0.elapsed().as_secs_f64(), streamed)
    };

    // ---- cold pass: faults in, tier empty -------------------------------
    let (cold, cold_secs, cold_streamed) = timed(entries, &opts);

    // Isolation contract: three faults, three error records, everyone
    // else done — and the bench (like the CLI) exits 0 regardless.
    assert_eq!(cold_streamed, total, "every program streams one report");
    assert_eq!(cold.summary.programs, total);
    assert_eq!(cold.summary.errors, 3, "three injected faults");
    assert_eq!(cold.summary.parse_errors, 1);
    assert_eq!(cold.summary.panics, 1);
    assert_eq!(cold.summary.oversize, 1);
    assert_eq!(
        cold.summary.ok,
        total - 3,
        "no crashed siblings: every non-fault program completes"
    );
    let cold_stats = tier.stats();
    let cold_pps = total as f64 / cold_secs.max(1e-9);

    // ---- warm pass: clean corpus over the populated tier ----------------
    let (warm, warm_secs, _) = timed(
        generated_entries(programs, SEED_BASE),
        &CorpusOptions {
            workers,
            ..CorpusOptions::default()
        },
    );
    assert_eq!(warm.summary.ok, programs, "warm rerun is all-ok");
    let warm_stats = tier.stats();
    let warm_hits = warm_stats.hits - cold_stats.hits;
    let warm_lookups = warm_hits + (warm_stats.misses - cold_stats.misses);
    let hit_ratio = warm_hits as f64 / (warm_lookups as f64).max(1.0);
    let warm_pps = programs as f64 / warm_secs.max(1e-9);
    assert!(
        warm_hits > 0,
        "warm rerun must read facts back from the tier"
    );
    if let Some(budget) = warm_stats.budget {
        assert!(
            warm_stats.resident_bytes <= budget,
            "tier resident {} exceeds budget {budget}",
            warm_stats.resident_bytes
        );
    }

    eprintln!(
        "cold: {total} programs ({} ok, {} errors) in {cold_secs:.2}s = {cold_pps:.0}/s \
         over {} workers",
        cold.summary.ok, cold.summary.errors, cold.summary.workers,
    );
    eprintln!(
        "warm: {programs} programs in {warm_secs:.2}s = {warm_pps:.0}/s; \
         tier hit ratio {hit_ratio:.2} ({warm_hits}/{warm_lookups} lookups); \
         peak resident {} bytes (budget {shared_budget}, {} evicted)",
        warm_stats.peak_resident_bytes, warm_stats.evicted,
    );

    let json = format!(
        "{{\"bench\":\"corpus\",\"programs\":{total},\"ok\":{},\"errors\":{},\
         \"parse_errors\":{},\"panics\":{},\"oversize\":{},\
         \"loops\":{},\"parallel_loops\":{},\"workers\":{},\
         \"cold\":{{\"wall_secs\":{cold_secs:.4},\"programs_per_sec\":{cold_pps:.1}}},\
         \"warm\":{{\"wall_secs\":{warm_secs:.4},\"programs_per_sec\":{warm_pps:.1},\
         \"hits\":{warm_hits},\"lookups\":{warm_lookups},\"hit_ratio\":{hit_ratio:.4}}},\
         \"tier\":{{\"inserts\":{},\"evicted\":{},\"resident_bytes\":{},\
         \"peak_resident_bytes\":{},\"budget\":{shared_budget}}}}}",
        cold.summary.ok,
        cold.summary.errors,
        cold.summary.parse_errors,
        cold.summary.panics,
        cold.summary.oversize,
        cold.summary.loops,
        cold.summary.parallel_loops,
        cold.summary.workers,
        warm_stats.inserts,
        warm_stats.evicted,
        warm_stats.resident_bytes,
        warm_stats.peak_resident_bytes,
    );
    std::fs::write("BENCH_7.json", &json).expect("write BENCH_7.json");
    println!("{json}");
}
