//! Polyhedral-kernel smoke benchmark for CI: sequential analysis wall-clock
//! on the ch4 applications under the staged emptiness ladder versus the
//! executable pre-overhaul kernel (the `suif_poly::legacy` module:
//! `BTreeMap` expressions, fewest-occurrences elimination, always-full FM,
//! selected by turning the staging toggle off), plus kernel microbenchmarks
//! (intersect, project_out, prove_empty), emitted to `BENCH_4.json`.
//!
//! The toggle only reroutes the emptiness proofs and simplifier; the rest of
//! the analysis keeps the overhauled inline representation in both
//! configurations, so the in-process `kernel_speedup` *understates* the full
//! before/after delta.  `scripts/bench_poly_baseline.sh` measures the real
//! thing — it builds the pre-overhaul tree from git and passes its wall time
//! in `BENCH_POLY_BASELINE_SECS`, which this binary folds into the report as
//! `total.pre_pr_wall_secs` / `total.speedup` and gates at 1.3x.
//!
//! Every measured run is cold: fresh fact store, cleared prove-empty memo.
//! Reported numbers are the best of `RUNS` interleaved samples.  The stage
//! counters of the staged configuration are included so the smoke check can
//! see what share of emptiness queries resolved without full
//! Fourier–Motzkin.

use std::time::Instant;
use suif_analysis::{FactStore, ParallelizeConfig, Parallelizer, ScheduleOptions};
use suif_benchmarks::{apps, BenchProgram, Scale};
use suif_poly::{Constraint, LinExpr, PolyStats, Polyhedron, Var};

const RUNS: usize = 5;
/// Analyses per timed sample — batches the millisecond-scale per-app runs
/// into samples large enough to rise above scheduler noise.
const BATCH: usize = 3;

/// One timed sample under the given ladder configuration: `BATCH` cold
/// sequential analyses (fresh store, cleared memo each), summed.
fn analysis_sample(program: &suif_ir::Program, staged: bool) -> (f64, PolyStats, usize) {
    suif_poly::set_staged_emptiness(staged);
    let mut secs = 0.0;
    let mut poly = PolyStats::default();
    let mut loops = 0;
    for _ in 0..BATCH {
        suif_poly::clear_prove_empty_cache();
        let store = FactStore::new();
        let (pa, stats) = Parallelizer::analyze_in(
            program,
            ParallelizeConfig::default(),
            &ScheduleOptions { threads: 1 },
            None,
            &store,
        );
        secs += stats.total_secs;
        poly = stats.poly;
        loops = pa.ctx.tree.loops.len();
    }
    (secs, poly, loops)
}

fn add(out: &mut PolyStats, d: &PolyStats) {
    out.gcd_rejects += d.gcd_rejects;
    out.interval_rejects += d.interval_rejects;
    out.quick_sats += d.quick_sats;
    out.fm_runs += d.fm_runs;
    out.approximations += d.approximations;
    out.subscript_rejects += d.subscript_rejects;
}

fn bench_app(bench: &BenchProgram, stages: &mut PolyStats) -> (String, f64, f64) {
    let program = bench.parse();
    // Interleave configurations (legacy, staged, legacy, staged, ...) so
    // slow drift in the host's load hits both sides equally; keep the best
    // sample each.
    let mut legacy = f64::INFINITY;
    let mut staged = f64::INFINITY;
    let mut poly = PolyStats::default();
    let mut loops = 0;
    for _ in 0..RUNS {
        let (o, _, l) = analysis_sample(&program, false);
        legacy = legacy.min(o);
        let (s, p, _) = analysis_sample(&program, true);
        if s < staged {
            staged = s;
            poly = p;
        }
        loops = l;
    }
    add(stages, &poly);
    eprintln!(
        "{:<8} {loops:>3} loops  legacy-kernel {legacy:.6}s  staged {staged:.6}s  x{:.2}",
        bench.name,
        legacy / staged.max(1e-12)
    );
    let json = format!(
        "{{\"name\":\"{}\",\"loops\":{loops},\"legacy_kernel_wall_secs\":{legacy:.6},\
         \"staged_wall_secs\":{staged:.6},\"kernel_speedup\":{:.4}}}",
        bench.name,
        legacy / staged.max(1e-12)
    );
    (json, legacy, staged)
}

/// Deterministic pseudo-random stream (SplitMix64) for the microbenchmark
/// workload — identical systems on every run and host.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

const MICRO_VARS: [Var; 4] = [Var::Dim(0), Var::Dim(1), Var::Sym(0), Var::Sym(1)];

fn micro_systems(n: usize) -> Vec<Polyhedron> {
    let mut rng = Rng(0x51f0_ca11_ab1e);
    (0..n)
        .map(|_| {
            let k = 3 + (rng.next() % 4) as usize;
            Polyhedron::from_constraints((0..k).map(|_| {
                let mut e = LinExpr::constant(rng.range(-10, 10));
                for &v in &MICRO_VARS {
                    e = e.add(&LinExpr::term(v, rng.range(-4, 4)));
                }
                if rng.next().is_multiple_of(4) {
                    Constraint::eq0(e)
                } else {
                    Constraint::geq0(e)
                }
            }))
        })
        .collect()
}

/// Best-of-`RUNS` seconds for one microbenchmark body.
fn micro_time(mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        suif_poly::clear_prove_empty_cache();
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Kernel microbenchmarks over a fixed synthetic workload, staged off/on.
fn micro_json() -> String {
    let systems = micro_systems(400);
    let mut out = Vec::new();
    for (name, op) in [
        ("intersect", 0usize),
        ("project_out", 1),
        ("prove_empty", 2),
    ] {
        let mut secs = [0.0f64; 2];
        for (slot, staged) in [(0, false), (1, true)] {
            suif_poly::set_staged_emptiness(staged);
            secs[slot] = micro_time(|| match op {
                0 => {
                    for w in systems.windows(2) {
                        std::hint::black_box(w[0].intersect(&w[1]));
                    }
                }
                1 => {
                    for p in &systems {
                        for &v in &MICRO_VARS {
                            std::hint::black_box(p.project_out(v));
                        }
                    }
                }
                _ => {
                    for p in &systems {
                        std::hint::black_box(p.prove_empty());
                    }
                }
            });
        }
        eprintln!(
            "micro {name:<12} legacy-kernel {:.6}s  staged {:.6}s",
            secs[0], secs[1]
        );
        out.push(format!(
            "\"{name}\":{{\"legacy_kernel_secs\":{:.6},\"staged_secs\":{:.6}}}",
            secs[0], secs[1]
        ));
    }
    format!("{{{}}}", out.join(","))
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let baseline: Option<f64> = std::env::var("BENCH_POLY_BASELINE_SECS")
        .ok()
        .and_then(|s| s.trim().parse().ok());
    let benches = [
        apps::mdg(Scale::Test),
        apps::hydro(Scale::Test),
        apps::arc3d(Scale::Test),
        apps::flo88(Scale::Test, false),
        apps::hydro2d(Scale::Test),
        apps::wave5(Scale::Test),
    ];
    let mut total_legacy = 0.0;
    let mut total_staged = 0.0;
    let mut per_app = Vec::new();
    let mut stages = PolyStats::default();
    for b in &benches {
        let (json, legacy, staged) = bench_app(b, &mut stages);
        total_legacy += legacy;
        total_staged += staged;
        per_app.push(json);
    }
    let micro = micro_json();
    suif_poly::set_staged_emptiness(true);
    let cheap = stages.gcd_rejects + stages.interval_rejects + stages.quick_sats;
    let no_fm_share = cheap as f64 / (cheap + stages.fm_runs).max(1) as f64;
    let pre_pr = baseline.map_or(String::new(), |b| {
        format!(
            ",\"pre_pr_wall_secs\":{b:.6},\"speedup\":{:.4}",
            b / total_staged.max(1e-12)
        )
    });
    let json = format!(
        "{{\"bench\":\"ch4-poly-kernel\",\"cpus\":{cpus},\
         \"apps\":[{}],\
         \"total\":{{\"legacy_kernel_wall_secs\":{total_legacy:.6},\
         \"staged_wall_secs\":{total_staged:.6},\
         \"kernel_speedup\":{:.4}{pre_pr}}},\
         \"stages\":{{\"gcd_rejects\":{},\"interval_rejects\":{},\"quick_sats\":{},\
         \"subscript_rejects\":{},\"fm_runs\":{},\"approximations\":{},\
         \"no_fm_share\":{no_fm_share:.4}}},\
         \"micro\":{micro}}}",
        per_app.join(","),
        total_legacy / total_staged.max(1e-12),
        stages.gcd_rejects,
        stages.interval_rejects,
        stages.quick_sats,
        stages.subscript_rejects,
        stages.fm_runs,
        stages.approximations,
    );
    std::fs::write("BENCH_4.json", &json).expect("write BENCH_4.json");
    println!("{json}");
    if let Some(b) = baseline {
        let speedup = b / total_staged.max(1e-12);
        if speedup < 1.3 {
            eprintln!(
                "error: staged kernel ({total_staged:.6}s) not >=1.3x over the \
                 pre-overhaul build ({b:.6}s): x{speedup:.2}"
            );
            std::process::exit(1);
        }
    } else if total_staged > total_legacy * 1.15 {
        // No git baseline available: sanity-gate the in-process kernel A/B
        // with slack for timer noise on loaded hosts.
        eprintln!(
            "error: staged kernel ({total_staged:.6}s) regressed >15% against the \
             in-process legacy kernel ({total_legacy:.6}s)"
        );
        std::process::exit(1);
    }
}
