//! Warm-restart smoke benchmark for CI: per ch4 application, a cold
//! session open over a fresh persist dir versus a warm restart over the
//! same dir (replay the base image + append-log, recompute nothing), plus
//! the per-assert checkpoint cost now that checkpoints append O(delta)
//! records instead of rewriting the whole snapshot.  Emitted to
//! `BENCH_8.json`.
//!
//! The asserted contract, per app:
//!
//! * the warm open reports `snapshot: loaded` and invokes the summarize,
//!   liveness, and classify passes **zero** times — every pass is
//!   persisted since snapshot version 3;
//! * appended checkpoint bytes per assert stay below the whole-image
//!   size a pre-append-log checkpoint used to rewrite each time.
//!
//! Suite-wide, the warm restart must spend at least 5x less on analysis
//! passes than the cold run: cold `passes.total` seconds versus the warm
//! open's residual `passes.total` (near zero — every persisted pass is
//! answered from the snapshot).  The costs a warm open still pays are
//! reported alongside, not hidden in the ratio: `warm_load_secs` (reading
//! and decoding the image — linear in image size, independent of how
//! expensive the facts were to compute) and the wall-clock open times,
//! which both runs dominate with the dynamic profile run that is
//! re-executed per load by design (profile evidence is an observed input,
//! not a derived fact, so persistence deliberately does not capture it).
//!
//! Usage: `bench_warm [min_speedup]`  (runs the ch4 suite at `Scale::Bench`)

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use suif_analysis::{ScheduleOptions, SummaryCache};
use suif_benchmarks::{ch4_apps, Scale};
use suif_server::json::Json;
use suif_server::{Session, SNAPSHOT_FILE, SNAPSHOT_LOG_FILE};

fn open(source: &str, dir: &Path) -> Session {
    Session::open_with_persistence(
        source,
        ScheduleOptions::sequential(),
        Arc::new(SummaryCache::new()),
        0,
        Some(dir),
    )
    .expect("session open")
}

fn snap_i64(s: &Session, field: &str) -> i64 {
    s.stats_json()
        .get("snapshot")
        .and_then(|j| j.get(field))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

fn snap_f64(s: &Session, field: &str) -> f64 {
    s.stats_json()
        .get("snapshot")
        .and_then(|j| j.get(field))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

/// Total pass seconds of the session's analysis so far.
fn analysis_secs(s: &Session) -> f64 {
    s.stats_json()
        .get("passes")
        .and_then(|p| p.get("total"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

fn pass_invocations(s: &Session, pass: &str) -> i64 {
    // Zero-traffic passes are omitted from `passes`; absence is zero.
    s.stats_json()
        .get("passes")
        .and_then(|p| p.get(pass))
        .and_then(|p| p.get("invocations"))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

fn main() {
    let min_speedup: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("min_speedup"))
        .unwrap_or(5.0);

    let mut rows = Vec::new();
    let mut cold_analysis_total = 0.0f64;
    let mut warm_analysis_total = 0.0f64;
    let mut warm_load_total = 0.0f64;

    for bench in ch4_apps(Scale::Bench) {
        let dir = std::env::temp_dir().join(format!(
            "suif_bench_warm_{}_{}",
            std::process::id(),
            bench.name
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");

        // ---- cold: fresh dir, everything computed and persisted --------
        // The pipeline is demand-driven, so the guru query (not the open)
        // triggers the bulk of the analysis; measure pass seconds after it.
        let t0 = Instant::now();
        let mut s = open(&bench.source, &dir);
        let _ = s.guru_json();
        let cold_open = t0.elapsed().as_secs_f64();
        let cold_analysis = analysis_secs(&s);
        s.checkpoint_json().expect("checkpoint");

        // Per-assert checkpoint cost: each assert appends one O(delta)
        // record; the alternative it replaced rewrote the whole base
        // image every time.
        let base_bytes = std::fs::metadata(dir.join(SNAPSHOT_FILE))
            .expect("base image")
            .len();
        let mut assert_bytes = Vec::new();
        for a in &bench.assertions {
            let before = snap_i64(&s, "appended_bytes");
            let _ = s.assert_json(&a.loop_name, &a.var, !a.privatize);
            assert_bytes.push(snap_i64(&s, "appended_bytes") - before);
        }
        let compactions = snap_i64(&s, "compactions");
        drop(s); // clean shutdown appends any remainder

        // ---- warm: same dir, same program, nothing recomputed ----------
        let t1 = Instant::now();
        let mut s = open(&bench.source, &dir);
        let _ = s.guru_json();
        let warm_open = t1.elapsed().as_secs_f64();
        let warm_analysis = analysis_secs(&s);
        let warm_load = snap_f64(&s, "load_secs");
        let status = s
            .stats_json()
            .get("snapshot")
            .and_then(|j| j.get("status"))
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        assert_eq!(status, "loaded", "{}: warm open must load", bench.name);
        let warm_hits = snap_i64(&s, "warm_hits");
        assert!(warm_hits > 0, "{}: no facts imported", bench.name);
        for pass in ["summarize", "liveness", "classify"] {
            let n = pass_invocations(&s, pass);
            assert_eq!(n, 0, "{}: warm open re-ran {pass}", bench.name);
        }
        drop(s);
        let log_bytes = std::fs::metadata(dir.join(SNAPSHOT_LOG_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        let _ = std::fs::remove_dir_all(&dir);

        cold_analysis_total += cold_analysis;
        warm_analysis_total += warm_analysis;
        warm_load_total += warm_load;
        let speedup = cold_analysis / warm_analysis.max(1e-6);
        let per_assert: Vec<String> = assert_bytes.iter().map(|b| b.to_string()).collect();
        eprintln!(
            "{:<8} analysis: cold {cold_analysis:.4}s  warm {warm_analysis:.6}s  x{speedup:.0}  \
             [warm load {warm_load:.4}s; open wall: cold {cold_open:.4}s, warm {warm_open:.4}s]  \
             {warm_hits} warm hits, 0 summarize/liveness/classify; \
             base {base_bytes} B, per-assert append [{}] B",
            bench.name,
            per_assert.join(", "),
        );
        for b in &assert_bytes {
            assert!(
                (*b as u64) < base_bytes,
                "{}: appended {b} B per assert, not less than a {base_bytes} B full rewrite",
                bench.name
            );
        }
        rows.push(format!(
            "{{\"name\":\"{}\",\"cold_analysis_secs\":{cold_analysis:.6},\
             \"warm_analysis_secs\":{warm_analysis:.6},\"speedup\":{speedup:.2},\
             \"warm_load_secs\":{warm_load:.6},\
             \"cold_open_secs\":{cold_open:.6},\"warm_open_secs\":{warm_open:.6},\
             \"warm_hits\":{warm_hits},\"warm_invocations\":{{\"summarize\":0,\
             \"liveness\":0,\"classify\":0}},\"full_snapshot_bytes\":{base_bytes},\
             \"appended_bytes_per_assert\":[{}],\"log_bytes\":{log_bytes},\
             \"compactions\":{compactions}}}",
            bench.name,
            per_assert.join(","),
        ));
    }

    let suite_speedup = cold_analysis_total / warm_analysis_total.max(1e-6);
    eprintln!(
        "suite: analysis cold {cold_analysis_total:.4}s  warm {warm_analysis_total:.6}s  \
         x{suite_speedup:.0} (floor x{min_speedup:.1}); warm load {warm_load_total:.4}s"
    );
    assert!(
        suite_speedup >= min_speedup,
        "warm restart analysis speedup x{suite_speedup:.2} below the x{min_speedup} floor"
    );

    let json = format!(
        "{{\"bench\":\"warm_restart\",\"metric\":\"analysis_recompute\",\"apps\":[{}],\
         \"suite\":{{\"cold_analysis_secs\":{cold_analysis_total:.6},\
         \"warm_analysis_secs\":{warm_analysis_total:.6},\
         \"warm_load_secs\":{warm_load_total:.6},\
         \"speedup\":{suite_speedup:.2},\"min_speedup\":{min_speedup}}}}}",
        rows.join(",")
    );
    std::fs::write("BENCH_8.json", &json).expect("write BENCH_8.json");
    println!("{json}");
}
