//! Regenerate the evaluation's tables and figures.
//!
//! ```text
//! figures all [--bench]     # every figure (–-bench: large program sizes)
//! figures fig4_1 fig5_7 …   # specific figures
//! figures list              # figure ids
//! ```

use suif_benchmarks::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--bench") {
        Scale::Bench
    } else {
        Scale::Test
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if wanted.is_empty() || wanted == ["list"] {
        println!("usage: figures <all | list | fig-ids…> [--bench]");
        println!("figures: {}", suif_bench::ALL_FIGURES.join(" "));
        return;
    }
    let ids: Vec<&str> = if wanted == ["all"] {
        suif_bench::ALL_FIGURES.to_vec()
    } else {
        wanted
    };
    for id in ids {
        match suif_bench::render(id, scale) {
            Some(text) => {
                println!("=== {id} ===");
                println!("{text}");
            }
            None => eprintln!("unknown figure id `{id}` (try `figures list`)"),
        }
    }
}
