//! Benchmark smoke run for CI: one cold ch4 (mdg) analysis plus one
//! assertion replay through the same fact store, emitting pass timings and
//! fact-reuse counters to `BENCH_2.json`.
//!
//! The replay numbers are the PR's claim in miniature: after the user's
//! assertions, only the asserted loops' classify passes re-run and every
//! other fact is served from the store (`reuse_ratio` close to 1).

use std::sync::Arc;
use suif_analysis::{AnalyzeStats, FactStore, ParallelizeConfig, ScheduleOptions};
use suif_bench::common;
use suif_benchmarks::{apps, Scale};
use suif_explorer::Explorer;

fn stats_json(s: &AnalyzeStats) -> String {
    let passes: Vec<String> = s
        .passes
        .iter()
        .map(|p| {
            format!(
                "\"{}\":{{\"secs\":{:.6},\"invocations\":{},\"reused\":{}}}",
                p.pass.name(),
                p.secs,
                p.invocations,
                p.reused
            )
        })
        .collect();
    format!(
        "{{\"total_secs\":{:.6},\"facts_computed\":{},\"facts_reused\":{},\
         \"reuse_ratio\":{:.4},\"passes\":{{{}}}}}",
        s.total_secs,
        s.facts_computed,
        s.facts_reused,
        s.reuse_ratio(),
        passes.join(",")
    )
}

fn main() {
    let bench = apps::mdg(Scale::Test);
    let program = bench.parse();
    let store = Arc::new(FactStore::new());
    let (mut ex, cold) = Explorer::with_store(
        &program,
        ParallelizeConfig::default(),
        bench.input.clone(),
        &ScheduleOptions::sequential(),
        None,
        store,
    )
    .expect("analyze mdg");
    let replay = ex.apply_assertions(common::assertions(&bench));
    let json = format!(
        "{{\"bench\":\"{}\",\"cold\":{},\"assert_replay\":{}}}",
        bench.name,
        stats_json(&cold),
        stats_json(&replay)
    );
    std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
    println!("{json}");
}
