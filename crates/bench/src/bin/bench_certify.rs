//! Race-certification smoke benchmark for CI: certify every plannable loop
//! of the ch4 applications under adversarial schedules and report
//! throughput (loops and schedules certified per second) plus the
//! vector-clock detector's overhead against plain sequential execution.
//! Emitted to `BENCH_5.json`.
//!
//! Parallel loops run under their production privatization plan, serial
//! loops under the minimal always-legal plan (where statically reported
//! carried dependences surface as detected races) — the same pairing the
//! `certify` protocol command uses.

use std::time::Instant;
use suif_analysis::{ParallelizeConfig, Parallelizer};
use suif_benchmarks::{apps, BenchProgram, Scale};
use suif_parallel::{capture_sequential, certify_loop, CertifyOptions, ParallelPlans};

const SCHEDULES: u32 = 2;
const THREADS: usize = 3;
const SEED: u64 = 5;
const PLAIN_RUNS: usize = 3;

struct AppReport {
    json: String,
    loops: u64,
    schedules: u64,
    races: u64,
    cert_secs: f64,
    plain_secs: f64,
}

fn bench_app(bench: &BenchProgram) -> AppReport {
    let program = bench.parse();
    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let plans = ParallelPlans::from_analysis(&pa);

    // Plain execution baseline: best-of-N sequential wall clock.
    let mut plain_secs = f64::INFINITY;
    for _ in 0..PLAIN_RUNS {
        let t0 = Instant::now();
        let cap = capture_sequential(&program, &bench.input);
        assert!(
            cap.error.is_none(),
            "{}: sequential run failed: {:?}",
            bench.name,
            cap.error
        );
        plain_secs = plain_secs.min(t0.elapsed().as_secs_f64());
    }

    let mut loops = 0u64;
    let mut schedules = 0u64;
    let mut races = 0u64;
    let mut cert_secs = 0.0;
    for info in pa.certify_inputs() {
        let plan = if info.parallel {
            plans.loops.get(&info.stmt).cloned()
        } else {
            suif_parallel::plan::minimal_plan(&program, info.stmt)
        };
        let Some(plan) = plan else { continue };
        let t0 = Instant::now();
        let cert = certify_loop(
            &program,
            info.stmt,
            &plan,
            &CertifyOptions {
                threads: THREADS,
                schedules: SCHEDULES,
                seed: SEED,
                input: bench.input.clone(),
            },
        );
        cert_secs += t0.elapsed().as_secs_f64();
        loops += 1;
        schedules += cert.schedules_run() as u64;
        races += cert.race_count() as u64;
        if info.parallel {
            assert!(
                cert.race_free(),
                "{}: parallel loop {} raced under certification",
                bench.name,
                info.name
            );
        }
    }
    // Each certified schedule re-executes the whole program; normalize
    // against the plain run to get the detector + gate overhead factor.
    let overhead = (cert_secs / schedules.max(1) as f64) / plain_secs.max(1e-9);
    eprintln!(
        "{:<8} {loops:>3} loops  {schedules:>3} schedules  {races:>3} races  \
         cert {cert_secs:.4}s  plain {plain_secs:.6}s  overhead x{overhead:.1}",
        bench.name
    );
    let json = format!(
        "{{\"name\":\"{}\",\"loops\":{loops},\"schedules\":{schedules},\"races\":{races},\
         \"cert_secs\":{cert_secs:.6},\"plain_secs\":{plain_secs:.6},\
         \"detector_overhead\":{overhead:.2}}}",
        bench.name
    );
    AppReport {
        json,
        loops,
        schedules,
        races,
        cert_secs,
        plain_secs,
    }
}

fn main() {
    let benches = [
        apps::mdg(Scale::Test),
        apps::hydro(Scale::Test),
        apps::arc3d(Scale::Test),
        apps::hydro2d(Scale::Test),
    ];
    let mut per_app = Vec::new();
    let mut loops = 0u64;
    let mut schedules = 0u64;
    let mut races = 0u64;
    let mut cert_secs = 0.0;
    let mut plain_secs = 0.0;
    for b in &benches {
        let r = bench_app(b);
        loops += r.loops;
        schedules += r.schedules;
        races += r.races;
        cert_secs += r.cert_secs;
        plain_secs += r.plain_secs;
        per_app.push(r.json);
    }
    let loops_per_sec = loops as f64 / cert_secs.max(1e-9);
    let schedules_per_sec = schedules as f64 / cert_secs.max(1e-9);
    let overhead = (cert_secs / schedules.max(1) as f64) / (plain_secs / benches.len() as f64);
    let json = format!(
        "{{\"bench\":\"race-certification\",\"threads\":{THREADS},\"schedules_per_loop\":{SCHEDULES},\
         \"seed\":{SEED},\"apps\":[{}],\
         \"total\":{{\"loops\":{loops},\"schedules\":{schedules},\"races\":{races},\
         \"cert_secs\":{cert_secs:.6},\"loops_per_sec\":{loops_per_sec:.2},\
         \"schedules_per_sec\":{schedules_per_sec:.2},\
         \"detector_overhead\":{overhead:.2}}}}}",
        per_app.join(",")
    );
    std::fs::write("BENCH_5.json", &json).expect("write BENCH_5.json");
    println!("{json}");
    assert!(loops > 0, "no loops certified");
}
