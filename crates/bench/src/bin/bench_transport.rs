//! Evented-transport benchmark for CI: how many idle sessions the single
//! reactor thread holds, and what pipelining buys over one-request-per-
//! write round trips.  Emitted to `BENCH_6.json`.
//!
//! Three measurements:
//! * **idle scaling** — open N idle TCP sessions (default 1000) against
//!   the daemon and time until the reactor has accepted them all; the
//!   worker pool must stay at its small fixed size throughout.
//! * **throughput** — the same command stream sent (a) one write + one
//!   read per command, (b) all commands pipelined in one write, and
//!   (c) as a single `batch` request; commands/sec for each.
//! * **reactor accounting** — polls, wakeups, and offloaded jobs over the
//!   whole run, from the daemon's own stats.
//!
//! Usage: `bench_transport [idle_sessions] [pipeline_commands]`

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use suif_server::json::Json;
use suif_server::{serve_listener, ServiceOptions, ServiceState};

const SRC: &str = "program t
proc inc(real q[*], int n) {
 int i
 do 1 i = 1, n {
  q[i] = q[i] + 1
 }
}
proc main() {
 real b[8]
 int i
 do 2 i = 1, 8 {
  b[i] = i
 }
 call inc(b, 8)
 print b[3]
}";

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let conn = TcpStream::connect(addr).expect("connect");
        // Without this, writeln!'s separate payload + newline writes hit
        // the Nagle/delayed-ACK interaction (~40ms per round trip) and the
        // serial baseline measures the TCP stack, not the daemon.
        conn.set_nodelay(true).expect("nodelay");
        Client {
            reader: BufReader::new(conn.try_clone().expect("clone")),
            writer: conn,
        }
    }

    fn recv(&mut self) -> Json {
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read");
        Json::parse(resp.trim()).unwrap_or_else(|e| panic!("bad response {resp:?}: {e}"))
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("write");
        self.writer.flush().expect("flush");
        self.recv()
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let idle_target: usize = args
        .next()
        .map(|a| a.parse().expect("idle_sessions"))
        .unwrap_or(1000);
    let commands: usize = args
        .next()
        .map(|a| a.parse().expect("pipeline_commands"))
        .unwrap_or(2000);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let state = ServiceState::new(ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    });
    let st = state.clone();
    let server = std::thread::spawn(move || serve_listener(listener, st));

    let mut c = Client::connect(addr);
    let escaped = SRC
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    let r = c.roundtrip(&format!(r#"{{"cmd":"load","text":"{escaped}"}}"#));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

    // ---- idle-session scaling -------------------------------------------
    let t0 = Instant::now();
    let idle: Vec<TcpStream> = (0..idle_target)
        .map(|i| {
            // Pace the storm just under the listen backlog so the bench
            // measures the reactor's accept rate, not kernel SYN drops
            // and their 1s retransmit timeouts.
            if i % 64 == 63 {
                std::thread::sleep(Duration::from_millis(2));
            }
            TcpStream::connect(addr).expect("idle connect")
        })
        .collect();
    let (accept_secs, reactor_at_peak) = loop {
        let v = c.roundtrip(r#"{"cmd":"stats"}"#);
        let svc = v.get("service").expect("service stats").clone();
        let reactor = svc.get("reactor").expect("reactor stats").clone();
        let live = reactor.get("connections").and_then(Json::as_i64).unwrap();
        if live >= (idle_target + 1) as i64 {
            break (t0.elapsed().as_secs_f64(), reactor);
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "reactor accepted only {live}/{} connections",
            idle_target + 1
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let backend = reactor_at_peak
        .get("backend")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    let peak = reactor_at_peak
        .get("peak_connections")
        .and_then(Json::as_i64)
        .unwrap_or(0);
    let v = c.roundtrip(r#"{"cmd":"stats"}"#);
    let workers = v.get("service").unwrap().get("workers").unwrap().clone();
    let worker_count = workers.get("count").and_then(Json::as_i64).unwrap_or(0);
    eprintln!(
        "idle scaling: {idle_target} sessions held on backend `{backend}` \
         in {accept_secs:.3}s ({worker_count} workers)"
    );

    // Reactor accounting deltas around each phase show what pipelining
    // saves even when command execution (not latency) is the bottleneck:
    // wakeups and offloaded jobs per command.
    fn reactor_counters(c: &mut Client) -> (i64, i64) {
        let v = c.roundtrip(r#"{"cmd":"stats"}"#);
        let r = v.get("service").unwrap().get("reactor").unwrap().clone();
        (
            r.get("wakeups").and_then(Json::as_i64).unwrap_or(0),
            r.get("offloaded").and_then(Json::as_i64).unwrap_or(0),
        )
    }

    // ---- serial: one write + one read per command -----------------------
    let serial_n = (commands / 4).max(1);
    let (w0, j0) = reactor_counters(&mut c);
    let t0 = Instant::now();
    for _ in 0..serial_n {
        let v = c.roundtrip(r#"{"cmd":"stats"}"#);
        assert!(v.get("service").is_some());
    }
    let serial_secs = t0.elapsed().as_secs_f64();
    let serial_cps = serial_n as f64 / serial_secs.max(1e-9);
    let (w1, j1) = reactor_counters(&mut c);
    let (serial_wakeups, serial_jobs) = (w1 - w0, j1 - j0);

    // ---- pipelined: every command in ONE write --------------------------
    let mut payload = String::with_capacity(commands * 20);
    for i in 0..commands {
        payload.push_str(&format!("{{\"cmd\":\"stats\",\"id\":{i}}}\n"));
    }
    let t0 = Instant::now();
    c.writer.write_all(payload.as_bytes()).expect("write");
    c.writer.flush().expect("flush");
    for i in 0..commands {
        let v = c.recv();
        assert_eq!(
            v.get("id").and_then(Json::as_i64),
            Some(i as i64),
            "pipelined replies out of order"
        );
    }
    let pipelined_secs = t0.elapsed().as_secs_f64();
    let pipelined_cps = commands as f64 / pipelined_secs.max(1e-9);
    let (w2, j2) = reactor_counters(&mut c);
    let (pipelined_wakeups, pipelined_jobs) = (w2 - w1, j2 - j1);

    // ---- batch: one request line, ordered per-element replies -----------
    let mut batch = String::from(r#"{"cmd":"batch","requests":["#);
    for i in 0..commands {
        if i > 0 {
            batch.push(',');
        }
        batch.push_str(&format!("{{\"cmd\":\"stats\",\"id\":{i}}}"));
    }
    batch.push_str("]}");
    let t0 = Instant::now();
    writeln!(c.writer, "{batch}").expect("write");
    c.writer.flush().expect("flush");
    for i in 0..commands {
        let v = c.recv();
        assert_eq!(
            v.get("id").and_then(Json::as_i64),
            Some(i as i64),
            "batch replies out of order"
        );
    }
    let batch_secs = t0.elapsed().as_secs_f64();
    let batch_cps = commands as f64 / batch_secs.max(1e-9);
    let (w3, j3) = reactor_counters(&mut c);
    let (batch_wakeups, batch_jobs) = (w3 - w2, j3 - j2);

    // ---- final reactor accounting, then shutdown ------------------------
    let v = c.roundtrip(r#"{"cmd":"stats"}"#);
    let reactor = v.get("service").unwrap().get("reactor").unwrap().clone();
    let polls = reactor.get("polls").and_then(Json::as_i64).unwrap_or(0);
    let wakeups = reactor.get("wakeups").and_then(Json::as_i64).unwrap_or(0);
    let offloaded = reactor.get("offloaded").and_then(Json::as_i64).unwrap_or(0);

    let r = c.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    server.join().expect("join").expect("serve");
    drop(idle);

    let speedup = pipelined_cps / serial_cps.max(1e-9);
    eprintln!(
        "throughput: serial {serial_cps:.0}/s ({serial_jobs} jobs)  \
         pipelined {pipelined_cps:.0}/s ({pipelined_jobs} jobs, x{speedup:.1})  \
         batch {batch_cps:.0}/s ({batch_jobs} jobs, {batch_wakeups} wakeups)"
    );
    let json = format!(
        "{{\"bench\":\"evented-transport\",\"backend\":\"{backend}\",\
         \"idle\":{{\"sessions\":{idle_target},\"accept_secs\":{accept_secs:.4},\
         \"peak_connections\":{peak},\"workers\":{worker_count}}},\
         \"serial\":{{\"commands\":{serial_n},\"cps\":{serial_cps:.1},\
         \"wakeups\":{serial_wakeups},\"jobs\":{serial_jobs}}},\
         \"pipelined\":{{\"commands\":{commands},\"cps\":{pipelined_cps:.1},\
         \"wakeups\":{pipelined_wakeups},\"jobs\":{pipelined_jobs},\
         \"speedup_vs_serial\":{speedup:.2}}},\
         \"batch\":{{\"commands\":{commands},\"cps\":{batch_cps:.1},\
         \"wakeups\":{batch_wakeups},\"jobs\":{batch_jobs}}},\
         \"reactor\":{{\"polls\":{polls},\"wakeups\":{wakeups},\"offloaded\":{offloaded}}}}}"
    );
    std::fs::write("BENCH_6.json", &json).expect("write BENCH_6.json");
    println!("{json}");
    assert!(
        peak >= (idle_target + 1) as i64,
        "idle sessions not all held"
    );
    // Serial offloads one worker job per command; pipelining coalesces
    // whole inbox batches and the `batch` command is a single frame — one
    // job, one completion wakeup, one round trip (the +1s are the
    // counter-snapshot stats commands themselves).
    assert!(
        serial_jobs >= serial_n as i64,
        "serial must offload per command: {serial_jobs} jobs for {serial_n}"
    );
    assert!(
        pipelined_jobs < serial_jobs,
        "pipelining must coalesce jobs: {pipelined_jobs} vs {serial_jobs}"
    );
    assert!(
        batch_jobs <= 2,
        "a batch request must execute as one offloaded job: {batch_jobs}"
    );
}
