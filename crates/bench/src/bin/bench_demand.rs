//! Parallel-demand smoke benchmark for CI: per ch4 application, the
//! classify fan-out of [`FactStore::demand_all`] with one worker versus a
//! small pool, plus a speculative-prefetch session demo, emitted to
//! `BENCH_3.json`.
//!
//! Both sides of each comparison start from a fresh fact store and a
//! cleared polyhedral emptiness memo, so the wall-clock difference is the
//! executor's, not a cache artifact.  The reported number is the best of
//! three runs (the smoke check cares about the ordering, not the noise).

use std::sync::Arc;
use suif_analysis::{FactStore, ParallelizeConfig, Parallelizer, ScheduleOptions, SummaryCache};
use suif_benchmarks::{apps, BenchProgram, Scale};
use suif_server::json::Json;
use suif_server::Session;

const RUNS: usize = 3;
const PAR_THREADS: usize = 4;

/// Best-of-`RUNS` classify fan-out wall-clock with `threads` demand
/// workers, each run cold: fresh store, cleared prove-empty memo.
fn classify_wall(program: &suif_ir::Program, threads: usize) -> (f64, u64, usize) {
    let mut best = f64::INFINITY;
    let mut deduped = 0;
    let mut loops = 0;
    for _ in 0..RUNS {
        suif_poly::clear_prove_empty_cache();
        let store = FactStore::new();
        let (pa, stats) = Parallelizer::analyze_in(
            program,
            ParallelizeConfig::default(),
            &ScheduleOptions { threads },
            None,
            &store,
        );
        best = best.min(stats.demand_exec.wall_secs);
        deduped = stats.facts_deduped;
        loops = pa.ctx.tree.loops.len();
    }
    (best, deduped, loops)
}

fn bench_app(bench: &BenchProgram) -> (String, f64, f64) {
    let program = bench.parse();
    let (seq, _, loops) = classify_wall(&program, 1);
    let (par, deduped, _) = classify_wall(&program, PAR_THREADS);
    eprintln!(
        "{:<8} {loops:>3} loops  seq {seq:.6}s  par({PAR_THREADS}) {par:.6}s  x{:.2}",
        bench.name,
        seq / par.max(1e-12)
    );
    let json = format!(
        "{{\"name\":\"{}\",\"loops\":{loops},\"seq_wall_secs\":{seq:.6},\
         \"par_wall_secs\":{par:.6},\"speedup\":{:.4},\"deduped\":{deduped}}}",
        bench.name,
        seq / par.max(1e-12)
    );
    (json, seq, par)
}

/// Session demo: `guru` spawns the background prefetch, `slice` on the top
/// target claims its facts; the daemon's speculation counters are the
/// receipt.
fn speculation_demo() -> String {
    let bench = apps::mdg(Scale::Test);
    let cache = Arc::new(SummaryCache::new());
    let mut s =
        Session::open_with_speculation(&bench.source, ScheduleOptions::sequential(), cache, 4)
            .expect("open mdg session");
    let guru = s.guru_json();
    s.wait_speculation();
    if let Some(t) = guru
        .get("targets")
        .and_then(Json::as_arr)
        .and_then(|a| a.first())
        .and_then(|t| t.get("loop"))
        .and_then(Json::as_str)
    {
        let _ = s.slice_json(t);
    }
    let stats = s.stats_json();
    let spec = stats.get("speculation").expect("speculation stats");
    let n = |k: &str| spec.get(k).and_then(Json::as_i64).unwrap_or(0);
    format!(
        "{{\"spawned\":{},\"hits\":{},\"wasted\":{},\"pending\":{}}}",
        n("spawned"),
        n("hits"),
        n("wasted"),
        n("pending")
    )
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let benches = [
        apps::mdg(Scale::Test),
        apps::hydro(Scale::Test),
        apps::arc3d(Scale::Test),
        apps::flo88(Scale::Test, false),
        apps::hydro2d(Scale::Test),
        apps::wave5(Scale::Test),
    ];
    let mut total_seq = 0.0;
    let mut total_par = 0.0;
    let mut per_app = Vec::new();
    for b in &benches {
        let (json, seq, par) = bench_app(b);
        total_seq += seq;
        total_par += par;
        per_app.push(json);
    }
    let json = format!(
        "{{\"bench\":\"ch4-classify-fanout\",\"par_threads\":{PAR_THREADS},\"cpus\":{cpus},\
         \"apps\":[{}],\
         \"total\":{{\"seq_wall_secs\":{total_seq:.6},\"par_wall_secs\":{total_par:.6},\
         \"speedup\":{:.4}}},\
         \"speculation\":{}}}",
        per_app.join(","),
        total_seq / total_par.max(1e-12),
        speculation_demo()
    );
    std::fs::write("BENCH_3.json", &json).expect("write BENCH_3.json");
    println!("{json}");
    if total_par >= total_seq {
        // On a single-CPU host the fan-out cannot beat inline execution;
        // report the numbers but only fail where parallel hardware exists.
        eprintln!(
            "warning: parallel demand ({total_par:.6}s) not below sequential ({total_seq:.6}s)"
        );
        if cpus > 1 {
            std::process::exit(1);
        }
    }
}
