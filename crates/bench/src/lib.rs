//! Figure-regeneration harness: one function per table/figure of the
//! evaluation (see DESIGN.md's per-experiment index).  The `figures` binary
//! prints the same rows/series the paper reports; absolute numbers are
//! host-dependent, the *shape* is the reproduction claim (EXPERIMENTS.md
//! records paper-vs-measured).

#![warn(missing_docs)]

pub mod ch4;
pub mod ch5;
pub mod ch6;
pub mod common;
pub mod misc;

/// All figure ids in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "fig2_1",
    "fig4_1",
    "fig4_2",
    "fig4_3",
    "fig4_5",
    "fig4_6",
    "fig4_7",
    "fig4_8",
    "fig4_9",
    "fig4_10",
    "fig5_5",
    "fig5_6",
    "fig5_7",
    "fig5_8",
    "fig5_10",
    "fig5_11",
    "fig5_12",
    "fig6_1",
    "fig6_2",
    "fig6_3",
    "fig6_4",
    "fig6_5",
    "fig6_6",
    "fig6_7",
    "abl_dyndep",
    "abl_schedule",
    "abl_subtract",
];

/// Render one figure by id.
pub fn render(id: &str, scale: suif_benchmarks::Scale) -> Option<String> {
    Some(match id {
        "fig2_1" => misc::fig2_1(),
        "fig4_1" => ch4::fig4_1(scale),
        "fig4_2" => ch4::fig4_2(),
        "fig4_3" => ch4::fig4_3(),
        "fig4_5" => ch4::fig4_5(),
        "fig4_6" => ch4::fig4_6(),
        "fig4_7" => ch4::fig4_7(),
        "fig4_8" => ch4::fig4_8(),
        "fig4_9" => ch4::fig4_9(),
        "fig4_10" => ch4::fig4_10(scale),
        "fig5_5" => ch5::fig5_5(),
        "fig5_6" => ch5::fig5_6(scale),
        "fig5_7" => ch5::fig5_7(),
        "fig5_8" => ch5::fig5_8(scale),
        "fig5_10" => ch5::fig5_10(scale),
        "fig5_11" => ch5::fig5_11(),
        "fig5_12" => ch5::fig5_12(scale),
        "fig6_1" => misc::fig6_1(),
        "abl_dyndep" => misc::abl_dyndep(),
        "abl_schedule" => misc::abl_schedule(),
        "abl_subtract" => misc::abl_subtract(),
        "fig6_2" => ch6::fig6_2(),
        "fig6_3" => ch6::fig6_3(),
        "fig6_4" => ch6::fig6_4(),
        "fig6_5" => ch6::fig6_5(),
        "fig6_6" => ch6::fig6_6(scale),
        "fig6_7" => ch6::fig6_7(scale),
        _ => return None,
    })
}
