//! Remaining figures: the hydro region diagram and machine characteristics.

use suif_benchmarks::apps;
use suif_benchmarks::Scale;
use suif_explorer::Explorer;
use suif_ir::CallGraph;

/// Fig. 2-1: the hydro coarse-grain parallel-region structure, rendered as
/// the call tree with parallel-loop annotations (the textual analogue of the
/// box diagram).
pub fn fig2_1() -> String {
    let bench = apps::hydro(Scale::Test);
    let program = bench.parse();
    let ex = Explorer::new(&program, bench.input.clone()).unwrap();
    let cg = CallGraph::build(&program);
    let mut out = String::from(
        "Fig 2-1: hydro call tree; per procedure, its loops and their automatic verdicts\n",
    );
    out.push_str(&cg.render_tree(&program));
    out.push_str("\nloops:\n");
    let parallel = ex.parallel_loops();
    for li in &ex.analysis.ctx.tree.loops {
        out.push_str(&format!(
            "  {:<16} {}\n",
            li.name,
            if parallel.contains(&li.stmt) {
                "parallel (auto)"
            } else {
                "sequential"
            }
        ));
    }
    out
}

/// Ablation: the Dynamic Dependence Analyzer's iteration-sampling
/// optimization (§2.5.2: "the instrumentation can skip batches of
/// iterations because the analysis result is used only as a hint") —
/// instrumented-run cost vs. dependences observed, per cap.
pub fn abl_dyndep() -> String {
    use suif_dynamic::machine::Machine;
    use suif_dynamic::{DynDepAnalyzer, DynDepConfig};
    let bench = apps::mdg(Scale::Test);
    let program = bench.parse();
    let mut out = String::from(
        "Ablation: dynamic-dependence iteration sampling on mdg\n\
         cap(iter/invocation)  wall(ms)  loops-with-deps\n",
    );
    for cap in [None, Some(64), Some(8), Some(2)] {
        let cfg = DynDepConfig {
            max_iterations_per_invocation: cap,
            ..Default::default()
        };
        let mut dd = DynDepAnalyzer::new(cfg);
        let t0 = std::time::Instant::now();
        {
            let mut m = Machine::new(&program, &mut dd).unwrap();
            m.set_input(bench.input.clone());
            m.run().unwrap();
        }
        let wall = t0.elapsed();
        let rep = dd.report();
        let with_deps = rep.deps.values().filter(|v| !v.is_empty()).count();
        out.push_str(&format!(
            "{:>20}  {:>8.1}  {:>4}\n",
            cap.map(|c| c.to_string())
                .unwrap_or_else(|| "unlimited".into()),
            wall.as_secs_f64() * 1e3,
            with_deps
        ));
    }
    out
}

/// Ablation: block vs cyclic iteration scheduling on mdg's triangular pair
/// loop (the Fig. 4-10 mdg imbalance note) — an extension beyond the
/// paper's block-only runtime (§4.5).
pub fn abl_schedule() -> String {
    use suif_analysis::{Assertion, ParallelizeConfig, Parallelizer};
    use suif_parallel::{
        parallel_ops, sequential_ops, Finalization, ParallelPlans, RuntimeConfig, Schedule,
    };
    let bench = apps::mdg(suif_benchmarks::Scale::Bench);
    let program = bench.parse();
    let pa = Parallelizer::analyze(
        &program,
        ParallelizeConfig {
            assertions: vec![Assertion::Privatizable {
                loop_name: "interf/1000".into(),
                var: "rl".into(),
            }],
            ..Default::default()
        },
    );
    let plans = ParallelPlans::from_analysis(&pa);
    let seq = sequential_ops(&program, &bench.input).unwrap();
    let mut out = String::from(
        "Ablation: iteration scheduling on mdg (user-parallelized, simulated speedup)\n\
         threads  block  cyclic\n",
    );
    for threads in [2usize, 4] {
        let mut row = format!("{threads:>7}");
        for schedule in [Schedule::Block, Schedule::Cyclic] {
            let cfg = RuntimeConfig {
                threads,
                min_parallel_iters: 4,
                min_parallel_cost: 2048,
                finalization: Finalization::StaggeredLocks { sections: 8 },
                schedule,
            };
            let par = parallel_ops(&program, &plans, &cfg, &bench.input).unwrap();
            row.push_str(&format!("  {:>5.2}", seq as f64 / par as f64));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Fig. 6-1: characteristics of the machine used for the experiments (the
/// host stands in for the paper's SGI Challenge / Origin).
pub fn fig6_1() -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let os = std::env::consts::OS;
    let arch = std::env::consts::ARCH;
    format!(
        "Fig 6-1: experimental platform (host stand-in for the paper's machines)\n\
         processors : {cpus}\n\
         arch       : {arch}\n\
         os         : {os}\n\
         runtime    : std::thread SPMD over an interpreter shared-memory view\n\
         note       : the paper used a 4-cpu SGI Challenge and a 4-cpu SGI Origin;\n\
                      absolute times are not comparable, speedup shapes are.\n"
    )
}

/// Ablation: the polyhedral subtract budget (`SUBTRACT_TEST_BUDGET`).  The
/// full-liveness top-down on mdg subtracts the loop must-writes from large
/// exposed unions (`E − M` of Fig 5-2); without a budget one transfer on the
/// timestep loop costs seconds.  Precision is reported as the number of
/// modified arrays proven dead at loop exits — the budgets are sound
/// over-approximations, so lower budgets can only *lose* dead verdicts.
pub fn abl_subtract() -> String {
    use suif_analysis::liveness::{analyze_liveness, bottom_up};
    use suif_analysis::{AnalysisCtx, ArrayDataFlow, LivenessMode};
    let bench = apps::mdg(Scale::Test);
    let program = bench.parse();
    let ctx = AnalysisCtx::new(&program);
    let df = ArrayDataFlow::analyze(&ctx);
    let saved = bottom_up(&ctx, &df);
    let mut out = String::from(
        "Ablation: PolySet::subtract test budget on mdg full liveness\n\
         budget      top-down(ms)  dead-at-exit\n",
    );
    for (label, budget) in [
        ("64", Some(64isize)),
        ("1024 (def)", Some(1024)),
        ("unlimited", Some(isize::MAX)),
    ] {
        suif_poly::set_subtract_test_budget(budget);
        suif_poly::clear_prove_empty_cache();
        let t0 = std::time::Instant::now();
        let res = analyze_liveness(&ctx, &df, &saved, LivenessMode::Full);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let dead: usize = ctx
            .tree
            .loops
            .iter()
            .map(|l| {
                let written = res.written.get(&l.stmt).cloned().unwrap_or_default();
                written
                    .iter()
                    .filter(|id| !res.live_after_write[&l.stmt].contains(id))
                    .count()
            })
            .sum();
        out.push_str(&format!("{label:<11} {ms:>12.1}  {dead}\n"));
    }
    suif_poly::set_subtract_test_budget(None);
    suif_poly::clear_prove_empty_cache();
    out
}
