//! Micro-benchmarks of the polyhedral substrate: Fourier–Motzkin emptiness
//! proofs and dependence-style queries (the inner loop of every analysis).

use criterion::{criterion_group, criterion_main, Criterion};
use suif_poly::{Constraint, LinExpr, Polyhedron, Var};

fn dependence_system(conflict: bool) -> Polyhedron {
    // d0 == i1 + 64*j1, d0 == i2 + 64*j2 (+offset), bounds, i1 < i2.
    let d0 = LinExpr::var(Var::Dim(0));
    let i1 = LinExpr::var(Var::Sym(1));
    let i2 = LinExpr::var(Var::Sym(2));
    let j1 = LinExpr::var(Var::Sym(3));
    let j2 = LinExpr::var(Var::Sym(4));
    // offset 1 = the a(i-1) recurrence (iterations truly conflict);
    // offset 64 = a whole-column shift (provably independent mod 64).
    let off = if conflict { 1 } else { 64 };
    Polyhedron::from_constraints([
        Constraint::eq(&d0, &i1.add(&j1.scale(64)).offset(-64)),
        Constraint::eq(&d0, &i2.add(&j2.scale(64)).offset(-64 - off)),
        Constraint::geq(&i1, &LinExpr::constant(1)),
        Constraint::leq(&i1, &LinExpr::constant(64)),
        Constraint::geq(&i2, &LinExpr::constant(1)),
        Constraint::leq(&i2, &LinExpr::constant(64)),
        Constraint::geq(&j1, &LinExpr::constant(1)),
        Constraint::leq(&j1, &LinExpr::constant(8)),
        Constraint::geq(&j2, &LinExpr::constant(1)),
        Constraint::leq(&j2, &LinExpr::constant(8)),
        Constraint::lt(&i1, &i2),
    ])
}

fn bench_poly(c: &mut Criterion) {
    let mut g = c.benchmark_group("polyhedra");
    g.bench_function("prove_empty_independent", |b| {
        let p = dependence_system(false);
        b.iter(|| p.prove_empty())
    });
    g.bench_function("prove_empty_conflicting", |b| {
        let p = dependence_system(true);
        b.iter(|| p.prove_empty())
    });
    g.bench_function("projection", |b| {
        let p = dependence_system(false);
        b.iter(|| p.project_out(Var::Sym(3)))
    });
    g.bench_function("subset_test", |b| {
        let d0 = LinExpr::var(Var::Dim(0));
        let small = Polyhedron::from_constraints([
            Constraint::geq(&d0, &LinExpr::constant(2)),
            Constraint::leq(&d0, &LinExpr::constant(50)),
        ]);
        let big = Polyhedron::from_constraints([
            Constraint::geq(&d0, &LinExpr::constant(1)),
            Constraint::leq(&d0, &LinExpr::constant(100)),
        ]);
        b.iter(|| small.provably_subset_of(&big))
    });
    g.finish();
}

criterion_group!(benches, bench_poly);
criterion_main!(benches);
