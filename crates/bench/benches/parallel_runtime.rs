//! Criterion benches backing Figs. 6-6/6-7 and 5-12: parallel-runtime
//! speedups, the reduction-finalization strategy ablation (§6.3.4), and the
//! serial-fallback ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use suif_analysis::{ParallelizeConfig, Parallelizer};
use suif_benchmarks::{apps, reductions, Scale};
use suif_parallel::{
    measure_parallel, measure_sequential, Finalization, ParallelPlans, RuntimeConfig,
};

fn bench_runtime(c: &mut Criterion) {
    // Reduction-heavy kernel: finalization strategies (Fig. 6-6 vs 6-7).
    let bench = reductions::bdna(Scale::Test);
    let program = bench.parse();
    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let plans = ParallelPlans::from_analysis(&pa);

    let mut g = c.benchmark_group("bdna_runtime");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| measure_sequential(&program, vec![]).unwrap())
    });
    for (label, finalization) in [
        ("parallel2_serialized", Finalization::Serialized),
        (
            "parallel2_staggered",
            Finalization::StaggeredLocks { sections: 8 },
        ),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                measure_parallel(
                    &program,
                    &plans,
                    RuntimeConfig {
                        threads: 2,
                        min_parallel_iters: 4,
                        min_parallel_cost: 0,
                        finalization,
                        schedule: Default::default(),
                    },
                    vec![],
                )
                .unwrap()
            })
        });
    }
    g.finish();

    // flo88 contraction ablation (Fig. 5-12's mechanism).
    let flo = apps::flo88(Scale::Test, true);
    let program = flo.parse();
    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let plans = ParallelPlans::from_analysis(&pa);
    let mut contracted = program.clone();
    loop {
        let pa_c = Parallelizer::analyze(&contracted, ParallelizeConfig::default());
        let cands = suif_analysis::contract::find_candidates(&pa_c);
        let Some(cand) = cands.first() else { break };
        contracted = suif_analysis::contract::apply(&contracted, cand).unwrap();
    }
    let pa2 = Parallelizer::analyze(&contracted, ParallelizeConfig::default());
    let plans2 = ParallelPlans::from_analysis(&pa2);

    let mut g = c.benchmark_group("flo88_contraction");
    g.sample_size(10);
    g.bench_function("original_seq", |b| {
        b.iter(|| measure_sequential(&program, vec![]).unwrap())
    });
    g.bench_function("contracted_seq", |b| {
        b.iter(|| measure_sequential(&contracted, vec![]).unwrap())
    });
    g.bench_function("original_par2", |b| {
        b.iter(|| measure_parallel(&program, &plans, RuntimeConfig::default(), vec![]).unwrap())
    });
    g.bench_function("contracted_par2", |b| {
        b.iter(|| measure_parallel(&contracted, &plans2, RuntimeConfig::default(), vec![]).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
