//! Criterion benches backing Fig. 5-6: cost of the interprocedural analysis
//! passes, including the liveness-variant ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use suif_analysis::liveness::{analyze_liveness, bottom_up};
use suif_analysis::{AnalysisCtx, ArrayDataFlow, LivenessMode};
use suif_benchmarks::{apps, Scale};

fn bench_analysis(c: &mut Criterion) {
    let bench = apps::hydro(Scale::Test);
    let program = bench.parse();

    let mut g = c.benchmark_group("analysis_hydro");
    g.sample_size(10);

    g.bench_function("context_build", |b| b.iter(|| AnalysisCtx::new(&program)));

    g.bench_function("bottom_up_dataflow", |b| {
        let ctx = AnalysisCtx::new(&program);
        b.iter(|| ArrayDataFlow::analyze(&ctx))
    });

    let ctx = AnalysisCtx::new(&program);
    let df = ArrayDataFlow::analyze(&ctx);
    let saved = bottom_up(&ctx, &df);
    for (label, mode) in [
        ("liveness_flow_insensitive", LivenessMode::FlowInsensitive),
        ("liveness_one_bit", LivenessMode::OneBit),
        ("liveness_full", LivenessMode::Full),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| analyze_liveness(&ctx, &df, &saved, mode))
        });
    }
    g.finish();

    // Whole-pipeline per application (Fig. 5-6 rows).
    let mut g = c.benchmark_group("parallelize_full");
    g.sample_size(10);
    for bench in [apps::mdg(Scale::Test), apps::arc3d(Scale::Test)] {
        let program = bench.parse();
        g.bench_function(bench.name, |b| {
            b.iter(|| {
                suif_analysis::Parallelizer::analyze(
                    &program,
                    suif_analysis::ParallelizeConfig::default(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
