//! The SUIF Explorer command-line driver.
//!
//! ```text
//! suif-explorer analyze <file.mf>                 # verdicts + guru targets
//! suif-explorer explore <file.mf> [--assert L:V]… # interactive pipeline with assertions
//! suif-explorer slice   <file.mf> <loop>          # slices for a loop's first dependence
//! suif-explorer run     <file.mf> [--threads N] [--input v,…]
//! suif-explorer codeview <file.mf>
//! suif-explorer serve   [--threads N] [--tcp ADDR] [--speculate N] [--persist-dir DIR]
//! ```
//!
//! `--assert interf/1000:rl` privatizes `rl` in `interf/1000` after the
//! assertion checker validates it against the dynamic run (§2.8).

use std::io::Write as _;
use std::process::ExitCode;
use suif_analysis::Assertion;
use suif_explorer::{CheckResult, Explorer};
use suif_parallel::{measure_parallel, measure_sequential, ParallelPlans, RuntimeConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: suif-explorer <analyze|explore|slice|run|certify|codeview> <file.mf> [options]\n\
     \x20      suif-explorer serve [--threads N] [--workers N] [--tcp ADDR] [--speculate N]\n\
     \x20                          [--persist-dir DIR] [--max-sessions N]\n\
     \x20                          [--shared-budget BYTES] [--session-budget BYTES]\n\
     \x20      suif-explorer corpus <dir|manifest> [--gen N] [--seed-base S] [--workers N]\n\
     \x20                          [--shared-budget BYTES] [--session-budget BYTES]\n\
     \x20                          [--max-program-bytes B] [--report FILE] [--inject-panic NAME]\n\
     \x20                          [--persist-dir DIR]\n\
     options:\n\
       --assert LOOP:VAR    privatization assertion (repeatable)\n\
       --threads N          worker threads for `run`/`serve`\n\
       --input v1,v2,…      `read` input values\n\
       --schedules N        adversarial schedules per loop for `certify`\n\
                            (default 4)\n\
       --certify-seed N     base seed for the adversarial scheduler: schedule\n\
                            s of a loop replays deterministically under\n\
                            seed N+s (`certify` and `serve`; default 0)\n\
       --tcp ADDR           serve over TCP instead of stdio (e.g. 127.0.0.1:0);\n\
                            a single reactor thread multiplexes every\n\
                            connection (epoll/poll, no thread per client);\n\
                            each connection gets its own session over the\n\
                            shared fact tier and may pipeline requests or\n\
                            send a `batch` command for in-order replies\n\
       --speculate N        pre-classify up to N guru-ranked loops in the\n\
                            background after each `guru` (serve only; default 4)\n\
       --persist-dir DIR    durable fact snapshots in DIR/facts.snap plus an\n\
                            append-log DIR/facts.snap.log: `serve` sessions\n\
                            warm-start from the last checkpoint after a daemon\n\
                            restart; `corpus` imports the shared tier before\n\
                            the run and exports it after\n\
       --max-sessions N     reject `load`s past N concurrently loaded sessions\n\
                            (serve only; default 0 = unlimited)\n\
       --shared-budget B    byte budget for the process-wide shared fact tier\n\
                            (serve only; default unbounded)\n\
       --session-budget B   byte budget per session's (or corpus program's)\n\
                            private fact overlay (default unbounded)\n\
       --workers N          shared command-pool workers for `serve`, or corpus\n\
                            pool workers for `corpus` (0 = derive from\n\
                            SUIF_EXECUTOR_THREADS / core count)\n\
       --gen N              corpus: generate N seeded MiniF programs instead\n\
                            of (or in addition to) reading <dir|manifest>\n\
       --seed-base S        corpus: first seed of the generated range\n\
                            (default 0)\n\
       --max-program-bytes B corpus: reject larger sources with an `oversize`\n\
                            error record before parsing (default 1 MiB)\n\
       --report FILE        corpus: write the JSONL report stream to FILE\n\
                            instead of stdout (summary line last)\n\
       --inject-panic NAME  corpus: fault-injection hook — the named program\n\
                            panics inside the isolation boundary; the run\n\
                            must absorb it as one `panic` error record"
        .to_string()
}

/// `suif-explorer corpus <dir|manifest> [options]`: fleet-analyze a corpus
/// with per-program isolation, streaming JSONL reports (summary last).
/// Per-program failures are error records, not process failures: the exit
/// code is 0 whenever the run itself completes.
fn corpus(args: &[String]) -> Result<(), String> {
    let mut input: Option<String> = None;
    let mut gen = 0usize;
    let mut seed_base = 0u64;
    let mut workers = 0usize;
    let mut shared_budget: Option<usize> = None;
    let mut session_budget: Option<usize> = None;
    let mut max_program_bytes = 0usize;
    let mut report_path: Option<String> = None;
    let mut inject_panic: Option<String> = None;
    let mut persist_dir: Option<std::path::PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        let num = |flag: &str| -> Result<usize, String> {
            args.get(i + 1)
                .and_then(|s| s.parse().ok())
                .ok_or(format!("{flag} needs a number"))
        };
        match args[i].as_str() {
            "--gen" => {
                gen = num("--gen")?;
                i += 2;
            }
            "--seed-base" => {
                seed_base = num("--seed-base")? as u64;
                i += 2;
            }
            "--workers" => {
                workers = num("--workers")?;
                i += 2;
            }
            "--shared-budget" => {
                shared_budget = Some(num("--shared-budget")?);
                i += 2;
            }
            "--session-budget" => {
                session_budget = Some(num("--session-budget")?);
                i += 2;
            }
            "--max-program-bytes" => {
                max_program_bytes = num("--max-program-bytes")?;
                i += 2;
            }
            "--report" => {
                report_path = Some(args.get(i + 1).ok_or("--report needs a file")?.clone());
                i += 2;
            }
            "--inject-panic" => {
                inject_panic = Some(
                    args.get(i + 1)
                        .ok_or("--inject-panic needs a name")?
                        .clone(),
                );
                i += 2;
            }
            "--persist-dir" => {
                let dir = args.get(i + 1).ok_or("--persist-dir needs a directory")?;
                std::fs::create_dir_all(dir).map_err(|e| format!("--persist-dir {dir}: {e}"))?;
                persist_dir = Some(dir.into());
                i += 2;
            }
            other if !other.starts_with("--") && input.is_none() => {
                input = Some(other.to_string());
                i += 1;
            }
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    let mut entries = match &input {
        Some(path) => corpus_entries_from_path(std::path::Path::new(path))?,
        None => Vec::new(),
    };
    entries.extend(suif_server::generated_entries(gen, seed_base));
    if entries.is_empty() {
        return Err("corpus needs a <dir|manifest> or --gen N".to_string());
    }

    let tier = std::sync::Arc::new(suif_analysis::SharedFactTier::with_budget(shared_budget));
    let cache = std::sync::Arc::new(suif_analysis::SummaryCache::new());
    if let Some(dir) = &persist_dir {
        match suif_server::load_tier_snapshot(dir, &tier) {
            Ok(0) => {}
            Ok(n) => eprintln!("corpus: warm tier — {n} facts from {}", dir.display()),
            Err(e) => eprintln!("warning: snapshot {}: {e}; cold start", dir.display()),
        }
    }
    let opts = suif_server::CorpusOptions {
        workers,
        session_budget,
        max_program_bytes,
        inject_panic,
    };
    let mut out: Box<dyn std::io::Write> = match &report_path {
        Some(p) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(p).map_err(|e| format!("--report {p}: {e}"))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut write_err: Option<String> = None;
    let run = suif_server::run_corpus(entries, &opts, &tier, &cache, |r| {
        if write_err.is_none() {
            if let Err(e) = writeln!(out, "{}", r.to_json()) {
                write_err = Some(e.to_string());
            }
        }
    });
    if let Some(e) = write_err {
        return Err(format!("report stream: {e}"));
    }
    writeln!(out, "{}", run.summary.to_json(&tier)).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    if let Some(dir) = &persist_dir {
        let (facts, bytes) = suif_server::save_tier_snapshot(dir, &tier)
            .map_err(|e| format!("snapshot {}: write failed: {e}", dir.display()))?;
        eprintln!("corpus: persisted {facts} facts ({bytes} bytes) to {}", dir.display());
    }
    eprintln!(
        "corpus: {} programs, {} ok, {} errors, {:.1} programs/sec over {} workers",
        run.summary.programs,
        run.summary.ok,
        run.summary.errors,
        run.summary.programs_per_sec(),
        run.summary.workers,
    );
    Ok(())
}

/// Load corpus entries from a directory of `*.mf` files (sorted by file
/// name) or a plain-text manifest (one path per line, `#` comments;
/// relative paths resolve against the manifest's directory).
fn corpus_entries_from_path(
    path: &std::path::Path,
) -> Result<Vec<suif_server::CorpusEntry>, String> {
    let read_entry = |p: &std::path::Path| -> Result<suif_server::CorpusEntry, String> {
        let name = p
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string());
        let source = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        Ok(suif_server::CorpusEntry { name, source })
    };
    if path.is_dir() {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|d| d.ok().map(|d| d.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "mf"))
            .collect();
        files.sort();
        files.iter().map(|p| read_entry(p)).collect()
    } else {
        let base = path.parent().unwrap_or(std::path::Path::new("."));
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| {
                let p = std::path::Path::new(l);
                if p.is_absolute() {
                    read_entry(p)
                } else {
                    read_entry(&base.join(p))
                }
            })
            .collect()
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let mut threads = 0usize; // 0 = one scheduler worker per core
    let mut tcp: Option<String> = None;
    let mut speculate = 4usize;
    let mut persist_dir: Option<std::path::PathBuf> = None;
    let mut certify_seed = 0u64;
    let mut max_sessions = 0usize;
    let mut shared_budget: Option<usize> = None;
    let mut session_budget: Option<usize> = None;
    let mut workers = 0usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number")?;
                i += 2;
            }
            "--tcp" => {
                tcp = Some(args.get(i + 1).ok_or("--tcp needs an address")?.clone());
                i += 2;
            }
            "--speculate" => {
                speculate = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--speculate needs a number (0 disables)")?;
                i += 2;
            }
            "--persist-dir" => {
                let dir = args.get(i + 1).ok_or("--persist-dir needs a directory")?;
                std::fs::create_dir_all(dir).map_err(|e| format!("--persist-dir {dir}: {e}"))?;
                persist_dir = Some(dir.into());
                i += 2;
            }
            "--certify-seed" => {
                certify_seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--certify-seed needs a number")?;
                i += 2;
            }
            "--max-sessions" => {
                max_sessions = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-sessions needs a number (0 = unlimited)")?;
                i += 2;
            }
            "--shared-budget" => {
                shared_budget = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--shared-budget needs a byte count")?,
                );
                i += 2;
            }
            "--session-budget" => {
                session_budget = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--session-budget needs a byte count")?,
                );
                i += 2;
            }
            "--workers" => {
                workers = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--workers needs a number (0 = derive from threads)")?;
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    let options = suif_server::ServiceOptions {
        threads,
        speculate,
        persist_dir,
        certify_seed,
        max_sessions,
        shared_budget,
        session_budget,
        workers,
    };
    let res = match tcp {
        Some(addr) => suif_server::serve_tcp_with(&addr, options),
        None => suif_server::serve_stdio_with(options),
    };
    res.map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) == Some("serve") {
        return serve(args);
    }
    if args.first().map(String::as_str) == Some("corpus") {
        return corpus(args);
    }
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => return Err(usage()),
    };
    let source = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let program = suif_ir::parse_program(&source).map_err(|e| e.to_string())?;

    let mut assertions = Vec::new();
    let mut threads = 2usize;
    let mut input: Vec<f64> = Vec::new();
    let mut schedules = 4u32;
    let mut certify_seed = 0u64;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--assert" => {
                let spec = args.get(i + 1).ok_or("--assert needs LOOP:VAR")?;
                let (l, v) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("bad assertion `{spec}` (want LOOP:VAR)"))?;
                assertions.push(Assertion::Privatizable {
                    loop_name: l.to_string(),
                    var: v.to_string(),
                });
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs a number")?;
                i += 2;
            }
            "--input" => {
                input = args
                    .get(i + 1)
                    .ok_or("--input needs values")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad input `{s}`")))
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--schedules" => {
                schedules = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|s| *s > 0)
                    .ok_or("--schedules needs a positive number")?;
                i += 2;
            }
            "--certify-seed" => {
                certify_seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--certify-seed needs a number")?;
                i += 2;
            }
            other if !other.starts_with("--") => {
                // Positional argument (e.g. the loop name of `slice`);
                // consumed by the command branch below.
                i += 1;
            }
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }

    match cmd {
        "analyze" | "explore" => {
            let mut ex = Explorer::new(&program, input.clone()).map_err(|e| e.to_string())?;
            for a in assertions {
                let name = match &a {
                    Assertion::Privatizable { loop_name, var }
                    | Assertion::Independent { loop_name, var } => {
                        format!("{loop_name}:{var}")
                    }
                };
                match ex.assert_and_reanalyze(a) {
                    CheckResult::Consistent => println!("assertion {name}: accepted"),
                    CheckResult::Warning(w) => println!("assertion {name}: accepted — {w}"),
                    CheckResult::Contradicted(w) => {
                        println!("assertion {name}: REJECTED — {w}")
                    }
                }
            }
            let guru = ex.guru();
            println!("{}", guru.render());
            println!("loop verdicts:");
            for li in &ex.analysis.ctx.tree.loops {
                let v = &ex.analysis.verdicts[&li.stmt];
                print!(
                    "  {:<20} {}",
                    li.name,
                    if v.is_parallel() {
                        "PARALLEL"
                    } else {
                        "sequential"
                    }
                );
                if let suif_analysis::LoopVerdict::Sequential { deps, .. } = v {
                    let names: Vec<&str> = deps.iter().map(|d| d.name.as_str()).collect();
                    if !names.is_empty() {
                        print!("  deps: {}", names.join(", "));
                    }
                }
                println!();
            }
            println!(
                "\ndecomposition advisory:\n{}",
                suif_analysis::decomp::render_advisory(&ex.analysis)
            );
            Ok(())
        }
        "slice" => {
            let loop_name = args.get(2).ok_or("slice needs a loop name")?;
            let mut ex = Explorer::new(&program, input).map_err(|e| e.to_string())?;
            let li = ex
                .analysis
                .ctx
                .tree
                .loops
                .iter()
                .find(|l| &l.name == loop_name)
                .ok_or_else(|| format!("no loop `{loop_name}`"))?
                .clone();
            let slices = ex.slices_for_dep(li.stmt, 0);
            if slices.is_empty() {
                println!("no unresolved dependences in {loop_name}");
                return Ok(());
            }
            let mut lines = std::collections::BTreeSet::new();
            let mut terms = std::collections::BTreeSet::new();
            for (_, p, c) in &slices {
                lines.extend(p.lines.iter().copied());
                lines.extend(c.lines.iter().copied());
                for s in p.terminals.iter().chain(c.terminals.iter()) {
                    if let Some((stmt, _)) = program.find_stmt(*s) {
                        terms.insert(stmt.line());
                    }
                }
            }
            println!(
                "{}",
                suif_explorer::source_view(&ex, li.line, li.end_line, &lines, &terms)
            );
            Ok(())
        }
        "run" => {
            let config = suif_analysis::ParallelizeConfig {
                assertions,
                ..Default::default()
            };
            let pa = suif_analysis::Parallelizer::analyze(&program, config);
            let plans = ParallelPlans::from_analysis(&pa);
            let seq = measure_sequential(&program, input.clone()).map_err(|e| e.to_string())?;
            let (par, stats) = measure_parallel(
                &program,
                &plans,
                RuntimeConfig {
                    threads,
                    ..Default::default()
                },
                input,
            )
            .map_err(|e| e.to_string())?;
            for line in &par.output {
                println!("{line}");
            }
            eprintln!(
                "sequential {:?} ({} ops); parallel({threads}) {:?} (simulated {} ops, speedup {:.2}); \
                 {} parallel invocations, {} serial fallbacks",
                seq.elapsed,
                seq.ops,
                par.elapsed,
                par.ops,
                seq.ops as f64 / par.ops.max(1) as f64,
                stats.parallel_invocations.values().sum::<u64>(),
                stats.serial_fallbacks.values().sum::<u64>(),
            );
            if seq.output != par.output {
                eprintln!("note: outputs differ (floating-point reduction reassociation)");
            }
            Ok(())
        }
        "certify" => {
            let config = suif_analysis::ParallelizeConfig {
                assertions,
                ..Default::default()
            };
            let pa = suif_analysis::Parallelizer::analyze(&program, config);
            let plans = ParallelPlans::from_analysis(&pa);
            let seq = suif_parallel::capture_sequential(&program, &input);
            if let Some(e) = &seq.error {
                return Err(format!("sequential run failed: {}", e.message));
            }
            for info in pa.certify_inputs() {
                let plan = if info.parallel {
                    plans.loops.get(&info.stmt).cloned()
                } else {
                    suif_parallel::plan::minimal_plan(&program, info.stmt)
                };
                let Some(plan) = plan else {
                    println!("{:<20} unplannable", info.name);
                    continue;
                };
                let cert = suif_parallel::certify_loop(
                    &program,
                    info.stmt,
                    &plan,
                    &suif_parallel::CertifyOptions {
                        threads,
                        schedules,
                        seed: certify_seed,
                        input: input.clone(),
                    },
                );
                let verdict = if info.parallel {
                    "PARALLEL"
                } else {
                    "sequential"
                };
                if cert.race_free() {
                    println!(
                        "{:<20} {verdict:<10} race-free under {} schedules",
                        info.name,
                        cert.schedules_run()
                    );
                } else {
                    println!(
                        "{:<20} {verdict:<10} {} race(s); first:",
                        info.name,
                        cert.race_count()
                    );
                    for s in &cert.schedules {
                        if let Some(r) = s.outcome.races.first() {
                            println!("    seed {}: {r}", s.seed);
                            break;
                        }
                    }
                }
            }
            Ok(())
        }
        "codeview" => {
            let ex = Explorer::new(&program, input).map_err(|e| e.to_string())?;
            let guru = ex.guru();
            println!("{}", suif_explorer::codeview(&ex, &guru));
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}
