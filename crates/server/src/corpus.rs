//! Corpus mode: fan whole-program analyses across a worker pool with
//! per-program fault isolation.
//!
//! The interactive daemon analyzes one program per session; production
//! traffic arrives as "analyze these 10k files."  [`run_corpus`] is that
//! fleet driver: every corpus entry is analyzed as its own job on a
//! dedicated [`ExecutorService`], reading through (and publishing into) a
//! shared content-addressed fact tier, with a per-program [`FactStore`]
//! overlay so tier sharing and budgets apply exactly as they do to daemon
//! sessions.
//!
//! # Isolation guarantees
//!
//! A program that fails to parse, panics mid-analysis, or exceeds the size
//! cap produces an **error record** — never a crashed run, never a crashed
//! sibling:
//!
//! * the whole per-program pipeline (parse + analysis) runs under
//!   [`std::panic::catch_unwind`], so an analysis panic is caught at the
//!   job boundary (the worker loop itself does not catch panics — a panic
//!   escaping the job would permanently kill a pool worker);
//! * the fact store and tier use `parking_lot` mutexes, which do not
//!   poison, and the tier holds only *finished* facts (a job that dies
//!   mid-`Running` leaves nothing half-published for a sibling to read);
//! * the size cap (`max_program_bytes`) rejects pathological inputs
//!   *before* parse, bounding the worst-case cost any one entry can
//!   impose — Fourier–Motzkin blowups inside the analysis itself degrade
//!   to approximations by construction and are never fatal.
//!
//! # Determinism
//!
//! [`ProgramReport::deterministic_json`] is the report's schedule- and
//! sharing-independent core: name, status, and per-loop verdicts.  Facts
//! are pure functions of their content hash, so analyzing a program over a
//! tier warmed by 999 siblings must produce the bit-identical deterministic
//! core as analyzing it alone in a fresh store — the differential test pins
//! exactly this against [`analyze_single`].  Timings and reuse counters
//! live only in the full [`ProgramReport::to_json`] record.

use crate::json::Json;
use crate::session::{tier_json, SNAPSHOT_FILE, SNAPSHOT_LOG_FILE};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;
use suif_analysis::{
    snapshot, AnalyzeStats, ExecutorService, FactStore, LoopVerdict, ParallelizeConfig,
    Parallelizer, ScheduleOptions, SharedFactTier, SummaryCache,
};

/// Default per-program source-size cap (bytes).  Generous for any program
/// the analyzer meaningfully handles; small enough that one hostile entry
/// cannot monopolize a worker.
pub const DEFAULT_MAX_PROGRAM_BYTES: usize = 1 << 20;

/// One program of a corpus: a report name (file stem or manifest label) and
/// its MiniF source.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    pub name: String,
    pub source: String,
}

/// Everything that shapes a corpus run.
#[derive(Clone, Debug)]
pub struct CorpusOptions {
    /// Analysis workers for the run's dedicated pool (`0` = resolve from
    /// `SUIF_EXECUTOR_THREADS` / core count).  The pool is private to the
    /// run — a daemon `corpus` command executing *on* the shared command
    /// pool must not fan out into that same pool (two concurrent corpus
    /// commands could otherwise deadlock waiting for each other's workers).
    pub workers: usize,
    /// Per-program byte budget for the private fact overlay (`None` =
    /// unbounded).
    pub session_budget: Option<usize>,
    /// Reject programs whose source exceeds this many bytes with an
    /// `oversize` error record, before parsing (`0` = use
    /// [`DEFAULT_MAX_PROGRAM_BYTES`]).
    pub max_program_bytes: usize,
    /// Chaos hook for the fault-isolation tests: the named program panics
    /// inside the isolation boundary instead of analyzing.  The run must
    /// absorb it as one `panic` error record.
    pub inject_panic: Option<String>,
}

impl Default for CorpusOptions {
    fn default() -> CorpusOptions {
        CorpusOptions {
            workers: 0,
            session_budget: None,
            max_program_bytes: DEFAULT_MAX_PROGRAM_BYTES,
            inject_panic: None,
        }
    }
}

/// One loop's verdict inside a [`ProgramReport`] — the same shape the
/// daemon's `analyze` response uses.
#[derive(Clone, Debug, PartialEq)]
pub struct VerdictRecord {
    pub name: String,
    pub line: u32,
    pub parallel: bool,
    /// Blocking dependence objects (sequential loops only).
    pub deps: Vec<String>,
    /// Whether I/O serializes the loop (sequential loops only).
    pub io: bool,
}

impl VerdictRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("loop", Json::str(&self.name)),
            ("line", Json::int(self.line as i64)),
            ("parallel", Json::Bool(self.parallel)),
        ];
        if !self.parallel {
            fields.push(("deps", Json::Arr(self.deps.iter().map(Json::str).collect())));
            fields.push(("io", Json::Bool(self.io)));
        }
        Json::obj(fields)
    }
}

/// The per-program record of a corpus run.
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// Submission index (reports stream in completion order; collection
    /// restores index order).
    pub index: usize,
    pub name: String,
    /// `"ok"`, or the error kind: `"parse"`, `"panic"`, `"oversize"`.
    pub status: &'static str,
    /// The error message, for non-`ok` records.
    pub error: Option<String>,
    /// Per-loop verdicts, in source order (`ok` records only).
    pub verdicts: Vec<VerdictRecord>,
    /// Wall-clock seconds of this program's parse + analysis.
    pub secs: f64,
    /// Per-pass `(name, secs, invocations, reused, shared)` deltas.
    pub passes: Vec<(&'static str, f64, u64, u64, u64)>,
    /// Fact-store counters of this program's analysis.
    pub facts_computed: u64,
    pub facts_reused: u64,
    pub facts_shared: u64,
}

impl ProgramReport {
    fn error(index: usize, name: &str, status: &'static str, msg: String) -> ProgramReport {
        ProgramReport {
            index,
            name: name.to_string(),
            status,
            error: Some(msg),
            verdicts: Vec::new(),
            secs: 0.0,
            passes: Vec::new(),
            facts_computed: 0,
            facts_reused: 0,
            facts_shared: 0,
        }
    }

    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    pub fn parallel_loops(&self) -> usize {
        self.verdicts.iter().filter(|v| v.parallel).count()
    }

    /// The schedule- and sharing-independent core of the report: name,
    /// status, and verdicts.  Two runs of the same program — alone or over
    /// any warm tier — must serialize this bit-identically.
    pub fn deterministic_json(&self) -> Json {
        let mut fields = vec![
            ("program", Json::str(&self.name)),
            ("status", Json::str(self.status)),
        ];
        if let Some(e) = &self.error {
            fields.push(("error", Json::str(e)));
        }
        fields.push((
            "loops",
            Json::Arr(self.verdicts.iter().map(VerdictRecord::to_json).collect()),
        ));
        fields.push(("parallel", Json::int(self.parallel_loops() as i64)));
        fields.push((
            "sequential",
            Json::int((self.verdicts.len() - self.parallel_loops()) as i64),
        ));
        Json::obj(fields)
    }

    /// The full JSONL record: the deterministic core plus timings and
    /// tier/memo reuse counters.
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut m) = self.deterministic_json() else {
            unreachable!("deterministic_json builds an object");
        };
        m.insert("secs".into(), Json::Num(self.secs));
        let passes: Vec<(&'static str, Json)> = self
            .passes
            .iter()
            .map(|(name, secs, inv, reused, shared)| {
                (
                    *name,
                    Json::obj([
                        ("secs", Json::Num(*secs)),
                        ("invocations", Json::int(*inv as i64)),
                        ("reused", Json::int(*reused as i64)),
                        ("shared", Json::int(*shared as i64)),
                    ]),
                )
            })
            .collect();
        m.insert("passes".into(), Json::obj(passes));
        m.insert(
            "facts".into(),
            Json::obj([
                ("computed", Json::int(self.facts_computed as i64)),
                ("reused", Json::int(self.facts_reused as i64)),
                ("shared", Json::int(self.facts_shared as i64)),
            ]),
        );
        Json::Obj(m)
    }
}

/// Aggregate counters of a completed corpus run.
#[derive(Clone, Debug, Default)]
pub struct CorpusSummary {
    pub programs: usize,
    pub ok: usize,
    pub errors: usize,
    pub parse_errors: usize,
    pub panics: usize,
    pub oversize: usize,
    pub loops: usize,
    pub parallel_loops: usize,
    pub wall_secs: f64,
    pub workers: usize,
}

impl CorpusSummary {
    pub fn programs_per_sec(&self) -> f64 {
        self.programs as f64 / self.wall_secs.max(1e-9)
    }

    /// The summary JSONL line (tier counters attached by the caller who
    /// owns the tier).
    pub fn to_json(&self, tier: &SharedFactTier) -> Json {
        Json::obj([
            ("summary", Json::Bool(true)),
            ("programs", Json::int(self.programs as i64)),
            ("ok", Json::int(self.ok as i64)),
            ("errors", Json::int(self.errors as i64)),
            ("parse_errors", Json::int(self.parse_errors as i64)),
            ("panics", Json::int(self.panics as i64)),
            ("oversize", Json::int(self.oversize as i64)),
            ("loops", Json::int(self.loops as i64)),
            ("parallel_loops", Json::int(self.parallel_loops as i64)),
            ("wall_secs", Json::Num(self.wall_secs)),
            ("programs_per_sec", Json::Num(self.programs_per_sec())),
            ("workers", Json::int(self.workers as i64)),
            ("tier", tier_json(tier)),
        ])
    }
}

/// A completed corpus run: every report in submission-index order, plus
/// the aggregate summary.
pub struct CorpusRun {
    pub reports: Vec<ProgramReport>,
    pub summary: CorpusSummary,
}

/// Analyze one program inside the isolation boundary, against an
/// already-built fact store (a tier overlay for corpus jobs, a fresh
/// single-tenant store for [`analyze_single`]).
fn analyze_guarded(
    index: usize,
    name: &str,
    source: &str,
    store: &FactStore,
    cache: Option<&SummaryCache>,
    max_program_bytes: usize,
    inject_panic: bool,
) -> ProgramReport {
    let cap = if max_program_bytes == 0 {
        DEFAULT_MAX_PROGRAM_BYTES
    } else {
        max_program_bytes
    };
    if source.len() > cap {
        return ProgramReport::error(
            index,
            name,
            "oversize",
            format!("source is {} bytes (cap {cap})", source.len()),
        );
    }
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<_, String> {
        if inject_panic {
            panic!("injected corpus fault (--inject-panic)");
        }
        let program = suif_ir::parse_program(source).map_err(|e| e.to_string())?;
        // Sequential scheduling inside each program: the corpus pool is the
        // parallelism axis, and nested executors would oversubscribe.
        let (analysis, stats) = Parallelizer::analyze_in(
            &program,
            ParallelizeConfig::default(),
            &ScheduleOptions::sequential(),
            cache,
            store,
        );
        let verdicts = analysis
            .ctx
            .tree
            .loops
            .iter()
            .map(|li| {
                let v = &analysis.verdicts[&li.stmt];
                let (deps, io) = match v {
                    LoopVerdict::Sequential { deps, has_io, .. } => {
                        (deps.iter().map(|d| d.name.clone()).collect(), *has_io)
                    }
                    LoopVerdict::Parallel { .. } => (Vec::new(), false),
                };
                VerdictRecord {
                    name: li.name.clone(),
                    line: li.line,
                    parallel: v.is_parallel(),
                    deps,
                    io,
                }
            })
            .collect::<Vec<_>>();
        Ok((verdicts, stats))
    }));
    let secs = t0.elapsed().as_secs_f64();
    match result {
        Ok(Ok((verdicts, stats))) => ProgramReport {
            index,
            name: name.to_string(),
            status: "ok",
            error: None,
            verdicts,
            secs,
            passes: pass_deltas(&stats),
            facts_computed: stats.facts_computed,
            facts_reused: stats.facts_reused,
            facts_shared: stats.facts_shared,
        },
        Ok(Err(msg)) => ProgramReport::error(index, name, "parse", msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "analysis panicked".to_string());
            ProgramReport::error(index, name, "panic", msg)
        }
    }
}

fn pass_deltas(stats: &AnalyzeStats) -> Vec<(&'static str, f64, u64, u64, u64)> {
    stats
        .passes
        .iter()
        .map(|p| (p.pass.name(), p.secs, p.invocations, p.reused, p.shared))
        .collect()
}

/// Analyze one program alone, in a fresh single-tenant store with no tier
/// and no summary cache — the differential-test oracle for
/// [`ProgramReport::deterministic_json`].
pub fn analyze_single(name: &str, source: &str, max_program_bytes: usize) -> ProgramReport {
    let store = FactStore::new();
    analyze_guarded(0, name, source, &store, None, max_program_bytes, false)
}

/// Run a corpus: fan every entry across a dedicated worker pool, each with
/// a private overlay over `tier`, streaming reports to `on_report` in
/// completion order.  The returned [`CorpusRun`] holds the same reports in
/// submission-index order.
///
/// Per-program failures never fail the run: they stream (and collect) as
/// error records and count in `summary.errors`.
pub fn run_corpus(
    entries: Vec<CorpusEntry>,
    opts: &CorpusOptions,
    tier: &Arc<SharedFactTier>,
    cache: &Arc<SummaryCache>,
    mut on_report: impl FnMut(&ProgramReport),
) -> CorpusRun {
    let t0 = Instant::now();
    let pool = ExecutorService::new(opts.workers);
    let workers = pool.workers();
    let total = entries.len();
    let (tx, rx) = mpsc::channel::<ProgramReport>();
    for (index, entry) in entries.into_iter().enumerate() {
        let tx = tx.clone();
        let tier = tier.clone();
        let cache = cache.clone();
        let session_budget = opts.session_budget;
        let max_program_bytes = opts.max_program_bytes;
        let inject = opts.inject_panic.as_deref() == Some(entry.name.as_str());
        pool.submit(move || {
            let store = FactStore::with_shared(tier);
            store.set_budget(session_budget);
            // Owner ids are 1-based: 0 is the warm-start/anonymous owner.
            store.set_owner(index as u64 + 1);
            let report = analyze_guarded(
                index,
                &entry.name,
                &entry.source,
                &store,
                Some(&cache),
                max_program_bytes,
                inject,
            );
            // The run outlives every job; a send failure means the receiver
            // panicked, which the collection loop below would surface.
            let _ = tx.send(report);
        });
    }
    drop(tx);

    let mut slots: Vec<Option<ProgramReport>> = (0..total).map(|_| None).collect();
    for report in rx {
        on_report(&report);
        let slot = report.index;
        slots[slot] = Some(report);
    }
    let reports: Vec<ProgramReport> = slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("corpus job {i} vanished without a report")))
        .collect();

    let mut summary = CorpusSummary {
        programs: total,
        workers,
        wall_secs: t0.elapsed().as_secs_f64(),
        ..CorpusSummary::default()
    };
    for r in &reports {
        match r.status {
            "ok" => summary.ok += 1,
            "parse" => summary.parse_errors += 1,
            "panic" => summary.panics += 1,
            "oversize" => summary.oversize += 1,
            _ => {}
        }
        if !r.is_ok() {
            summary.errors += 1;
        }
        summary.loops += r.verdicts.len();
        summary.parallel_loops += r.parallel_loops();
    }
    CorpusRun { reports, summary }
}

/// Warm a corpus run's shared tier from the snapshot in `dir` (base image
/// plus append-log, the same layout daemon sessions maintain), returning
/// the number of facts imported.  The tier is content-addressed by
/// `(pass, input-hash)`, so no expected-hash validation applies here: a
/// persisted fact no current program demands is simply never read.  A
/// missing snapshot is a cold start (`Ok(0)`); a corrupt base is an error
/// the caller may downgrade to a cold start.
pub fn load_tier_snapshot(dir: &Path, tier: &SharedFactTier) -> io::Result<usize> {
    let base = match std::fs::read(dir.join(SNAPSHOT_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let log = std::fs::read(dir.join(SNAPSHOT_LOG_FILE)).ok();
    let img = snapshot::merge_image(&base, log.as_deref())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let n = tier.import(&img.facts);
    suif_poly::import_prove_empty_memo(&img.prove_empty);
    Ok(n)
}

/// Persist the shared tier (and emptiness memo) into `dir` as a fresh base
/// image with an empty bound log — the corpus-mode counterpart of a
/// session compaction.  Returns `(facts, bytes)` written.
pub fn save_tier_snapshot(dir: &Path, tier: &SharedFactTier) -> io::Result<(usize, usize)> {
    let snap = snapshot::Snapshot::new(tier.export(), suif_poly::export_prove_empty_memo());
    let bytes = snap.encode();
    snapshot::write_atomic(&dir.join(SNAPSHOT_FILE), &bytes)?;
    let checksum = snapshot::file_checksum(&bytes).expect("encoded snapshot has a header");
    snapshot::write_atomic(&dir.join(SNAPSHOT_LOG_FILE), &snapshot::log_header(checksum))?;
    Ok((snap.facts.len(), bytes.len()))
}

/// Materialize `count` generated corpus entries from `seed_base` — the
/// in-process equivalent of `scripts/gen_corpus` for the daemon's `corpus`
/// command and the benchmarks.
pub fn generated_entries(count: usize, seed_base: u64) -> Vec<CorpusEntry> {
    (0..count as u64)
        .map(|i| {
            let seed = seed_base + i;
            CorpusEntry {
                name: minif_gen::name_for_seed(seed),
                source: minif_gen::source_for_seed(seed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier_and_cache() -> (Arc<SharedFactTier>, Arc<SummaryCache>) {
        (
            Arc::new(SharedFactTier::new()),
            Arc::new(SummaryCache::new()),
        )
    }

    #[test]
    fn corpus_run_reports_in_index_order_and_counts() {
        let entries = generated_entries(12, 0);
        let (tier, cache) = tier_and_cache();
        let mut streamed = 0usize;
        let run = run_corpus(entries, &CorpusOptions::default(), &tier, &cache, |_| {
            streamed += 1
        });
        assert_eq!(streamed, 12, "every report streams exactly once");
        assert_eq!(run.reports.len(), 12);
        for (i, r) in run.reports.iter().enumerate() {
            assert_eq!(r.index, i, "collected reports restore index order");
            assert_eq!(r.status, "ok", "{}: {:?}", r.name, r.error);
            assert!(!r.verdicts.is_empty(), "{} found loops", r.name);
        }
        assert_eq!(run.summary.programs, 12);
        assert_eq!(run.summary.ok, 12);
        assert_eq!(run.summary.errors, 0);
        assert!(run.summary.loops >= 12);
        assert!(run.summary.programs_per_sec() > 0.0);
        let s = tier.stats();
        assert!(s.inserts > 0, "corpus publishes into the tier");
    }

    #[test]
    fn faults_become_error_records_not_crashes() {
        let mut entries = generated_entries(6, 100);
        entries.push(CorpusEntry {
            name: "bad-parse".into(),
            source: "program p\nthis is not minif".into(),
        });
        entries.push(CorpusEntry {
            name: "too-big".into(),
            source: "x".repeat(32 * 1024),
        });
        let (tier, cache) = tier_and_cache();
        let opts = CorpusOptions {
            inject_panic: Some(minif_gen::name_for_seed(102)),
            // Above every generated program, below the hostile entry.
            max_program_bytes: 16 * 1024,
            ..CorpusOptions::default()
        };
        let run = run_corpus(entries, &opts, &tier, &cache, |_| {});
        assert_eq!(run.summary.programs, 8);
        assert_eq!(run.summary.ok, 5, "siblings all complete");
        assert_eq!(run.summary.errors, 3);
        assert_eq!(run.summary.parse_errors, 1);
        assert_eq!(run.summary.panics, 1);
        assert_eq!(run.summary.oversize, 1);
        let panic_rec = run
            .reports
            .iter()
            .find(|r| r.status == "panic")
            .expect("panic record present");
        assert!(panic_rec.error.as_deref().unwrap().contains("injected"));
    }

    #[test]
    fn tier_snapshot_round_trip_warms_a_second_run() {
        let entries = generated_entries(4, 40);
        let (tier, cache) = tier_and_cache();
        let cold = run_corpus(
            entries.clone(),
            &CorpusOptions::default(),
            &tier,
            &cache,
            |_| {},
        );
        let dir = std::env::temp_dir().join(format!("suif_corpus_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (saved, bytes) = save_tier_snapshot(&dir, &tier).unwrap();
        assert!(saved > 0 && bytes > 0, "cold run persisted facts");

        let (tier2, cache2) = tier_and_cache();
        let imported = load_tier_snapshot(&dir, &tier2).unwrap();
        assert_eq!(imported, saved, "every persisted fact imports");
        let warm = run_corpus(entries, &CorpusOptions::default(), &tier2, &cache2, |_| {});
        for (c, w) in cold.reports.iter().zip(&warm.reports) {
            assert_eq!(
                c.deterministic_json().to_string(),
                w.deterministic_json().to_string(),
                "warm tier must not change {}",
                c.name
            );
        }
        let shared: u64 = warm.reports.iter().map(|r| r.facts_shared).sum();
        assert!(shared > 0, "warm run reads persisted facts from the tier");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deterministic_core_matches_isolated_analysis() {
        let entries = generated_entries(8, 7);
        let singles: Vec<Json> = entries
            .iter()
            .map(|e| analyze_single(&e.name, &e.source, 0).deterministic_json())
            .collect();
        let (tier, cache) = tier_and_cache();
        let run = run_corpus(entries, &CorpusOptions::default(), &tier, &cache, |_| {});
        for (r, single) in run.reports.iter().zip(&singles) {
            assert_eq!(
                r.deterministic_json().to_string(),
                single.to_string(),
                "tier sharing must not change {}",
                r.name
            );
        }
    }
}
