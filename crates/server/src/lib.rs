//! suif-server: a persistent analysis daemon for the SUIF Explorer
//! reproduction.
//!
//! The paper's Explorer is interactive — the user asks the Guru for targets,
//! slices a dependence, asserts a fact, and re-checks — so the analysis must
//! be resident: parse once, analyze once, then answer queries and re-analyze
//! only what an edit dirtied. This crate provides that long-lived session
//! behind the `suif-explorer serve` subcommand, speaking line-delimited JSON
//! over stdio or TCP.

//! Over TCP the daemon is multi-tenant and **evented**: a single reactor
//! thread (see [`reactor`]) multiplexes every connection over nonblocking
//! sockets — epoll on Linux, `poll(2)` elsewhere — while command execution
//! is offloaded to a shared worker pool and completions return through a
//! wakeup pipe.  All sessions share a process-wide content-addressed fact
//! tier and summary cache (see [`daemon::ServiceState`]), with per-session
//! and shared byte budgets, admission control, and per-connection bounded
//! write queues for backpressure.  Clients may pipeline: many request
//! lines per write, a `batch` command with ordered per-id replies, or both.

pub mod corpus;
pub mod daemon;
pub mod json;
pub mod proto;
pub mod reactor;
pub mod session;

pub use corpus::{
    analyze_single, generated_entries, load_tier_snapshot, run_corpus, save_tier_snapshot,
    CorpusEntry, CorpusOptions, CorpusRun, CorpusSummary, ProgramReport, VerdictRecord,
    DEFAULT_MAX_PROGRAM_BYTES,
};
pub use daemon::{
    serve_listener, serve_stdio, serve_stdio_with, serve_tcp, serve_tcp_with, Daemon,
    ServiceOptions, ServiceState,
};
pub use proto::{Frame, FrameDecoder, MAX_LINE_BYTES};
pub use reactor::{Interest, Poller, WakePipe};
pub use session::{
    speculation_order, Session, SessionConfig, SnapshotReport, COMPACT_MIN_LOG_BYTES,
    SNAPSHOT_FILE, SNAPSHOT_LOG_FILE,
};
