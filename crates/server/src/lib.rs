//! suif-server: a persistent analysis daemon for the SUIF Explorer
//! reproduction.
//!
//! The paper's Explorer is interactive — the user asks the Guru for targets,
//! slices a dependence, asserts a fact, and re-checks — so the analysis must
//! be resident: parse once, analyze once, then answer queries and re-analyze
//! only what an edit dirtied. This crate provides that long-lived session
//! behind the `suif-explorer serve` subcommand, speaking line-delimited JSON
//! over stdio or TCP.

//! Over TCP the daemon is multi-tenant: one serving thread per connection,
//! all of them sharing a process-wide content-addressed fact tier and
//! summary cache (see [`daemon::ServiceState`]), with per-session and
//! shared byte budgets and admission control.

pub mod daemon;
pub mod json;
pub mod proto;
pub mod session;

pub use daemon::{
    serve_listener, serve_stdio, serve_stdio_with, serve_tcp, serve_tcp_with, Daemon,
    ServiceOptions, ServiceState,
};
pub use session::{speculation_order, Session, SessionConfig, SnapshotReport, SNAPSHOT_FILE};
