//! suif-server: a persistent analysis daemon for the SUIF Explorer
//! reproduction.
//!
//! The paper's Explorer is interactive — the user asks the Guru for targets,
//! slices a dependence, asserts a fact, and re-checks — so the analysis must
//! be resident: parse once, analyze once, then answer queries and re-analyze
//! only what an edit dirtied. This crate provides that long-lived session
//! behind the `suif-explorer serve` subcommand, speaking line-delimited JSON
//! over stdio or TCP.

pub mod daemon;
pub mod json;
pub mod proto;
pub mod session;

pub use daemon::{serve_stdio, serve_tcp, Daemon};
pub use session::{speculation_order, Session, SnapshotReport, SNAPSHOT_FILE};
