//! Minimal JSON tree, parser, and serializer for the wire protocol.
//!
//! The build environment has no registry access, so instead of serde the
//! daemon uses this small hand-rolled implementation. It supports the full
//! JSON grammar except that numbers are kept as `f64` (integral values are
//! serialized without a fractional part) and object keys keep first-wins
//! semantics on duplicates.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Integer constructor (stored as `f64`, serialized without fraction).
    pub fn int(n: impl Into<i64>) -> Json {
        Json::Num(n.into() as f64)
    }

    /// Look up a field of an object; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a complete JSON document from `text`.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.entry(key).or_insert(val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not recombined; the
                            // protocol never emits them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar at once.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let src = r#"{"cmd":"load","text":"do i = 1, n\n  a[i] = 0\nend do","n":3,"f":1.5,"ok":true,"xs":[1,2,null]}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("load"));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        let reparsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn escapes_and_errors() {
        let v = Json::parse(r#""a\"b\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\nA"));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
    }
}
