//! The daemon loop: line-delimited JSON requests over stdio or TCP.
//!
//! One daemon holds at most one [`Session`] plus the cross-reload
//! [`SummaryCache`].  The cache outlives sessions: a `load` after a `quit`
//! or reconnect still reuses every summary whose content key matches.

use crate::json::Json;
use crate::proto::{err_response, ok_response, Request};
use crate::session::Session;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;
use suif_analysis::{ScheduleOptions, SummaryCache};

/// A persistent analysis daemon.
pub struct Daemon {
    opts: ScheduleOptions,
    cache: Arc<SummaryCache>,
    session: Option<Session>,
    speculate: usize,
    /// Fact-snapshot directory; sessions warm-start from (and checkpoint
    /// to) `<dir>/facts.snap` when set.
    persist_dir: Option<PathBuf>,
    /// Default base seed for `certify` requests that don't carry one
    /// (`--certify-seed`); schedule `s` of a request runs under `seed + s`.
    certify_seed: u64,
}

impl Daemon {
    /// A daemon with `threads` scheduler workers (`0` = one per core),
    /// speculative pre-classification off, and no persistence.
    pub fn new(threads: usize) -> Daemon {
        Daemon::with_speculation(threads, 0)
    }

    /// [`Daemon::new`] plus a speculation budget: after each `guru`
    /// response, the facts of up to `speculate` top-ranked loops are
    /// demanded on a background thread.
    pub fn with_speculation(threads: usize, speculate: usize) -> Daemon {
        Daemon::with_options(threads, speculate, None)
    }

    /// [`Daemon::with_speculation`] plus an optional persist directory for
    /// durable fact snapshots (crash-safe warm starts across daemon
    /// restarts).
    pub fn with_options(threads: usize, speculate: usize, persist_dir: Option<PathBuf>) -> Daemon {
        Daemon {
            opts: ScheduleOptions { threads },
            cache: Arc::new(SummaryCache::new()),
            session: None,
            speculate,
            persist_dir,
            certify_seed: 0,
        }
    }

    /// Set the default base seed used by `certify` requests without an
    /// explicit `seed` field (the `--certify-seed` CLI flag).
    pub fn set_certify_seed(&mut self, seed: u64) {
        self.certify_seed = seed;
    }

    /// Open a session for `text` under this daemon's options.
    fn open_session(&self, text: &str) -> Result<Session, String> {
        Session::open_with_persistence(
            text,
            self.opts.clone(),
            self.cache.clone(),
            self.speculate,
            self.persist_dir.as_deref(),
        )
    }

    fn with_session<R>(&mut self, f: impl FnOnce(&mut Session) -> R) -> Result<R, String> {
        match self.session.as_mut() {
            Some(s) => Ok(f(s)),
            None => Err("no program loaded (send {\"cmd\":\"load\",\"text\":…} first)".into()),
        }
    }

    /// Handle one request line; returns the response and whether to close.
    pub fn handle_line(&mut self, line: &str) -> (Json, bool) {
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => return (err_response(&e.0), false),
        };
        let result: Result<Json, String> = match req {
            Request::Load { text } => self.open_session(&text).map(|s| {
                let stats = s.stats_json();
                self.session = Some(s);
                stats
            }),
            Request::Reload { text } => match self.session.as_mut() {
                // A reload without a session is just a load.
                None => self.open_session(&text).map(|s| {
                    let stats = s.stats_json();
                    self.session = Some(s);
                    stats
                }),
                Some(s) => s.reload(&text).map(|()| s.stats_json()),
            },
            Request::Analyze => self.with_session(|s| s.analyze()),
            Request::Guru => self.with_session(|s| s.guru_json()),
            Request::Slice { loop_name } => self
                .with_session(|s| s.slice_json(&loop_name))
                .and_then(|r| r),
            Request::Assert {
                loop_name,
                var,
                independent,
            } => self.with_session(|s| s.assert_json(&loop_name, &var, independent)),
            Request::Certify {
                loop_name,
                schedules,
                seed,
            } => {
                let seed = seed.unwrap_or(self.certify_seed);
                self.with_session(|s| {
                    s.certify_json(loop_name.as_deref(), schedules.unwrap_or(4), seed)
                })
                .and_then(|r| r)
            }
            Request::Advisory => self.with_session(|s| s.advisory_json()),
            Request::Codeview => self.with_session(|s| s.codeview_json()),
            Request::Stats => self.with_session(|s| s.stats_json()),
            Request::Checkpoint => self.with_session(|s| s.checkpoint_json()).and_then(|r| r),
            Request::Quit => return (ok_response(Json::obj([])), true),
        };
        match result {
            Ok(payload) => (ok_response(payload), false),
            Err(msg) => (err_response(&msg), false),
        }
    }

    /// Serve one connection: read request lines from `input`, write one
    /// response line each to `output`, until `quit` or EOF.
    pub fn serve(&mut self, input: impl BufRead, output: &mut impl Write) -> io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (resp, quit) = self.handle_line(&line);
            writeln!(output, "{resp}")?;
            output.flush()?;
            if quit {
                break;
            }
        }
        Ok(())
    }
}

/// Serve on stdin/stdout until `quit` or EOF.  `certify_seed` is the
/// default base seed for `certify` requests without one (`--certify-seed`).
pub fn serve_stdio(
    threads: usize,
    speculate: usize,
    persist_dir: Option<PathBuf>,
    certify_seed: u64,
) -> io::Result<()> {
    let mut daemon = Daemon::with_options(threads, speculate, persist_dir);
    daemon.set_certify_seed(certify_seed);
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    daemon.serve(stdin.lock(), &mut stdout)
}

/// Serve on a TCP listener, one connection at a time.  The daemon — and
/// with it the summary cache and loaded session — persists across
/// connections.  Prints `listening on <addr>` to stdout once bound (bind to
/// port 0 to let the OS pick).
pub fn serve_tcp(
    addr: &str,
    threads: usize,
    speculate: usize,
    persist_dir: Option<PathBuf>,
    certify_seed: u64,
) -> io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    println!("listening on {}", listener.local_addr()?);
    io::stdout().flush()?;
    let mut daemon = Daemon::with_options(threads, speculate, persist_dir);
    daemon.set_certify_seed(certify_seed);
    for conn in listener.incoming() {
        let conn = conn?;
        let reader = io::BufReader::new(conn.try_clone()?);
        let mut writer = conn;
        if daemon.serve(reader, &mut writer).is_err() {
            // A dropped connection must not kill the daemon.
            continue;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    const SRC: &str = "program t\\nproc main() {\\n real a[10]\\n int i\\n do 1 i = 1, 10 {\\n  a[i] = i\\n }\\n print a[5]\\n}";

    fn req(daemon: &mut Daemon, line: &str) -> Json {
        let (resp, _) = daemon.handle_line(line);
        resp
    }

    #[test]
    fn daemon_round_trip() {
        let mut d = Daemon::new(1);
        // Queries before load fail cleanly.
        let r = req(&mut d, r#"{"cmd":"analyze"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));

        let r = req(&mut d, &format!(r#"{{"cmd":"load","text":"{SRC}"}}"#));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("summarized").and_then(Json::as_i64), Some(1));

        let r = req(&mut d, r#"{"cmd":"analyze"}"#);
        let loops = r.get("loops").and_then(Json::as_arr).unwrap();
        assert_eq!(loops[0].get("parallel").and_then(Json::as_bool), Some(true));

        // Warm re-analysis: every fact reused, the scheduler never ran.
        let r = req(&mut d, r#"{"cmd":"stats"}"#);
        assert_eq!(r.get("summarized").and_then(Json::as_i64), Some(0));
        assert_eq!(r.get("cache_hits").and_then(Json::as_i64), Some(0));
        let facts = r.get("facts").unwrap();
        assert_eq!(facts.get("computed").and_then(Json::as_i64), Some(0));
        assert!(facts.get("reused").and_then(Json::as_i64).unwrap() > 0);

        // Assertions and advisories answer over the wire.
        let r = req(
            &mut d,
            r#"{"cmd":"assert","loop":"main/1","var":"a","kind":"independent"}"#,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert!(r.get("assertion").and_then(Json::as_str).is_some());
        let r = req(&mut d, r#"{"cmd":"advisory"}"#);
        assert!(r.get("contractions").and_then(Json::as_arr).is_some());

        // Certification over the wire: a DOALL certifies race-free, the
        // single-loop report is mirrored at the top level, and the staged
        // polyhedral counters ride along (with the run counted in stats).
        let r = req(
            &mut d,
            r#"{"cmd":"certify","loop":"main/1","schedules":2,"seed":7}"#,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("loop").and_then(Json::as_str), Some("main/1"));
        assert_eq!(r.get("schedules_run").and_then(Json::as_i64), Some(2));
        assert_eq!(
            r.get("races").and_then(Json::as_arr).map(|a| a.len()),
            Some(0)
        );
        let entry = &r.get("loops").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(entry.get("race_free").and_then(Json::as_bool), Some(true));
        assert!(entry.get("iterations").and_then(Json::as_i64).unwrap() >= 10);
        assert!(r.get("poly").unwrap().get("approximations").is_some());
        let r = req(&mut d, r#"{"cmd":"certify","loop":"nope"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let r = req(&mut d, r#"{"cmd":"stats"}"#);
        let cert = r.get("certification").unwrap();
        assert_eq!(cert.get("loops_certified").and_then(Json::as_i64), Some(1));
        assert_eq!(cert.get("schedules_run").and_then(Json::as_i64), Some(2));
        assert_eq!(cert.get("races_found").and_then(Json::as_i64), Some(0));

        // A checkpoint without --persist-dir is a clean protocol error.
        let r = req(&mut d, r#"{"cmd":"checkpoint"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert!(r
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("persist-dir"));

        // Parse errors and unknown commands answer, not crash.
        let r = req(&mut d, "garbage");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let (_, quit) = d.handle_line(r#"{"cmd":"quit"}"#);
        assert!(quit);
    }

    #[test]
    fn serve_loop_over_buffers() {
        let mut d = Daemon::new(1);
        let input = format!(
            "{}\n{}\n{}\n",
            format_args!(r#"{{"cmd":"load","text":"{SRC}"}}"#),
            r#"{"cmd":"guru"}"#,
            r#"{"cmd":"quit"}"#
        );
        let mut out = Vec::new();
        d.serve(io::BufReader::new(input.as_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            let v = Json::parse(l).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{l}");
        }
    }
}
