//! The daemon loop: line-delimited JSON requests over stdio or TCP.
//!
//! A daemon process hosts one [`ServiceState`] — the cross-session summary
//! cache, the process-wide content-addressed fact tier, the shared command
//! worker pool, and the admission counters — and any number of concurrent
//! [`Daemon`] instances, one per connection.  Each connection holds at most
//! one [`Session`]; sessions are thin overlays over the shared tier, so the
//! second tenant to load a program the first already analyzed recomputes
//! nothing.  The tier and cache outlive sessions: a `load` after a `quit`
//! or reconnect still reuses every fact whose content hash matches.
//!
//! # The evented transport
//!
//! Over TCP the daemon is a **reactor**: one event thread multiplexes every
//! connection over nonblocking sockets through [`crate::reactor::Poller`]
//! (epoll on Linux, `poll(2)` elsewhere).  The reactor only moves bytes —
//! it reads chunks into each connection's [`FrameDecoder`], flushes each
//! connection's bounded write queue, and never parses or executes a
//! command itself.  Complete frames are handed to the shared
//! [`ExecutorService`] worker pool: the connection's [`Daemon`] value moves
//! into the job, executes the queued frames in order, and comes back
//! through a completion queue plus a [`crate::reactor::WakePipe`] ring —
//! which is what lets the event thread block indefinitely (no read
//! timeouts, no polling) without missing work finished elsewhere.
//!
//! Per-connection ordering is strict: at most one job per connection is in
//! flight, and a job executes its frames sequentially, so responses are
//! written in request order even when the client pipelines many lines (or
//! a `batch` request) in one write.  Cross-connection progress is the
//! worker pool's: a long `analyze` on one session occupies one worker
//! while another session's `stats` answers on a second — the reactor
//! thread itself is never blocked by either.
//!
//! Backpressure is per-connection: a client that stops reading fills its
//! bounded write queue, which pauses *its* reads (and frame dispatch)
//! until the queue drains — without stalling anyone else.  A dropped
//! connection detaches its session; `shutdown` checkpoints the shared
//! tier, closes the listener, finishes already-queued commands, flushes,
//! and drains both the reactor and the workers.

use crate::json::Json;
use crate::proto::{
    err_response, ok_response, request_id, Frame, FrameDecoder, Request, MAX_LINE_BYTES,
};
use crate::reactor::{Event, Interest, Poller, WakePipe};
use crate::session::{Session, SessionConfig, SNAPSHOT_FILE, SNAPSHOT_LOG_FILE};
use std::collections::VecDeque;
use std::io::{self, BufRead, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use suif_analysis::{snapshot, ExecutorService, ScheduleOptions, SharedFactTier, SummaryCache};

/// Everything that shapes a daemon service, across all its sessions.
#[derive(Clone, Debug, Default)]
pub struct ServiceOptions {
    /// Scheduler workers per analysis executor (`0` = one per core).
    pub threads: usize,
    /// Speculation budget: top-ranked loops pre-classified after each
    /// `guru` (0 = off).
    pub speculate: usize,
    /// Fact-snapshot directory; the shared tier warm-starts from (and
    /// checkpoints to) `<dir>/facts.snap` when set.
    pub persist_dir: Option<PathBuf>,
    /// Default base seed for `certify` requests that don't carry one.
    pub certify_seed: u64,
    /// Max concurrently loaded sessions; further `load`s are rejected at
    /// admission (0 = unlimited).
    pub max_sessions: usize,
    /// Byte budget for the process-wide shared fact tier (`None` =
    /// unbounded).
    pub shared_budget: Option<usize>,
    /// Byte budget for each session's private fact overlay (`None` =
    /// unbounded).
    pub session_budget: Option<usize>,
    /// Shared command-pool workers (`--workers`; `0` = derive from
    /// `threads`, i.e. the pre-existing behavior: resolve against
    /// `SUIF_EXECUTOR_THREADS` and the core count).  This sizes the pool
    /// that executes connection jobs — independent of `threads`, which
    /// sizes each analysis' scheduler executors.
    pub workers: usize,
}

/// Process-wide state shared by every connection of a daemon: the summary
/// cache, the content-addressed fact tier, and the session registry.
pub struct ServiceState {
    opts: ScheduleOptions,
    cache: Arc<SummaryCache>,
    tier: Arc<SharedFactTier>,
    speculate: usize,
    persist_dir: Option<PathBuf>,
    certify_seed: u64,
    session_budget: Option<usize>,
    max_sessions: usize,
    /// Currently loaded sessions (admission-controlled).
    active_sessions: AtomicUsize,
    /// Fresh sessions admitted over the service lifetime.
    admitted: AtomicU64,
    /// `load`s rejected at admission over the service lifetime.
    rejected: AtomicU64,
    /// Monotone session-id source; every connection gets one.
    next_session_id: AtomicU64,
    /// Set by `shutdown`; the reactor drains and exits once it is up.
    shutdown: AtomicBool,
    /// Shared command workers: connection jobs execute here so the reactor
    /// thread never blocks on analysis.
    workers: ExecutorService,
    /// Reactor transport counters (see [`ReactorStats`]).
    reactor: ReactorStats,
}

/// Transport counters of the evented reactor, reported under
/// `stats.service.reactor`.
#[derive(Default)]
struct ReactorStats {
    /// Readiness backend in use (`"epoll"`, `"poll"`, `"emulate"`); unset
    /// until a reactor starts (stdio-only daemons never set it).
    backend: OnceLock<&'static str>,
    /// Connections currently registered with the reactor.
    connections: AtomicUsize,
    /// High-water mark of concurrently registered connections.
    peak_connections: AtomicUsize,
    /// Connections accepted over the service lifetime.
    accepted: AtomicU64,
    /// `Poller::wait` returns (event-loop iterations).
    polls: AtomicU64,
    /// Wake-pipe rings observed (worker completions signalled).
    wakeups: AtomicU64,
    /// Frame batches offloaded to the worker pool.
    offloaded: AtomicU64,
    /// Oversize request lines rejected (length-capped framing).
    oversize: AtomicU64,
}

impl ServiceState {
    /// Build the shared state of a new service.
    pub fn new(options: ServiceOptions) -> Arc<ServiceState> {
        Arc::new(ServiceState {
            opts: ScheduleOptions {
                threads: options.threads,
            },
            cache: Arc::new(SummaryCache::new()),
            tier: Arc::new(SharedFactTier::with_budget(options.shared_budget)),
            speculate: options.speculate,
            persist_dir: options.persist_dir,
            certify_seed: options.certify_seed,
            session_budget: options.session_budget,
            max_sessions: options.max_sessions,
            active_sessions: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            next_session_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            workers: ExecutorService::new(if options.workers > 0 {
                options.workers
            } else {
                options.threads
            }),
            reactor: ReactorStats::default(),
        })
    }

    /// The process-wide content-addressed fact tier.
    pub fn tier(&self) -> &Arc<SharedFactTier> {
        &self.tier
    }

    /// Whether a `shutdown` request has been received.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Write the shared tier (and emptiness memo) to the persist path,
    /// atomically, and reset the append-log to a header bound to the new
    /// base so session checkpoints keep appending against it.  Returns
    /// `(facts, bytes)` written, or `None` without persistence.
    pub fn checkpoint(&self) -> io::Result<Option<(usize, usize)>> {
        let Some(dir) = &self.persist_dir else {
            return Ok(None);
        };
        let path = dir.join(SNAPSHOT_FILE);
        let snap =
            snapshot::Snapshot::new(self.tier.export(), suif_poly::export_prove_empty_memo());
        let bytes = snap.encode();
        snapshot::write_atomic(&path, &bytes)?;
        let checksum = snapshot::file_checksum(&bytes).expect("encoded snapshot has a header");
        snapshot::write_atomic(&dir.join(SNAPSHOT_LOG_FILE), &snapshot::log_header(checksum))?;
        Ok(Some((snap.facts.len(), bytes.len())))
    }

    /// Reserve a session slot, or fail when the registry is full.
    fn try_admit(&self) -> bool {
        if self.max_sessions == 0 {
            self.active_sessions.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        loop {
            let cur = self.active_sessions.load(Ordering::SeqCst);
            if cur >= self.max_sessions {
                return false;
            }
            if self
                .active_sessions
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Release a previously reserved session slot.
    fn release_session(&self) {
        self.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }

    /// The `service` object merged into `stats` responses.
    fn service_json(&self) -> Json {
        let r = &self.reactor;
        Json::obj([
            (
                "sessions",
                Json::int(self.active_sessions.load(Ordering::SeqCst) as i64),
            ),
            (
                "admitted",
                Json::int(self.admitted.load(Ordering::SeqCst) as i64),
            ),
            (
                "rejected",
                Json::int(self.rejected.load(Ordering::SeqCst) as i64),
            ),
            ("max_sessions", Json::int(self.max_sessions as i64)),
            (
                "reactor",
                Json::obj([
                    (
                        "backend",
                        Json::str(*r.backend.get().unwrap_or(&"inactive")),
                    ),
                    (
                        "connections",
                        Json::int(r.connections.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "peak_connections",
                        Json::int(r.peak_connections.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "accepted",
                        Json::int(r.accepted.load(Ordering::Relaxed) as i64),
                    ),
                    ("polls", Json::int(r.polls.load(Ordering::Relaxed) as i64)),
                    (
                        "wakeups",
                        Json::int(r.wakeups.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "offloaded",
                        Json::int(r.offloaded.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "oversize",
                        Json::int(r.oversize.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "workers",
                Json::obj([
                    ("count", Json::int(self.workers.workers() as i64)),
                    ("submitted", Json::int(self.workers.submitted() as i64)),
                    ("completed", Json::int(self.workers.completed() as i64)),
                    ("pending", Json::int(self.workers.pending() as i64)),
                ]),
            ),
        ])
    }
}

/// One connection's view of the service: a session slot plus the shared
/// [`ServiceState`].
pub struct Daemon {
    state: Arc<ServiceState>,
    /// This connection's registry id, echoed in every response.
    session_id: u64,
    session: Option<Session>,
    /// Default base seed for `certify` requests without one.
    certify_seed: u64,
}

impl Daemon {
    /// A single-tenant daemon with `threads` scheduler workers (`0` = one
    /// per core), speculative pre-classification off, and no persistence.
    pub fn new(threads: usize) -> Daemon {
        Daemon::with_speculation(threads, 0)
    }

    /// [`Daemon::new`] plus a speculation budget: after each `guru`
    /// response, the facts of up to `speculate` top-ranked loops are
    /// demanded on a background thread.
    pub fn with_speculation(threads: usize, speculate: usize) -> Daemon {
        Daemon::with_options(threads, speculate, None)
    }

    /// [`Daemon::with_speculation`] plus an optional persist directory for
    /// durable fact snapshots (crash-safe warm starts across daemon
    /// restarts).
    pub fn with_options(threads: usize, speculate: usize, persist_dir: Option<PathBuf>) -> Daemon {
        Daemon::for_state(ServiceState::new(ServiceOptions {
            threads,
            speculate,
            persist_dir,
            ..ServiceOptions::default()
        }))
    }

    /// A daemon for one connection of a multi-tenant service, registered
    /// under a fresh session id.
    pub fn for_state(state: Arc<ServiceState>) -> Daemon {
        let session_id = state.next_session_id.fetch_add(1, Ordering::SeqCst) + 1;
        let certify_seed = state.certify_seed;
        Daemon {
            state,
            session_id,
            session: None,
            certify_seed,
        }
    }

    /// Set the default base seed used by `certify` requests without an
    /// explicit `seed` field (the `--certify-seed` CLI flag).
    pub fn set_certify_seed(&mut self, seed: u64) {
        self.certify_seed = seed;
    }

    /// Open a session for `text` over the shared tier and summary cache.
    fn open_session(&self, text: &str) -> Result<Session, String> {
        Session::open_cfg(
            text,
            self.state.cache.clone(),
            SessionConfig {
                opts: self.state.opts.clone(),
                spec_budget: self.state.speculate,
                persist_dir: self.state.persist_dir.clone(),
                tier: Some(self.state.tier.clone()),
                budget: self.state.session_budget,
                session_id: self.session_id,
            },
        )
    }

    /// Admission-controlled `load`: a connection without a session must win
    /// a registry slot first; replacing an already loaded session keeps the
    /// slot it holds.
    fn load_into_session(&mut self, text: &str) -> Result<Json, String> {
        let fresh = self.session.is_none();
        if fresh && !self.state.try_admit() {
            self.state.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(format!(
                "session limit reached ({} active, max {}); retry later",
                self.state.active_sessions.load(Ordering::SeqCst),
                self.state.max_sessions
            ));
        }
        match self.open_session(text) {
            Ok(s) => {
                if fresh {
                    self.state.admitted.fetch_add(1, Ordering::SeqCst);
                }
                let stats = s.stats_json();
                self.session = Some(s);
                Ok(stats)
            }
            Err(e) => {
                if fresh {
                    self.state.release_session();
                }
                Err(e)
            }
        }
    }

    fn with_session<R>(&mut self, f: impl FnOnce(&mut Session) -> R) -> Result<R, String> {
        match self.session.as_mut() {
            Some(s) => Ok(f(s)),
            None => Err("no program loaded (send {\"cmd\":\"load\",\"text\":…} first)".into()),
        }
    }

    /// Stamp this connection's session id into a response object.
    fn tag(&self, resp: Json) -> Json {
        match resp {
            Json::Obj(mut m) => {
                m.insert("session".into(), Json::int(self.session_id as i64));
                Json::Obj(m)
            }
            other => other,
        }
    }

    /// Handle one request line; returns the response and whether to close.
    /// A `batch` line produces several responses — this compatibility shim
    /// returns only the last; pipelining callers use
    /// [`Daemon::handle_request`].
    pub fn handle_line(&mut self, line: &str) -> (Json, bool) {
        let (mut responses, close) = self.handle_request(line);
        let last = responses
            .pop()
            .unwrap_or_else(|| self.tag(ok_response(Json::obj([]))));
        (last, close)
    }

    /// Handle one request line, producing every response line it owes (one
    /// for a plain request, one per sub-request for `batch`) and whether
    /// the connection should close afterwards.  A request carrying an `id`
    /// gets it echoed in its response.
    pub fn handle_request(&mut self, line: &str) -> (Vec<Json>, bool) {
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return (vec![self.tag(err_response(&e.to_string()))], false),
        };
        let id = request_id(&v);
        match Request::from_value(&v) {
            Err(e) => (vec![with_id(self.tag(err_response(&e.0)), id)], false),
            Ok(Request::Batch { items }) => {
                let mut out = Vec::with_capacity(items.len());
                let mut close = false;
                for item in items {
                    // A `quit`/`shutdown` inside the batch stops execution,
                    // but every remaining element still gets its reply (the
                    // client counted on one response per sub-request).
                    if close {
                        out.push(with_id(
                            self.tag(err_response("connection closing")),
                            Some(item.id),
                        ));
                        continue;
                    }
                    let resp = match item.req {
                        Err(e) => self.tag(err_response(&e.0)),
                        Ok(req) => {
                            let (resp, c) = self.dispatch(*req);
                            close |= c;
                            resp
                        }
                    };
                    out.push(with_id(resp, Some(item.id)));
                }
                (out, close)
            }
            Ok(req) => {
                let (resp, close) = self.dispatch(req);
                (vec![with_id(resp, id)], close)
            }
        }
    }

    /// Handle one decoded transport frame (the reactor path): a line frames
    /// a request, an oversize marker answers with a protocol error, and a
    /// blank line answers nothing — in all cases the connection survives.
    pub fn handle_frame(&mut self, frame: &Frame) -> (Vec<Json>, bool) {
        match frame {
            Frame::Line(l) if l.trim().is_empty() => (Vec::new(), false),
            Frame::Line(l) => self.handle_request(l),
            Frame::Oversize(dropped) => (
                vec![self.tag(err_response(&format!(
                    "request line exceeds {MAX_LINE_BYTES} bytes ({dropped} discarded)"
                )))],
                false,
            ),
        }
    }

    /// Execute a batch of decoded frames in order, serializing the response
    /// lines.  Stops at the first close-triggering frame (`quit`,
    /// `shutdown`); later frames are dropped — the connection is closing.
    pub fn run_frames(&mut self, frames: &[Frame]) -> (Vec<u8>, bool) {
        let mut out = Vec::new();
        for f in frames {
            let (responses, close) = self.handle_frame(f);
            for r in responses {
                out.extend_from_slice(r.to_string().as_bytes());
                out.push(b'\n');
            }
            if close {
                return (out, true);
            }
        }
        (out, false)
    }

    /// Execute one parsed request; returns the tagged response and whether
    /// the connection should close.
    fn dispatch(&mut self, req: Request) -> (Json, bool) {
        let result: Result<Json, String> = match req {
            Request::Load { text } => self.load_into_session(&text),
            Request::Reload { text } => match self.session.as_mut() {
                // A reload without a session is just a load.
                None => self.load_into_session(&text),
                Some(s) => s.reload(&text).map(|()| s.stats_json()),
            },
            Request::Analyze => self.with_session(|s| s.analyze()),
            Request::Guru => self.with_session(|s| s.guru_json()),
            Request::Slice { loop_name } => self
                .with_session(|s| s.slice_json(&loop_name))
                .and_then(|r| r),
            Request::Assert {
                loop_name,
                var,
                independent,
            } => self.with_session(|s| s.assert_json(&loop_name, &var, independent)),
            Request::Certify {
                loop_name,
                schedules,
                seed,
            } => {
                let seed = seed.unwrap_or(self.certify_seed);
                self.with_session(|s| {
                    s.certify_json(loop_name.as_deref(), schedules.unwrap_or(4), seed)
                })
                .and_then(|r| r)
            }
            Request::Corpus {
                programs,
                gen,
                seed_base,
                workers,
                max_program_bytes,
            } => {
                // Service-level: no session required, and the run fans out
                // on its OWN pool — this command may itself be executing on
                // a shared-pool worker, and two concurrent corpus commands
                // fanning into the shared pool could deadlock waiting for
                // each other's jobs.
                let mut entries: Vec<crate::corpus::CorpusEntry> = programs
                    .into_iter()
                    .map(|(name, source)| crate::corpus::CorpusEntry { name, source })
                    .collect();
                entries.extend(crate::corpus::generated_entries(gen, seed_base));
                let opts = crate::corpus::CorpusOptions {
                    workers,
                    session_budget: self.state.session_budget,
                    max_program_bytes,
                    inject_panic: None,
                };
                let run = crate::corpus::run_corpus(
                    entries,
                    &opts,
                    &self.state.tier,
                    &self.state.cache,
                    |_| {},
                );
                Ok(Json::obj([
                    ("summary", run.summary.to_json(&self.state.tier)),
                    (
                        "reports",
                        Json::Arr(run.reports.iter().map(|r| r.to_json()).collect()),
                    ),
                ]))
            }
            Request::Advisory => self.with_session(|s| s.advisory_json()),
            Request::Codeview => self.with_session(|s| s.codeview_json()),
            Request::Stats => self.with_session(|s| s.stats_json()).map(|st| match st {
                Json::Obj(mut m) => {
                    m.insert("service".into(), self.state.service_json());
                    Json::Obj(m)
                }
                other => other,
            }),
            Request::Checkpoint => self.with_session(|s| s.checkpoint_json()).and_then(|r| r),
            Request::Quit => return (self.tag(ok_response(Json::obj([]))), true),
            Request::Shutdown => {
                // Flag first, so the acceptor and sibling connections start
                // winding down while we checkpoint.
                self.state.shutdown.store(true, Ordering::SeqCst);
                let mut fields = vec![("shutdown", Json::Bool(true))];
                match self.state.checkpoint() {
                    Ok(Some((facts, bytes))) => fields.push((
                        "checkpoint",
                        Json::obj([
                            ("facts", Json::int(facts as i64)),
                            ("bytes", Json::int(bytes as i64)),
                        ]),
                    )),
                    Ok(None) => {}
                    Err(e) => fields.push(("checkpoint_error", Json::str(e.to_string()))),
                }
                return (self.tag(ok_response(Json::obj(fields))), true);
            }
            Request::Batch { .. } => {
                // Batches are expanded by `handle_request`; one reaching the
                // single-request dispatcher is a protocol error (nesting).
                return (self.tag(err_response("batch may not nest")), false);
            }
        };
        match result {
            Ok(payload) => (self.tag(ok_response(payload)), false),
            Err(msg) => (self.tag(err_response(&msg)), false),
        }
    }

    /// Serve one connection: read request lines from `input`, write the
    /// response line(s) each owes to `output`, until `quit` or EOF.  The
    /// stdio transport supports `batch` pipelining too.
    pub fn serve(&mut self, input: impl BufRead, output: &mut impl Write) -> io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (responses, quit) = self.handle_request(&line);
            for resp in responses {
                writeln!(output, "{resp}")?;
            }
            output.flush()?;
            if quit {
                break;
            }
        }
        Ok(())
    }
}

/// Echo a request `id` into its response object (no-op without one).
fn with_id(resp: Json, id: Option<Json>) -> Json {
    match (resp, id) {
        (Json::Obj(mut m), Some(id)) => {
            m.insert("id".into(), id);
            Json::Obj(m)
        }
        (resp, _) => resp,
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // A dropped connection detaches its session from the registry; the
        // facts it published stay in the shared tier.
        if self.session.is_some() {
            self.state.release_session();
        }
    }
}

/// Serve on stdin/stdout until `quit` or EOF.  `certify_seed` is the
/// default base seed for `certify` requests without one (`--certify-seed`).
pub fn serve_stdio(
    threads: usize,
    speculate: usize,
    persist_dir: Option<PathBuf>,
    certify_seed: u64,
) -> io::Result<()> {
    serve_stdio_with(ServiceOptions {
        threads,
        speculate,
        persist_dir,
        certify_seed,
        ..ServiceOptions::default()
    })
}

/// [`serve_stdio`] over full [`ServiceOptions`] (budgets and admission
/// control apply to the one stdio session too).
pub fn serve_stdio_with(options: ServiceOptions) -> io::Result<()> {
    let mut daemon = Daemon::for_state(ServiceState::new(options));
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    daemon.serve(stdin.lock(), &mut stdout)
}

/// Serve on a TCP listener: a single reactor thread multiplexing every
/// connection over a shared [`ServiceState`].  The summary cache and fact
/// tier persist across connections and are shared between concurrent ones.
/// Prints `listening on <addr>` to stdout once bound (bind to port 0 to
/// let the OS pick).  Returns after a `shutdown` request has drained every
/// connection and worker.
pub fn serve_tcp_with(addr: &str, options: ServiceOptions) -> io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    println!("listening on {}", listener.local_addr()?);
    io::stdout().flush()?;
    serve_listener(listener, ServiceState::new(options))
}

/// Per-connection bounded write queue: past this many unflushed response
/// bytes the reactor pauses the connection's reads (and frame dispatch)
/// until the client drains — backpressure instead of unbounded buffering.
const OUTBUF_LIMIT: usize = 1 << 20;

/// Frames queued per connection before reads pause (a pipelining client
/// cannot out-run the workers into unbounded memory).
const INBOX_LIMIT: usize = 4096;

/// Reactor poll tokens: the listener, the worker doorbell, then
/// connections at `slot + TOKEN_BASE`.
const LISTENER_TOKEN: usize = 0;
const WAKE_TOKEN: usize = 1;
const TOKEN_BASE: usize = 2;

/// Defensive poll timeout (ms).  Every state change rings the wake pipe or
/// arrives as socket readiness, so this fires only if a wakeup is lost to
/// a bug — a liveness backstop, not a polling interval.
const HEARTBEAT_MS: i32 = 5000;

/// One finished connection job, travelling worker → reactor.
struct Completion {
    slot: usize,
    /// Slot-reuse guard: stale completions for a closed connection are
    /// discarded (their `daemon` drop releases the session).
    generation: u64,
    daemon: Daemon,
    /// Serialized response lines, in request order.
    bytes: Vec<u8>,
    /// The job executed `quit` or `shutdown`: flush, then close.
    close: bool,
}

/// One multiplexed connection's reactor-side state.
struct Conn {
    stream: std::net::TcpStream,
    fd: crate::reactor::RawFd,
    peer: String,
    generation: u64,
    decoder: FrameDecoder,
    /// Decoded frames awaiting execution, in arrival order.
    inbox: VecDeque<Frame>,
    /// The connection's daemon; `None` while a worker job holds it.
    daemon: Option<Daemon>,
    /// Pending response bytes (`outpos..` unwritten).
    outbuf: Vec<u8>,
    outpos: usize,
    /// Readiness the poller currently watches for this socket.
    interest: Interest,
    /// EOF seen (or a fatal read error): no more input will arrive.
    read_closed: bool,
    /// Flush what is owed, then tear down (after `quit`/`shutdown`).
    closing: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.outpos
    }

    /// Push response bytes, compacting the consumed prefix.
    fn queue_out(&mut self, bytes: &[u8]) {
        if self.outpos > 0 && self.outpos == self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
        }
        self.outbuf.extend_from_slice(bytes);
    }

    /// Nonblocking flush.  Returns `false` on a fatal write error (peer
    /// gone): the connection is unsalvageable.
    fn flush_out(&mut self) -> bool {
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => return false,
                Ok(n) => self.outpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.outpos == self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
        }
        true
    }

    /// Nonblocking read into the frame decoder.  Returns `false` on a
    /// fatal read error.
    fn read_ready(&mut self) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    return true;
                }
                Ok(n) => {
                    self.decoder.feed(&chunk[..n]);
                    // Level-triggered readiness will call again for the
                    // rest; cap one connection's share of the loop.
                    if n < chunk.len() {
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.read_closed = true;
                    return false;
                }
            }
        }
    }

    /// Whether reads should stay paused: the peer isn't draining responses
    /// or has pipelined far ahead of the workers.
    fn throttled(&self) -> bool {
        self.pending_out() > OUTBUF_LIMIT || self.inbox.len() > INBOX_LIMIT
    }

    /// The readiness this connection should be watched for right now.
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.read_closed && !self.closing && !self.throttled(),
            writable: self.pending_out() > 0,
        }
    }

    /// This connection owes or expects nothing more — safe to tear down.
    fn drained(&self, inflight: bool) -> bool {
        !inflight
            && self.inbox.is_empty()
            && self.pending_out() == 0
            && (self.closing || self.read_closed)
    }
}

#[cfg(unix)]
fn sock_fd<T: std::os::unix::io::AsRawFd>(s: &T, _token: usize) -> crate::reactor::RawFd {
    s.as_raw_fd() as crate::reactor::RawFd
}
#[cfg(not(unix))]
fn sock_fd<T>(_s: &T, token: usize) -> crate::reactor::RawFd {
    // The emulation backend never dereferences fds; any unique key works.
    token
}

/// The reactor event loop of [`serve_tcp_with`], over an already bound
/// listener and shared state (tests bind their own listener to learn the
/// port, then drive this directly).  One thread, nonblocking sockets,
/// indefinite blocking waits; all command execution happens on
/// [`ServiceState`]'s worker pool and returns through the wake pipe.
pub fn serve_listener(listener: std::net::TcpListener, state: Arc<ServiceState>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    let _ = state.reactor.backend.set(poller.backend_name());
    let wake = WakePipe::new()?;
    let waker = wake.waker();
    let completions: Arc<Mutex<VecDeque<Completion>>> = Arc::new(Mutex::new(VecDeque::new()));

    let listener_fd = sock_fd(&listener, LISTENER_TOKEN);
    poller.register(listener_fd, LISTENER_TOKEN, Interest::READ)?;
    poller.register(wake.read_fd(), WAKE_TOKEN, Interest::READ)?;

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free_slots: Vec<usize> = Vec::new();
    let mut inflight: Vec<bool> = Vec::new();
    let mut generation: u64 = 0;
    let mut events: Vec<Event> = Vec::new();
    let mut listening = true;

    macro_rules! teardown {
        ($slot:expr) => {{
            if let Some(conn) = conns[$slot].take() {
                let _ = poller.deregister(conn.fd);
                state.reactor.connections.fetch_sub(1, Ordering::Relaxed);
                free_slots.push($slot);
                // Dropping `conn` drops its Daemon (if checked in) and the
                // socket; a Daemon still out on a worker comes back as a
                // stale-generation completion and is dropped there.
            }
        }};
    }

    loop {
        state.reactor.polls.fetch_add(1, Ordering::Relaxed);
        poller.wait(&mut events, HEARTBEAT_MS)?;

        let mut touched: Vec<usize> = Vec::new();
        for ev in events.iter() {
            match ev.token {
                LISTENER_TOKEN => {
                    // Accept every pending connection (level-triggered, but
                    // draining now saves wait round-trips).
                    loop {
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                if state.shutting_down() {
                                    drop(stream);
                                    continue;
                                }
                                stream.set_nonblocking(true)?;
                                let _ = stream.set_nodelay(true);
                                let slot = free_slots.pop().unwrap_or_else(|| {
                                    conns.push(None);
                                    inflight.push(false);
                                    conns.len() - 1
                                });
                                generation += 1;
                                let token = slot + TOKEN_BASE;
                                let fd = sock_fd(&stream, token);
                                let daemon = Daemon::for_state(state.clone());
                                if poller.register(fd, token, Interest::READ).is_err() {
                                    // Registration failure (fd pressure):
                                    // refuse this connection, keep serving.
                                    eprintln!("warning: register {peer} failed; refusing");
                                    free_slots.push(slot);
                                    continue;
                                }
                                conns[slot] = Some(Conn {
                                    stream,
                                    fd,
                                    peer: peer.to_string(),
                                    generation,
                                    decoder: FrameDecoder::default(),
                                    inbox: VecDeque::new(),
                                    daemon: Some(daemon),
                                    outbuf: Vec::new(),
                                    outpos: 0,
                                    interest: Interest::READ,
                                    read_closed: false,
                                    closing: false,
                                });
                                inflight[slot] = false;
                                state.reactor.accepted.fetch_add(1, Ordering::Relaxed);
                                let live =
                                    state.reactor.connections.fetch_add(1, Ordering::Relaxed) + 1;
                                state
                                    .reactor
                                    .peak_connections
                                    .fetch_max(live, Ordering::Relaxed);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => {
                                // Transient accept failure (EMFILE under fd
                                // pressure): log and move on; level-triggered
                                // readiness will retry.
                                eprintln!("warning: accept failed: {e}");
                                break;
                            }
                        }
                    }
                }
                WAKE_TOKEN => {
                    let drained = wake.drain();
                    state
                        .reactor
                        .wakeups
                        .fetch_add(drained as u64, Ordering::Relaxed);
                }
                token => {
                    let slot = token - TOKEN_BASE;
                    let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                        continue;
                    };
                    let mut dead = false;
                    if ev.readable || ev.hangup {
                        dead |= !conn.read_ready();
                        while let Some(frame) = conn.decoder.next_frame() {
                            if matches!(frame, Frame::Oversize(_)) {
                                state.reactor.oversize.fetch_add(1, Ordering::Relaxed);
                            }
                            conn.inbox.push_back(frame);
                        }
                    }
                    if ev.writable {
                        dead |= !conn.flush_out();
                    }
                    if ev.hangup && conn.pending_out() == 0 && conn.inbox.is_empty() {
                        // Peer is gone and nothing is owed: don't wait for
                        // a read to confirm.
                        conn.read_closed = true;
                    }
                    if dead {
                        eprintln!(
                            "warning: connection {}: peer lost; session detached",
                            conn.peer
                        );
                        teardown!(slot);
                    } else {
                        touched.push(slot);
                    }
                }
            }
        }

        // Worker completions: check the daemon back in, queue its response
        // bytes, and flush opportunistically.
        loop {
            let done = completions.lock().unwrap().pop_front();
            let Some(done) = done else { break };
            let Some(conn) = conns.get_mut(done.slot).and_then(Option::as_mut) else {
                continue; // connection died mid-job; Daemon drops here
            };
            if conn.generation != done.generation {
                continue; // slot was reused; stale Daemon drops here
            }
            inflight[done.slot] = false;
            conn.daemon = Some(done.daemon);
            conn.closing |= done.close;
            conn.queue_out(&done.bytes);
            if !conn.flush_out() {
                eprintln!(
                    "warning: connection {}: peer lost; session detached",
                    conn.peer
                );
                teardown!(done.slot);
                continue;
            }
            touched.push(done.slot);
        }

        // On shutdown: stop accepting and stop reading; queued commands
        // still run and their responses still flush.
        if state.shutting_down() && listening {
            let _ = poller.deregister(listener_fd);
            listening = false;
            for (slot, conn) in conns.iter().enumerate() {
                if conn.is_some() {
                    touched.push(slot);
                }
            }
        }

        // Dispatch: every connection with queued frames and a checked-in
        // daemon sends ONE job (its whole current inbox) to the pool.
        touched.sort_unstable();
        touched.dedup();
        for slot in touched {
            let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            if state.shutting_down() {
                conn.read_closed = true;
            }
            if !inflight[slot] && !conn.closing && !conn.inbox.is_empty() {
                if let Some(mut daemon) = conn.daemon.take() {
                    let frames: Vec<Frame> = conn.inbox.drain(..).collect();
                    let gen = conn.generation;
                    let completions = Arc::clone(&completions);
                    inflight[slot] = true;
                    state.reactor.offloaded.fetch_add(1, Ordering::Relaxed);
                    state.workers.submit(move || {
                        let (bytes, close) = daemon.run_frames(&frames);
                        completions.lock().unwrap().push_back(Completion {
                            slot,
                            generation: gen,
                            daemon,
                            bytes,
                            close,
                        });
                        waker.wake();
                    });
                }
            }
            let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            if conn.drained(inflight[slot]) {
                teardown!(slot);
                continue;
            }
            let want = conn.desired_interest();
            if want != conn.interest {
                conn.interest = want;
                let _ = poller.modify(conn.fd, slot + TOKEN_BASE, want);
            }
        }

        if state.shutting_down()
            && conns.iter().all(Option::is_none)
            && state.workers.pending() == 0
        {
            break;
        }
    }

    // Final checkpoint over everything the drained sessions published (the
    // `shutdown` command itself already checkpointed; this catches facts
    // published by commands that were still queued behind it).
    if let Err(e) = state.checkpoint() {
        eprintln!("warning: final checkpoint failed: {e}");
    }
    Ok(())
}

/// [`serve_tcp_with`] under legacy single-knob options (no admission limit,
/// unbounded budgets).
pub fn serve_tcp(
    addr: &str,
    threads: usize,
    speculate: usize,
    persist_dir: Option<PathBuf>,
    certify_seed: u64,
) -> io::Result<()> {
    serve_tcp_with(
        addr,
        ServiceOptions {
            threads,
            speculate,
            persist_dir,
            certify_seed,
            ..ServiceOptions::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    const SRC: &str = "program t\\nproc main() {\\n real a[10]\\n int i\\n do 1 i = 1, 10 {\\n  a[i] = i\\n }\\n print a[5]\\n}";

    fn req(daemon: &mut Daemon, line: &str) -> Json {
        let (resp, _) = daemon.handle_line(line);
        resp
    }

    #[test]
    fn daemon_round_trip() {
        let mut d = Daemon::new(1);
        // Queries before load fail cleanly.
        let r = req(&mut d, r#"{"cmd":"analyze"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));

        let r = req(&mut d, &format!(r#"{{"cmd":"load","text":"{SRC}"}}"#));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("summarized").and_then(Json::as_i64), Some(1));
        // Every response carries this connection's session id.
        assert_eq!(r.get("session").and_then(Json::as_i64), Some(1));

        let r = req(&mut d, r#"{"cmd":"analyze"}"#);
        let loops = r.get("loops").and_then(Json::as_arr).unwrap();
        assert_eq!(loops[0].get("parallel").and_then(Json::as_bool), Some(true));

        // Warm re-analysis: every fact reused, the scheduler never ran.
        let r = req(&mut d, r#"{"cmd":"stats"}"#);
        assert_eq!(r.get("summarized").and_then(Json::as_i64), Some(0));
        assert_eq!(r.get("cache_hits").and_then(Json::as_i64), Some(0));
        let facts = r.get("facts").unwrap();
        assert_eq!(facts.get("computed").and_then(Json::as_i64), Some(0));
        assert!(facts.get("reused").and_then(Json::as_i64).unwrap() > 0);
        // Multi-tenant bookkeeping rides along even single-tenant.
        let service = r.get("service").unwrap();
        assert_eq!(service.get("sessions").and_then(Json::as_i64), Some(1));
        assert_eq!(service.get("admitted").and_then(Json::as_i64), Some(1));
        assert!(r.get("tier").is_some(), "shared-tier stats present");

        // Assertions and advisories answer over the wire.
        let r = req(
            &mut d,
            r#"{"cmd":"assert","loop":"main/1","var":"a","kind":"independent"}"#,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert!(r.get("assertion").and_then(Json::as_str).is_some());
        let r = req(&mut d, r#"{"cmd":"advisory"}"#);
        assert!(r.get("contractions").and_then(Json::as_arr).is_some());

        // Certification over the wire: a DOALL certifies race-free, the
        // single-loop report is mirrored at the top level, and the staged
        // polyhedral counters ride along (with the run counted in stats).
        let r = req(
            &mut d,
            r#"{"cmd":"certify","loop":"main/1","schedules":2,"seed":7}"#,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("loop").and_then(Json::as_str), Some("main/1"));
        assert_eq!(r.get("schedules_run").and_then(Json::as_i64), Some(2));
        assert_eq!(
            r.get("races").and_then(Json::as_arr).map(|a| a.len()),
            Some(0)
        );
        let entry = &r.get("loops").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(entry.get("race_free").and_then(Json::as_bool), Some(true));
        assert!(entry.get("iterations").and_then(Json::as_i64).unwrap() >= 10);
        assert!(r.get("poly").unwrap().get("approximations").is_some());
        let r = req(&mut d, r#"{"cmd":"certify","loop":"nope"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let r = req(&mut d, r#"{"cmd":"stats"}"#);
        let cert = r.get("certification").unwrap();
        assert_eq!(cert.get("loops_certified").and_then(Json::as_i64), Some(1));
        assert_eq!(cert.get("schedules_run").and_then(Json::as_i64), Some(2));
        assert_eq!(cert.get("races_found").and_then(Json::as_i64), Some(0));

        // A checkpoint without --persist-dir is a clean protocol error.
        let r = req(&mut d, r#"{"cmd":"checkpoint"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert!(r
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("persist-dir"));

        // Parse errors and unknown commands answer, not crash.
        let r = req(&mut d, "garbage");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let (_, quit) = d.handle_line(r#"{"cmd":"quit"}"#);
        assert!(quit);
    }

    #[test]
    fn serve_loop_over_buffers() {
        let mut d = Daemon::new(1);
        let input = format!(
            "{}\n{}\n{}\n",
            format_args!(r#"{{"cmd":"load","text":"{SRC}"}}"#),
            r#"{"cmd":"guru"}"#,
            r#"{"cmd":"quit"}"#
        );
        let mut out = Vec::new();
        d.serve(io::BufReader::new(input.as_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            let v = Json::parse(l).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{l}");
        }
    }

    #[test]
    fn admission_control_rejects_past_cap_and_recovers() {
        let state = ServiceState::new(ServiceOptions {
            threads: 1,
            max_sessions: 1,
            ..ServiceOptions::default()
        });
        let mut a = Daemon::for_state(state.clone());
        let mut b = Daemon::for_state(state.clone());
        assert_ne!(a.session_id, b.session_id, "distinct registry entries");

        let load = format!(r#"{{"cmd":"load","text":"{SRC}"}}"#);
        let r = req(&mut a, &load);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

        // The registry is full: the second tenant's load is rejected with a
        // clean protocol error and counted.
        let r = req(&mut b, &load);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert!(r
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("session limit"));
        assert_eq!(state.rejected.load(Ordering::SeqCst), 1);

        // Replacing the loaded session keeps the held slot (no self-eviction).
        let r = req(&mut a, &load);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

        // Dropping the holder frees the slot for the waiting tenant.
        drop(a);
        assert_eq!(state.active_sessions.load(Ordering::SeqCst), 0);
        let r = req(&mut b, &load);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(state.admitted.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn shutdown_flags_service_and_closes() {
        let state = ServiceState::new(ServiceOptions {
            threads: 1,
            ..ServiceOptions::default()
        });
        let mut d = Daemon::for_state(state.clone());
        let (r, quit) = d.handle_line(r#"{"cmd":"shutdown"}"#);
        assert!(quit, "shutdown closes the issuing connection");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("shutdown").and_then(Json::as_bool), Some(true));
        assert!(state.shutting_down());
    }
}
