//! The daemon loop: line-delimited JSON requests over stdio or TCP.
//!
//! A daemon process hosts one [`ServiceState`] — the cross-session summary
//! cache, the process-wide content-addressed fact tier, and the admission
//! counters — and any number of concurrent [`Daemon`] instances, one per
//! connection.  Each connection holds at most one [`Session`]; sessions are
//! thin overlays over the shared tier, so the second tenant to load a
//! program the first already analyzed recomputes nothing.  The tier and
//! cache outlive sessions: a `load` after a `quit` or reconnect still
//! reuses every fact whose content hash matches.
//!
//! Over TCP the daemon is multi-tenant: every accepted connection gets its
//! own serving thread and session-registry entry (the `session` id echoed
//! in every response).  A dropped connection detaches its session without
//! disturbing the rest; `shutdown` checkpoints the shared tier, closes the
//! listener, and drains in-flight sessions.

use crate::json::Json;
use crate::proto::{err_response, ok_response, Request};
use crate::session::{Session, SessionConfig, SNAPSHOT_FILE};
use std::io::{self, BufRead, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use suif_analysis::{snapshot, ScheduleOptions, SharedFactTier, SummaryCache};

/// Everything that shapes a daemon service, across all its sessions.
#[derive(Clone, Debug, Default)]
pub struct ServiceOptions {
    /// Scheduler workers per analysis executor (`0` = one per core).
    pub threads: usize,
    /// Speculation budget: top-ranked loops pre-classified after each
    /// `guru` (0 = off).
    pub speculate: usize,
    /// Fact-snapshot directory; the shared tier warm-starts from (and
    /// checkpoints to) `<dir>/facts.snap` when set.
    pub persist_dir: Option<PathBuf>,
    /// Default base seed for `certify` requests that don't carry one.
    pub certify_seed: u64,
    /// Max concurrently loaded sessions; further `load`s are rejected at
    /// admission (0 = unlimited).
    pub max_sessions: usize,
    /// Byte budget for the process-wide shared fact tier (`None` =
    /// unbounded).
    pub shared_budget: Option<usize>,
    /// Byte budget for each session's private fact overlay (`None` =
    /// unbounded).
    pub session_budget: Option<usize>,
}

/// Process-wide state shared by every connection of a daemon: the summary
/// cache, the content-addressed fact tier, and the session registry.
pub struct ServiceState {
    opts: ScheduleOptions,
    cache: Arc<SummaryCache>,
    tier: Arc<SharedFactTier>,
    speculate: usize,
    persist_dir: Option<PathBuf>,
    certify_seed: u64,
    session_budget: Option<usize>,
    max_sessions: usize,
    /// Currently loaded sessions (admission-controlled).
    active_sessions: AtomicUsize,
    /// Fresh sessions admitted over the service lifetime.
    admitted: AtomicU64,
    /// `load`s rejected at admission over the service lifetime.
    rejected: AtomicU64,
    /// Monotone session-id source; every connection gets one.
    next_session_id: AtomicU64,
    /// Set by `shutdown`; the acceptor and every serving thread poll it.
    shutdown: AtomicBool,
}

impl ServiceState {
    /// Build the shared state of a new service.
    pub fn new(options: ServiceOptions) -> Arc<ServiceState> {
        Arc::new(ServiceState {
            opts: ScheduleOptions {
                threads: options.threads,
            },
            cache: Arc::new(SummaryCache::new()),
            tier: Arc::new(SharedFactTier::with_budget(options.shared_budget)),
            speculate: options.speculate,
            persist_dir: options.persist_dir,
            certify_seed: options.certify_seed,
            session_budget: options.session_budget,
            max_sessions: options.max_sessions,
            active_sessions: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            next_session_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The process-wide content-addressed fact tier.
    pub fn tier(&self) -> &Arc<SharedFactTier> {
        &self.tier
    }

    /// Whether a `shutdown` request has been received.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Write the shared tier (and emptiness memo) to the persist path,
    /// atomically.  Returns `(facts, bytes)` written, or `None` without
    /// persistence.
    pub fn checkpoint(&self) -> io::Result<Option<(usize, usize)>> {
        let Some(dir) = &self.persist_dir else {
            return Ok(None);
        };
        let path = dir.join(SNAPSHOT_FILE);
        let snap =
            snapshot::Snapshot::new(self.tier.export(), suif_poly::export_prove_empty_memo());
        let bytes = snap.encode();
        snapshot::write_atomic(&path, &bytes)?;
        Ok(Some((snap.facts.len(), bytes.len())))
    }

    /// Reserve a session slot, or fail when the registry is full.
    fn try_admit(&self) -> bool {
        if self.max_sessions == 0 {
            self.active_sessions.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        loop {
            let cur = self.active_sessions.load(Ordering::SeqCst);
            if cur >= self.max_sessions {
                return false;
            }
            if self
                .active_sessions
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Release a previously reserved session slot.
    fn release_session(&self) {
        self.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }

    /// The `service` object merged into `stats` responses.
    fn service_json(&self) -> Json {
        Json::obj([
            (
                "sessions",
                Json::int(self.active_sessions.load(Ordering::SeqCst) as i64),
            ),
            (
                "admitted",
                Json::int(self.admitted.load(Ordering::SeqCst) as i64),
            ),
            (
                "rejected",
                Json::int(self.rejected.load(Ordering::SeqCst) as i64),
            ),
            ("max_sessions", Json::int(self.max_sessions as i64)),
        ])
    }
}

/// One connection's view of the service: a session slot plus the shared
/// [`ServiceState`].
pub struct Daemon {
    state: Arc<ServiceState>,
    /// This connection's registry id, echoed in every response.
    session_id: u64,
    session: Option<Session>,
    /// Default base seed for `certify` requests without one.
    certify_seed: u64,
}

impl Daemon {
    /// A single-tenant daemon with `threads` scheduler workers (`0` = one
    /// per core), speculative pre-classification off, and no persistence.
    pub fn new(threads: usize) -> Daemon {
        Daemon::with_speculation(threads, 0)
    }

    /// [`Daemon::new`] plus a speculation budget: after each `guru`
    /// response, the facts of up to `speculate` top-ranked loops are
    /// demanded on a background thread.
    pub fn with_speculation(threads: usize, speculate: usize) -> Daemon {
        Daemon::with_options(threads, speculate, None)
    }

    /// [`Daemon::with_speculation`] plus an optional persist directory for
    /// durable fact snapshots (crash-safe warm starts across daemon
    /// restarts).
    pub fn with_options(threads: usize, speculate: usize, persist_dir: Option<PathBuf>) -> Daemon {
        Daemon::for_state(ServiceState::new(ServiceOptions {
            threads,
            speculate,
            persist_dir,
            ..ServiceOptions::default()
        }))
    }

    /// A daemon for one connection of a multi-tenant service, registered
    /// under a fresh session id.
    pub fn for_state(state: Arc<ServiceState>) -> Daemon {
        let session_id = state.next_session_id.fetch_add(1, Ordering::SeqCst) + 1;
        let certify_seed = state.certify_seed;
        Daemon {
            state,
            session_id,
            session: None,
            certify_seed,
        }
    }

    /// Set the default base seed used by `certify` requests without an
    /// explicit `seed` field (the `--certify-seed` CLI flag).
    pub fn set_certify_seed(&mut self, seed: u64) {
        self.certify_seed = seed;
    }

    /// Open a session for `text` over the shared tier and summary cache.
    fn open_session(&self, text: &str) -> Result<Session, String> {
        Session::open_cfg(
            text,
            self.state.cache.clone(),
            SessionConfig {
                opts: self.state.opts.clone(),
                spec_budget: self.state.speculate,
                persist_dir: self.state.persist_dir.clone(),
                tier: Some(self.state.tier.clone()),
                budget: self.state.session_budget,
            },
        )
    }

    /// Admission-controlled `load`: a connection without a session must win
    /// a registry slot first; replacing an already loaded session keeps the
    /// slot it holds.
    fn load_into_session(&mut self, text: &str) -> Result<Json, String> {
        let fresh = self.session.is_none();
        if fresh && !self.state.try_admit() {
            self.state.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(format!(
                "session limit reached ({} active, max {}); retry later",
                self.state.active_sessions.load(Ordering::SeqCst),
                self.state.max_sessions
            ));
        }
        match self.open_session(text) {
            Ok(s) => {
                if fresh {
                    self.state.admitted.fetch_add(1, Ordering::SeqCst);
                }
                let stats = s.stats_json();
                self.session = Some(s);
                Ok(stats)
            }
            Err(e) => {
                if fresh {
                    self.state.release_session();
                }
                Err(e)
            }
        }
    }

    fn with_session<R>(&mut self, f: impl FnOnce(&mut Session) -> R) -> Result<R, String> {
        match self.session.as_mut() {
            Some(s) => Ok(f(s)),
            None => Err("no program loaded (send {\"cmd\":\"load\",\"text\":…} first)".into()),
        }
    }

    /// Stamp this connection's session id into a response object.
    fn tag(&self, resp: Json) -> Json {
        match resp {
            Json::Obj(mut m) => {
                m.insert("session".into(), Json::int(self.session_id as i64));
                Json::Obj(m)
            }
            other => other,
        }
    }

    /// Handle one request line; returns the response and whether to close.
    pub fn handle_line(&mut self, line: &str) -> (Json, bool) {
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => return (self.tag(err_response(&e.0)), false),
        };
        let result: Result<Json, String> = match req {
            Request::Load { text } => self.load_into_session(&text),
            Request::Reload { text } => match self.session.as_mut() {
                // A reload without a session is just a load.
                None => self.load_into_session(&text),
                Some(s) => s.reload(&text).map(|()| s.stats_json()),
            },
            Request::Analyze => self.with_session(|s| s.analyze()),
            Request::Guru => self.with_session(|s| s.guru_json()),
            Request::Slice { loop_name } => self
                .with_session(|s| s.slice_json(&loop_name))
                .and_then(|r| r),
            Request::Assert {
                loop_name,
                var,
                independent,
            } => self.with_session(|s| s.assert_json(&loop_name, &var, independent)),
            Request::Certify {
                loop_name,
                schedules,
                seed,
            } => {
                let seed = seed.unwrap_or(self.certify_seed);
                self.with_session(|s| {
                    s.certify_json(loop_name.as_deref(), schedules.unwrap_or(4), seed)
                })
                .and_then(|r| r)
            }
            Request::Advisory => self.with_session(|s| s.advisory_json()),
            Request::Codeview => self.with_session(|s| s.codeview_json()),
            Request::Stats => self.with_session(|s| s.stats_json()).map(|st| match st {
                Json::Obj(mut m) => {
                    m.insert("service".into(), self.state.service_json());
                    Json::Obj(m)
                }
                other => other,
            }),
            Request::Checkpoint => self.with_session(|s| s.checkpoint_json()).and_then(|r| r),
            Request::Quit => return (self.tag(ok_response(Json::obj([]))), true),
            Request::Shutdown => {
                // Flag first, so the acceptor and sibling connections start
                // winding down while we checkpoint.
                self.state.shutdown.store(true, Ordering::SeqCst);
                let mut fields = vec![("shutdown", Json::Bool(true))];
                match self.state.checkpoint() {
                    Ok(Some((facts, bytes))) => fields.push((
                        "checkpoint",
                        Json::obj([
                            ("facts", Json::int(facts as i64)),
                            ("bytes", Json::int(bytes as i64)),
                        ]),
                    )),
                    Ok(None) => {}
                    Err(e) => fields.push(("checkpoint_error", Json::str(e.to_string()))),
                }
                return (self.tag(ok_response(Json::obj(fields))), true);
            }
        };
        match result {
            Ok(payload) => (self.tag(ok_response(payload)), false),
            Err(msg) => (self.tag(err_response(&msg)), false),
        }
    }

    /// Serve one connection: read request lines from `input`, write one
    /// response line each to `output`, until `quit` or EOF.
    pub fn serve(&mut self, input: impl BufRead, output: &mut impl Write) -> io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (resp, quit) = self.handle_line(&line);
            writeln!(output, "{resp}")?;
            output.flush()?;
            if quit {
                break;
            }
        }
        Ok(())
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // A dropped connection detaches its session from the registry; the
        // facts it published stay in the shared tier.
        if self.session.is_some() {
            self.state.release_session();
        }
    }
}

/// Serve on stdin/stdout until `quit` or EOF.  `certify_seed` is the
/// default base seed for `certify` requests without one (`--certify-seed`).
pub fn serve_stdio(
    threads: usize,
    speculate: usize,
    persist_dir: Option<PathBuf>,
    certify_seed: u64,
) -> io::Result<()> {
    serve_stdio_with(ServiceOptions {
        threads,
        speculate,
        persist_dir,
        certify_seed,
        ..ServiceOptions::default()
    })
}

/// [`serve_stdio`] over full [`ServiceOptions`] (budgets and admission
/// control apply to the one stdio session too).
pub fn serve_stdio_with(options: ServiceOptions) -> io::Result<()> {
    let mut daemon = Daemon::for_state(ServiceState::new(options));
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    daemon.serve(stdin.lock(), &mut stdout)
}

/// Serve one TCP connection against the shared service state, with a
/// timeout-polling line reader so the thread notices a `shutdown` raised by
/// another connection even while idle.
fn serve_conn(conn: std::net::TcpStream, state: Arc<ServiceState>) -> io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = conn.try_clone()?;
    let mut writer = conn;
    let mut daemon = Daemon::for_state(state.clone());
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every complete line already buffered; a partial line stays
        // in `buf` across read timeouts instead of being lost.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            let (resp, quit) = daemon.handle_line(text);
            writeln!(writer, "{resp}")?;
            writer.flush()?;
            if quit {
                return Ok(());
            }
        }
        if state.shutting_down() {
            return Ok(());
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serve on a TCP listener, one thread per connection over a shared
/// [`ServiceState`].  The summary cache and fact tier persist across
/// connections and are shared between concurrent ones.  Prints `listening
/// on <addr>` to stdout once bound (bind to port 0 to let the OS pick).
/// Returns after a `shutdown` request has drained every connection.
pub fn serve_tcp_with(addr: &str, options: ServiceOptions) -> io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    println!("listening on {}", listener.local_addr()?);
    io::stdout().flush()?;
    serve_listener(listener, ServiceState::new(options))
}

/// The multi-tenant accept loop of [`serve_tcp_with`], over an already
/// bound listener and shared state (tests bind their own listener to learn
/// the port, then drive this directly).
pub fn serve_listener(listener: std::net::TcpListener, state: Arc<ServiceState>) -> io::Result<()> {
    // Non-blocking accept so the loop can poll the shutdown flag.
    listener.set_nonblocking(true)?;
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.shutting_down() {
        match listener.accept() {
            Ok((conn, peer)) => {
                // The accepted socket inherits non-blocking mode on some
                // platforms; the per-connection reader wants timeouts.
                conn.set_nonblocking(false)?;
                let st = state.clone();
                handles.push(std::thread::spawn(move || {
                    // A dropped connection must not kill the daemon — log
                    // the peer and error, detach the session, carry on.
                    if let Err(e) = serve_conn(conn, st) {
                        eprintln!("warning: connection {peer}: {e}; session detached");
                    }
                }));
                handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                eprintln!("warning: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    // Drain in-flight sessions (their readers poll the shutdown flag), then
    // take the final checkpoint over everything they published.
    for h in handles {
        let _ = h.join();
    }
    if let Err(e) = state.checkpoint() {
        eprintln!("warning: final checkpoint failed: {e}");
    }
    Ok(())
}

/// [`serve_tcp_with`] under legacy single-knob options (no admission limit,
/// unbounded budgets).
pub fn serve_tcp(
    addr: &str,
    threads: usize,
    speculate: usize,
    persist_dir: Option<PathBuf>,
    certify_seed: u64,
) -> io::Result<()> {
    serve_tcp_with(
        addr,
        ServiceOptions {
            threads,
            speculate,
            persist_dir,
            certify_seed,
            ..ServiceOptions::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    const SRC: &str = "program t\\nproc main() {\\n real a[10]\\n int i\\n do 1 i = 1, 10 {\\n  a[i] = i\\n }\\n print a[5]\\n}";

    fn req(daemon: &mut Daemon, line: &str) -> Json {
        let (resp, _) = daemon.handle_line(line);
        resp
    }

    #[test]
    fn daemon_round_trip() {
        let mut d = Daemon::new(1);
        // Queries before load fail cleanly.
        let r = req(&mut d, r#"{"cmd":"analyze"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));

        let r = req(&mut d, &format!(r#"{{"cmd":"load","text":"{SRC}"}}"#));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("summarized").and_then(Json::as_i64), Some(1));
        // Every response carries this connection's session id.
        assert_eq!(r.get("session").and_then(Json::as_i64), Some(1));

        let r = req(&mut d, r#"{"cmd":"analyze"}"#);
        let loops = r.get("loops").and_then(Json::as_arr).unwrap();
        assert_eq!(loops[0].get("parallel").and_then(Json::as_bool), Some(true));

        // Warm re-analysis: every fact reused, the scheduler never ran.
        let r = req(&mut d, r#"{"cmd":"stats"}"#);
        assert_eq!(r.get("summarized").and_then(Json::as_i64), Some(0));
        assert_eq!(r.get("cache_hits").and_then(Json::as_i64), Some(0));
        let facts = r.get("facts").unwrap();
        assert_eq!(facts.get("computed").and_then(Json::as_i64), Some(0));
        assert!(facts.get("reused").and_then(Json::as_i64).unwrap() > 0);
        // Multi-tenant bookkeeping rides along even single-tenant.
        let service = r.get("service").unwrap();
        assert_eq!(service.get("sessions").and_then(Json::as_i64), Some(1));
        assert_eq!(service.get("admitted").and_then(Json::as_i64), Some(1));
        assert!(r.get("tier").is_some(), "shared-tier stats present");

        // Assertions and advisories answer over the wire.
        let r = req(
            &mut d,
            r#"{"cmd":"assert","loop":"main/1","var":"a","kind":"independent"}"#,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert!(r.get("assertion").and_then(Json::as_str).is_some());
        let r = req(&mut d, r#"{"cmd":"advisory"}"#);
        assert!(r.get("contractions").and_then(Json::as_arr).is_some());

        // Certification over the wire: a DOALL certifies race-free, the
        // single-loop report is mirrored at the top level, and the staged
        // polyhedral counters ride along (with the run counted in stats).
        let r = req(
            &mut d,
            r#"{"cmd":"certify","loop":"main/1","schedules":2,"seed":7}"#,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(r.get("loop").and_then(Json::as_str), Some("main/1"));
        assert_eq!(r.get("schedules_run").and_then(Json::as_i64), Some(2));
        assert_eq!(
            r.get("races").and_then(Json::as_arr).map(|a| a.len()),
            Some(0)
        );
        let entry = &r.get("loops").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(entry.get("race_free").and_then(Json::as_bool), Some(true));
        assert!(entry.get("iterations").and_then(Json::as_i64).unwrap() >= 10);
        assert!(r.get("poly").unwrap().get("approximations").is_some());
        let r = req(&mut d, r#"{"cmd":"certify","loop":"nope"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let r = req(&mut d, r#"{"cmd":"stats"}"#);
        let cert = r.get("certification").unwrap();
        assert_eq!(cert.get("loops_certified").and_then(Json::as_i64), Some(1));
        assert_eq!(cert.get("schedules_run").and_then(Json::as_i64), Some(2));
        assert_eq!(cert.get("races_found").and_then(Json::as_i64), Some(0));

        // A checkpoint without --persist-dir is a clean protocol error.
        let r = req(&mut d, r#"{"cmd":"checkpoint"}"#);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert!(r
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("persist-dir"));

        // Parse errors and unknown commands answer, not crash.
        let r = req(&mut d, "garbage");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let (_, quit) = d.handle_line(r#"{"cmd":"quit"}"#);
        assert!(quit);
    }

    #[test]
    fn serve_loop_over_buffers() {
        let mut d = Daemon::new(1);
        let input = format!(
            "{}\n{}\n{}\n",
            format_args!(r#"{{"cmd":"load","text":"{SRC}"}}"#),
            r#"{"cmd":"guru"}"#,
            r#"{"cmd":"quit"}"#
        );
        let mut out = Vec::new();
        d.serve(io::BufReader::new(input.as_bytes()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            let v = Json::parse(l).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{l}");
        }
    }

    #[test]
    fn admission_control_rejects_past_cap_and_recovers() {
        let state = ServiceState::new(ServiceOptions {
            threads: 1,
            max_sessions: 1,
            ..ServiceOptions::default()
        });
        let mut a = Daemon::for_state(state.clone());
        let mut b = Daemon::for_state(state.clone());
        assert_ne!(a.session_id, b.session_id, "distinct registry entries");

        let load = format!(r#"{{"cmd":"load","text":"{SRC}"}}"#);
        let r = req(&mut a, &load);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

        // The registry is full: the second tenant's load is rejected with a
        // clean protocol error and counted.
        let r = req(&mut b, &load);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert!(r
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("session limit"));
        assert_eq!(state.rejected.load(Ordering::SeqCst), 1);

        // Replacing the loaded session keeps the held slot (no self-eviction).
        let r = req(&mut a, &load);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

        // Dropping the holder frees the slot for the waiting tenant.
        drop(a);
        assert_eq!(state.active_sessions.load(Ordering::SeqCst), 0);
        let r = req(&mut b, &load);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        assert_eq!(state.admitted.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn shutdown_flags_service_and_closes() {
        let state = ServiceState::new(ServiceOptions {
            threads: 1,
            ..ServiceOptions::default()
        });
        let mut d = Daemon::for_state(state.clone());
        let (r, quit) = d.handle_line(r#"{"cmd":"shutdown"}"#);
        assert!(quit, "shutdown closes the issuing connection");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("shutdown").and_then(Json::as_bool), Some(true));
        assert!(state.shutting_down());
    }
}
