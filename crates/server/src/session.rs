//! A resident Explorer session: owns the parsed program, the analysis, and
//! the cross-reload summary cache.
//!
//! The Explorer borrows the [`Program`] it analyzes; a daemon must own both.
//! [`Session`] boxes the program (a stable heap address) and extends the
//! borrow to `'static` internally.  Safety rests on two invariants: the
//! `explorer` field is declared before `program` so it drops first, and the
//! extended reference never escapes the session (every public return is
//! owned JSON or plain data).

use crate::json::Json;
use std::sync::Arc;
use suif_analysis::{
    AnalyzeStats, Assertion, FactStore, LoopVerdict, ScheduleOptions, SummaryCache,
};
use suif_explorer::Explorer;
use suif_ir::Program;

/// One loaded program plus its resident analysis state.
pub struct Session {
    /// Borrows `program`; declared first so it drops first.
    explorer: Explorer<'static>,
    /// The owned program; boxed so its address survives moves of `Session`.
    #[allow(dead_code)]
    program: Box<Program>,
    cache: Arc<SummaryCache>,
    /// Fact store shared across analyses and reloads of this session;
    /// stale facts miss on their content hash, surviving ones are reused.
    store: Arc<FactStore>,
    opts: ScheduleOptions,
    /// Stats of the most recent analysis run.
    pub last_stats: AnalyzeStats,
    /// `(hits, misses)` of the summary cache during the most recent run.
    pub last_cache_delta: (u64, u64),
    /// Completed `load`/`reload` requests.
    pub generation: u64,
}

fn build_explorer(
    program: &'static Program,
    opts: &ScheduleOptions,
    cache: &SummaryCache,
    store: Arc<FactStore>,
) -> Result<(Explorer<'static>, AnalyzeStats, (u64, u64)), String> {
    let before = cache.counters();
    let (explorer, stats) = Explorer::with_store(
        program,
        Default::default(),
        Vec::new(),
        opts,
        Some(cache),
        store,
    )
    .map_err(|e| e.to_string())?;
    let after = cache.counters();
    Ok((explorer, stats, (after.0 - before.0, after.1 - before.1)))
}

impl Session {
    /// Parse and analyze `source`, seeding (and drawing from) `cache`.
    pub fn open(
        source: &str,
        opts: ScheduleOptions,
        cache: Arc<SummaryCache>,
    ) -> Result<Session, String> {
        let program = Box::new(suif_ir::parse_program(source).map_err(|e| e.to_string())?);
        // SAFETY: `program` is heap-allocated and lives in this session
        // until after `explorer` (field order) is dropped; the reference
        // never leaves the session.
        let pref: &'static Program = unsafe { &*(&*program as *const Program) };
        let store = Arc::new(FactStore::new());
        let (explorer, stats, delta) = build_explorer(pref, &opts, &cache, store.clone())?;
        Ok(Session {
            explorer,
            program,
            cache,
            store,
            opts,
            last_stats: stats,
            last_cache_delta: delta,
            generation: 1,
        })
    }

    /// Replace the program with edited source.  The summary cache and fact
    /// store carry over, so only the dirty cone (edited procedures,
    /// id-shifted ones, and their transitive callers) is re-summarized and
    /// only hash-mismatched facts are recomputed.
    pub fn reload(&mut self, source: &str) -> Result<(), String> {
        let program = Box::new(suif_ir::parse_program(source).map_err(|e| e.to_string())?);
        // SAFETY: as in `open`.
        let pref: &'static Program = unsafe { &*(&*program as *const Program) };
        let (explorer, stats, delta) =
            build_explorer(pref, &self.opts, &self.cache, self.store.clone())?;
        // Install the new pair; the old explorer (borrowing the old program)
        // is dropped here, before the old program.
        self.explorer = explorer;
        self.program = program;
        self.last_stats = stats;
        self.last_cache_delta = delta;
        self.generation += 1;
        Ok(())
    }

    /// Re-run the static analysis through the fact store (a warm
    /// re-analysis of an unchanged program reuses every fact and runs no
    /// pass) and report per-loop verdicts.
    pub fn analyze(&mut self) -> Json {
        let before = self.cache.counters();
        let config = self.explorer.analysis.config.clone();
        let (analysis, stats) = suif_analysis::Parallelizer::analyze_in(
            self.explorer.program,
            config,
            &self.opts,
            Some(&self.cache),
            &self.store,
        );
        let after = self.cache.counters();
        self.explorer.analysis = analysis;
        self.last_stats = stats;
        self.last_cache_delta = (after.0 - before.0, after.1 - before.1);
        let loops = self
            .verdicts_json()
            .get("loops")
            .cloned()
            .unwrap_or(Json::Arr(vec![]));
        Json::obj([
            ("loops", loops),
            ("warnings", warnings_json(&self.explorer)),
        ])
    }

    /// Check and apply one user assertion (§2.8): an invalidation event
    /// that replays only the asserted loop's classification and its
    /// dependent facts.  Returns the checker verdict, the refreshed loop
    /// verdicts, and any unresolved-assertion warnings.
    pub fn assert_json(&mut self, loop_name: &str, var: &str, independent: bool) -> Json {
        let a = if independent {
            Assertion::Independent {
                loop_name: loop_name.into(),
                var: var.into(),
            }
        } else {
            Assertion::Privatizable {
                loop_name: loop_name.into(),
                var: var.into(),
            }
        };
        let (res, stats) = self.explorer.assert_and_reanalyze_with_stats(a);
        if let Some(stats) = stats {
            self.last_stats = stats;
        }
        let (verdict, detail) = match &res {
            suif_explorer::CheckResult::Consistent => ("consistent", String::new()),
            suif_explorer::CheckResult::Warning(w) => ("warning", w.clone()),
            suif_explorer::CheckResult::Contradicted(w) => ("contradicted", w.clone()),
        };
        let mut fields = vec![
            ("assertion", Json::str(verdict)),
            (
                "loops",
                self.verdicts_json()
                    .get("loops")
                    .cloned()
                    .unwrap_or(Json::Arr(vec![])),
            ),
            ("warnings", warnings_json(&self.explorer)),
        ];
        if !detail.is_empty() {
            fields.insert(1, ("detail", Json::str(&detail)));
        }
        Json::obj(fields)
    }

    /// The demand-driven advisories (contraction §5.6, decomposition
    /// §4.2.4, block splitting §5.5) — computed on first request, served
    /// from the fact store afterwards.
    pub fn advisory_json(&self) -> Json {
        let contractions: Vec<Json> = self
            .explorer
            .contractions()
            .iter()
            .map(|c| {
                Json::obj([
                    ("var", Json::str(&self.explorer.program.var(c.var).name)),
                    ("dim", Json::int(c.dim as i64)),
                ])
            })
            .collect();
        let advisory = self.explorer.decomp_advisory();
        let conflicts: Vec<Json> = advisory
            .conflicts
            .iter()
            .map(|c| {
                Json::obj([
                    ("object", Json::str(&c.object_name)),
                    ("a", Json::str(&c.a.0)),
                    ("b", Json::str(&c.b.0)),
                ])
            })
            .collect();
        let splits: Vec<Json> = self
            .explorer
            .block_splits()
            .iter()
            .map(|s| {
                Json::obj([
                    ("block", Json::str(&s.name)),
                    ("groups", Json::int(s.groups.len() as i64)),
                ])
            })
            .collect();
        Json::obj([
            ("contractions", Json::Arr(contractions)),
            ("decomp_conflicts", Json::Arr(conflicts)),
            ("splits", Json::Arr(splits)),
        ])
    }

    /// Per-loop verdicts of the current analysis, in source order.
    pub fn verdicts_json(&self) -> Json {
        let loops: Vec<Json> = self
            .explorer
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .map(|li| {
                let v = &self.explorer.analysis.verdicts[&li.stmt];
                let mut fields = vec![
                    ("loop", Json::str(&li.name)),
                    ("line", Json::int(li.line as i64)),
                    ("parallel", Json::Bool(v.is_parallel())),
                ];
                if let LoopVerdict::Sequential { deps, has_io, .. } = v {
                    fields.push((
                        "deps",
                        Json::Arr(deps.iter().map(|d| Json::str(&d.name)).collect()),
                    ));
                    fields.push(("io", Json::Bool(*has_io)));
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj([("loops", Json::Arr(loops))])
    }

    /// The Guru's ranked targets (§2.6).
    pub fn guru_json(&self) -> Json {
        let report = self.explorer.guru();
        let targets: Vec<Json> = report
            .targets
            .iter()
            .map(|t| {
                Json::obj([
                    ("loop", Json::str(&t.name)),
                    ("coverage", Json::Num(t.coverage)),
                    ("granularity", Json::Num(t.granularity)),
                    ("static_deps", Json::int(t.static_deps as i64)),
                    ("dynamic_dep", Json::Bool(t.dynamic_dep)),
                    ("important", Json::Bool(t.important)),
                ])
            })
            .collect();
        Json::obj([
            ("coverage", Json::Num(report.coverage)),
            ("granularity", Json::Num(report.granularity)),
            ("targets", Json::Arr(targets)),
            ("rendered", Json::str(report.render())),
            ("warnings", warnings_json(&self.explorer)),
        ])
    }

    /// Program/control slices for the first unresolved dependence of a loop
    /// (§2.6, Fig. 4-3).
    pub fn slice_json(&mut self, loop_name: &str) -> Result<Json, String> {
        let li = self
            .explorer
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == loop_name)
            .ok_or_else(|| format!("no loop `{loop_name}`"))?
            .clone();
        let slices = self.explorer.slices_for_dep(li.stmt, 0);
        let mut lines = std::collections::BTreeSet::new();
        let mut terminals = std::collections::BTreeSet::new();
        for (_, p, c) in &slices {
            lines.extend(p.lines.iter().copied());
            lines.extend(c.lines.iter().copied());
            for s in p.terminals.iter().chain(c.terminals.iter()) {
                if let Some((stmt, _)) = self.explorer.program.find_stmt(*s) {
                    terminals.insert(stmt.line());
                }
            }
        }
        let view = if slices.is_empty() {
            String::new()
        } else {
            suif_explorer::source_view(&self.explorer, li.line, li.end_line, &lines, &terminals)
        };
        Ok(Json::obj([
            ("loop", Json::str(loop_name)),
            ("slices", Json::int(slices.len() as i64)),
            (
                "lines",
                Json::Arr(lines.iter().map(|&l| Json::int(l as i64)).collect()),
            ),
            (
                "terminals",
                Json::Arr(terminals.iter().map(|&l| Json::int(l as i64)).collect()),
            ),
            ("view", Json::str(&view)),
        ]))
    }

    /// The annotated code view (§2.7).
    pub fn codeview_json(&self) -> Json {
        let guru = self.explorer.guru();
        Json::obj([(
            "view",
            Json::str(suif_explorer::codeview(&self.explorer, &guru)),
        )])
    }

    /// Daemon statistics: per-pass timings and invocation/reuse counters
    /// from the fact store, summary-cache traffic, worker utilization, and
    /// emptiness-memo counters.
    pub fn stats_json(&self) -> Json {
        let s = &self.last_stats;
        let (pe_hits, pe_misses) = suif_poly::prove_empty_cache_counters();
        let mut passes: Vec<(&'static str, Json)> = s
            .passes
            .iter()
            .map(|p| {
                (
                    p.pass.name(),
                    Json::obj([
                        ("secs", Json::Num(p.secs)),
                        ("invocations", Json::int(p.invocations as i64)),
                        ("reused", Json::int(p.reused as i64)),
                    ]),
                )
            })
            .collect();
        passes.push(("total", Json::Num(s.total_secs)));
        Json::obj([
            ("generation", Json::int(self.generation as i64)),
            ("procs", Json::int(s.schedule.procs as i64)),
            ("levels", Json::int(s.schedule.levels as i64)),
            ("threads", Json::int(s.schedule.threads as i64)),
            ("summarized", Json::int(s.schedule.summarized as i64)),
            ("cache_hits", Json::int(s.schedule.cache_hits as i64)),
            ("cache_entries", Json::int(self.cache.len() as i64)),
            ("utilization", Json::Num(s.schedule.utilization())),
            ("passes", Json::obj(passes)),
            (
                "facts",
                Json::obj([
                    ("computed", Json::int(s.facts_computed as i64)),
                    ("reused", Json::int(s.facts_reused as i64)),
                    ("ratio", Json::Num(s.reuse_ratio())),
                    ("entries", Json::int(self.store.len() as i64)),
                ]),
            ),
            (
                "prove_empty",
                Json::obj([
                    ("hits", Json::int(pe_hits as i64)),
                    ("misses", Json::int(pe_misses as i64)),
                ]),
            ),
        ])
    }
}

/// Unresolved-assertion warnings of the current analysis, as a JSON array.
fn warnings_json(ex: &Explorer<'_>) -> Json {
    Json::Arr(ex.warnings().iter().map(|w| Json::str(w.clone())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program t
proc inc(real q[*], int n) {
 int i
 do 1 i = 1, n {
  q[i] = q[i] + 1
 }
}
proc main() {
 real b[8]
 int i
 do 2 i = 1, 8 {
  b[i] = i
 }
 call inc(b, 8)
 print b[3]
}";

    #[test]
    fn session_loads_and_answers() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let v = s.verdicts_json();
        let loops = v.get("loops").and_then(Json::as_arr).unwrap();
        assert_eq!(loops.len(), 2);
        assert!(loops
            .iter()
            .all(|l| l.get("parallel").and_then(Json::as_bool) == Some(true)));
        assert_eq!(s.last_stats.schedule.summarized, 2);

        // Warm re-analysis of the unchanged program reuses every fact: no
        // procedure is re-summarized and the scheduler never runs.
        s.analyze();
        assert_eq!(s.last_stats.schedule.summarized, 0);
        assert_eq!(s.last_stats.schedule.cache_hits, 0);
        assert_eq!(s.last_stats.facts_computed, 0, "all facts from the store");
        assert!(
            s.last_stats.facts_reused >= 4,
            "summaries + liveness + loops"
        );

        // Reload with an edit to main only: the leaf `inc` stays cached.
        let edited = SRC.replace("print b[3]", "print b[4]");
        s.reload(&edited).unwrap();
        assert_eq!(s.generation, 2);
        assert_eq!(s.last_stats.schedule.cache_hits, 1, "inc must hit");
        assert_eq!(s.last_stats.schedule.summarized, 1, "only main dirty");
    }

    #[test]
    fn session_assertions_replay_incrementally() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let classify_before = s
            .store
            .metrics_for(suif_analysis::PassId::Classify)
            .invocations;

        // Asserting on one loop replays only that loop's classification.
        let r = s.assert_json("main/2", "b", true);
        assert_eq!(
            r.get("assertion").and_then(Json::as_str),
            Some("consistent")
        );
        let classify_after = s
            .store
            .metrics_for(suif_analysis::PassId::Classify)
            .invocations;
        assert_eq!(classify_after - classify_before, 1, "one loop reclassified");
        assert_eq!(
            s.store
                .metrics_for(suif_analysis::PassId::Summarize)
                .invocations,
            1,
            "summaries never re-ran"
        );

        // An assertion the checker can disprove is rejected with a detail.
        let r = s.assert_json("nosuch/9", "b", false);
        assert_eq!(
            r.get("assertion").and_then(Json::as_str),
            Some("contradicted")
        );
        assert!(r
            .get("detail")
            .and_then(Json::as_str)
            .unwrap()
            .contains("no loop"));

        // Every analyze payload carries the warnings channel.
        let a = s.analyze();
        assert!(a.get("warnings").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn session_advisory_and_stats_payload() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let adv = s.advisory_json();
        assert!(adv.get("contractions").and_then(Json::as_arr).is_some());
        assert!(adv.get("splits").and_then(Json::as_arr).is_some());

        s.analyze();
        let st = s.stats_json();
        let passes = st.get("passes").unwrap();
        assert!(passes.get("total").and_then(Json::as_f64).is_some());
        let classify = passes.get("classify").unwrap();
        assert_eq!(
            classify.get("invocations").and_then(Json::as_f64),
            Some(0.0),
            "warm analyze recomputes nothing"
        );
        assert_eq!(classify.get("reused").and_then(Json::as_f64), Some(2.0));
        let facts = st.get("facts").unwrap();
        assert_eq!(facts.get("computed").and_then(Json::as_f64), Some(0.0));
        assert!(facts.get("ratio").and_then(Json::as_f64).unwrap() > 0.99);
    }

    #[test]
    fn session_guru_and_codeview() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let g = s.guru_json();
        assert!(g.get("coverage").and_then(Json::as_f64).is_some());
        let cv = s.codeview_json();
        assert!(cv
            .get("view")
            .and_then(Json::as_str)
            .unwrap()
            .contains("do"));
        assert!(s.slice_json("nosuch/1").is_err());
        let sl = s.slice_json("main/2").unwrap();
        assert_eq!(sl.get("loop").and_then(Json::as_str), Some("main/2"));
    }
}
