//! A resident Explorer session: owns the parsed program, the analysis, and
//! the cross-reload summary cache.
//!
//! The Explorer borrows the [`Program`] it analyzes; a daemon must own both.
//! [`Session`] boxes the program (a stable heap address) and extends the
//! borrow to `'static` internally.  Safety rests on two invariants: the
//! `explorer` field is declared before `program` so it drops first, and the
//! extended reference never escapes the session (every public return is
//! owned JSON or plain data).

use crate::json::Json;
use std::sync::Arc;
use suif_analysis::{AnalyzeStats, LoopVerdict, ScheduleOptions, SummaryCache};
use suif_explorer::Explorer;
use suif_ir::Program;

/// One loaded program plus its resident analysis state.
pub struct Session {
    /// Borrows `program`; declared first so it drops first.
    explorer: Explorer<'static>,
    /// The owned program; boxed so its address survives moves of `Session`.
    #[allow(dead_code)]
    program: Box<Program>,
    cache: Arc<SummaryCache>,
    opts: ScheduleOptions,
    /// Stats of the most recent analysis run.
    pub last_stats: AnalyzeStats,
    /// `(hits, misses)` of the summary cache during the most recent run.
    pub last_cache_delta: (u64, u64),
    /// Completed `load`/`reload` requests.
    pub generation: u64,
}

fn build_explorer(
    program: &'static Program,
    opts: &ScheduleOptions,
    cache: &SummaryCache,
) -> Result<(Explorer<'static>, AnalyzeStats, (u64, u64)), String> {
    let before = cache.counters();
    let (explorer, stats) =
        Explorer::with_schedule(program, Default::default(), Vec::new(), opts, Some(cache))
            .map_err(|e| e.to_string())?;
    let after = cache.counters();
    Ok((explorer, stats, (after.0 - before.0, after.1 - before.1)))
}

impl Session {
    /// Parse and analyze `source`, seeding (and drawing from) `cache`.
    pub fn open(
        source: &str,
        opts: ScheduleOptions,
        cache: Arc<SummaryCache>,
    ) -> Result<Session, String> {
        let program = Box::new(suif_ir::parse_program(source).map_err(|e| e.to_string())?);
        // SAFETY: `program` is heap-allocated and lives in this session
        // until after `explorer` (field order) is dropped; the reference
        // never leaves the session.
        let pref: &'static Program = unsafe { &*(&*program as *const Program) };
        let (explorer, stats, delta) = build_explorer(pref, &opts, &cache)?;
        Ok(Session {
            explorer,
            program,
            cache,
            opts,
            last_stats: stats,
            last_cache_delta: delta,
            generation: 1,
        })
    }

    /// Replace the program with edited source.  The summary cache carries
    /// over, so only the dirty cone (edited procedures, id-shifted ones, and
    /// their transitive callers) is re-summarized.
    pub fn reload(&mut self, source: &str) -> Result<(), String> {
        let program = Box::new(suif_ir::parse_program(source).map_err(|e| e.to_string())?);
        // SAFETY: as in `open`.
        let pref: &'static Program = unsafe { &*(&*program as *const Program) };
        let (explorer, stats, delta) = build_explorer(pref, &self.opts, &self.cache)?;
        // Install the new pair; the old explorer (borrowing the old program)
        // is dropped here, before the old program.
        self.explorer = explorer;
        self.program = program;
        self.last_stats = stats;
        self.last_cache_delta = delta;
        self.generation += 1;
        Ok(())
    }

    /// Re-run the static analysis through the cache (a warm re-analysis of
    /// an unchanged program summarizes zero procedures) and report per-loop
    /// verdicts.
    pub fn analyze(&mut self) -> Json {
        let before = self.cache.counters();
        let config = self.explorer.analysis.config.clone();
        let (analysis, stats) = suif_analysis::Parallelizer::analyze_with(
            self.explorer.program,
            config,
            &self.opts,
            Some(&self.cache),
        );
        let after = self.cache.counters();
        self.explorer.analysis = analysis;
        self.last_stats = stats;
        self.last_cache_delta = (after.0 - before.0, after.1 - before.1);
        self.verdicts_json()
    }

    /// Per-loop verdicts of the current analysis, in source order.
    pub fn verdicts_json(&self) -> Json {
        let loops: Vec<Json> = self
            .explorer
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .map(|li| {
                let v = &self.explorer.analysis.verdicts[&li.stmt];
                let mut fields = vec![
                    ("loop", Json::str(&li.name)),
                    ("line", Json::int(li.line as i64)),
                    ("parallel", Json::Bool(v.is_parallel())),
                ];
                if let LoopVerdict::Sequential { deps, has_io, .. } = v {
                    fields.push((
                        "deps",
                        Json::Arr(deps.iter().map(|d| Json::str(&d.name)).collect()),
                    ));
                    fields.push(("io", Json::Bool(*has_io)));
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj([("loops", Json::Arr(loops))])
    }

    /// The Guru's ranked targets (§2.6).
    pub fn guru_json(&self) -> Json {
        let report = self.explorer.guru();
        let targets: Vec<Json> = report
            .targets
            .iter()
            .map(|t| {
                Json::obj([
                    ("loop", Json::str(&t.name)),
                    ("coverage", Json::Num(t.coverage)),
                    ("granularity", Json::Num(t.granularity)),
                    ("static_deps", Json::int(t.static_deps as i64)),
                    ("dynamic_dep", Json::Bool(t.dynamic_dep)),
                    ("important", Json::Bool(t.important)),
                ])
            })
            .collect();
        Json::obj([
            ("coverage", Json::Num(report.coverage)),
            ("granularity", Json::Num(report.granularity)),
            ("targets", Json::Arr(targets)),
            ("rendered", Json::str(report.render())),
        ])
    }

    /// Program/control slices for the first unresolved dependence of a loop
    /// (§2.6, Fig. 4-3).
    pub fn slice_json(&mut self, loop_name: &str) -> Result<Json, String> {
        let li = self
            .explorer
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == loop_name)
            .ok_or_else(|| format!("no loop `{loop_name}`"))?
            .clone();
        let slices = self.explorer.slices_for_dep(li.stmt, 0);
        let mut lines = std::collections::BTreeSet::new();
        let mut terminals = std::collections::BTreeSet::new();
        for (_, p, c) in &slices {
            lines.extend(p.lines.iter().copied());
            lines.extend(c.lines.iter().copied());
            for s in p.terminals.iter().chain(c.terminals.iter()) {
                if let Some((stmt, _)) = self.explorer.program.find_stmt(*s) {
                    terminals.insert(stmt.line());
                }
            }
        }
        let view = if slices.is_empty() {
            String::new()
        } else {
            suif_explorer::source_view(&self.explorer, li.line, li.end_line, &lines, &terminals)
        };
        Ok(Json::obj([
            ("loop", Json::str(loop_name)),
            ("slices", Json::int(slices.len() as i64)),
            (
                "lines",
                Json::Arr(lines.iter().map(|&l| Json::int(l as i64)).collect()),
            ),
            (
                "terminals",
                Json::Arr(terminals.iter().map(|&l| Json::int(l as i64)).collect()),
            ),
            ("view", Json::str(&view)),
        ]))
    }

    /// The annotated code view (§2.7).
    pub fn codeview_json(&self) -> Json {
        let guru = self.explorer.guru();
        Json::obj([(
            "view",
            Json::str(suif_explorer::codeview(&self.explorer, &guru)),
        )])
    }

    /// Daemon statistics: pass wall times, summary-cache traffic, worker
    /// utilization, and emptiness-memo counters.
    pub fn stats_json(&self) -> Json {
        let s = &self.last_stats;
        let (pe_hits, pe_misses) = suif_poly::prove_empty_cache_counters();
        Json::obj([
            ("generation", Json::int(self.generation as i64)),
            ("procs", Json::int(s.schedule.procs as i64)),
            ("levels", Json::int(s.schedule.levels as i64)),
            ("threads", Json::int(s.schedule.threads as i64)),
            ("summarized", Json::int(s.schedule.summarized as i64)),
            ("cache_hits", Json::int(s.schedule.cache_hits as i64)),
            ("cache_entries", Json::int(self.cache.len() as i64)),
            ("utilization", Json::Num(s.schedule.utilization())),
            (
                "passes",
                Json::obj([
                    ("summarize", Json::Num(s.schedule.wall_secs)),
                    ("liveness", Json::Num(s.liveness_secs)),
                    ("classify", Json::Num(s.classify_secs)),
                    ("total", Json::Num(s.total_secs)),
                ]),
            ),
            (
                "prove_empty",
                Json::obj([
                    ("hits", Json::int(pe_hits as i64)),
                    ("misses", Json::int(pe_misses as i64)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program t
proc inc(real q[*], int n) {
 int i
 do 1 i = 1, n {
  q[i] = q[i] + 1
 }
}
proc main() {
 real b[8]
 int i
 do 2 i = 1, 8 {
  b[i] = i
 }
 call inc(b, 8)
 print b[3]
}";

    #[test]
    fn session_loads_and_answers() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let v = s.verdicts_json();
        let loops = v.get("loops").and_then(Json::as_arr).unwrap();
        assert_eq!(loops.len(), 2);
        assert!(loops
            .iter()
            .all(|l| l.get("parallel").and_then(Json::as_bool) == Some(true)));
        assert_eq!(s.last_stats.schedule.summarized, 2);

        // Warm re-analysis of the unchanged program summarizes nothing.
        s.analyze();
        assert_eq!(s.last_stats.schedule.summarized, 0);
        assert_eq!(s.last_stats.schedule.cache_hits, 2);

        // Reload with an edit to main only: the leaf `inc` stays cached.
        let edited = SRC.replace("print b[3]", "print b[4]");
        s.reload(&edited).unwrap();
        assert_eq!(s.generation, 2);
        assert_eq!(s.last_stats.schedule.cache_hits, 1, "inc must hit");
        assert_eq!(s.last_stats.schedule.summarized, 1, "only main dirty");
    }

    #[test]
    fn session_guru_and_codeview() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let g = s.guru_json();
        assert!(g.get("coverage").and_then(Json::as_f64).is_some());
        let cv = s.codeview_json();
        assert!(cv
            .get("view")
            .and_then(Json::as_str)
            .unwrap()
            .contains("do"));
        assert!(s.slice_json("nosuch/1").is_err());
        let sl = s.slice_json("main/2").unwrap();
        assert_eq!(sl.get("loop").and_then(Json::as_str), Some("main/2"));
    }
}
