//! A resident Explorer session: owns the parsed program, the analysis, and
//! the cross-reload summary cache.
//!
//! The Explorer borrows the [`Program`] it analyzes; a daemon must own both.
//! [`Session`] puts the program behind an `Arc` (a stable heap address) and
//! extends the borrow to `'static` internally.  Safety rests on two
//! invariants: the `explorer` field is declared before `program` so it drops
//! first, and the extended reference never escapes the session (every public
//! return is owned JSON or plain data).  The `Arc` additionally keeps an old
//! program alive for any background speculation thread that still holds a
//! clone across a `reload`.
//!
//! # Speculative pre-classification
//!
//! With a non-zero speculation budget, every `guru` response spawns a
//! background thread that demands the classify and carried-dependence facts
//! of the top-ranked loops through the shared fact store, so the user's next
//! query on a ranked loop answers from the store.  Invalidation events
//! (`assert`, `reload`) bump an epoch counter the thread polls between
//! facts, cancelling the rest; a fact mid-`Running` when the event lands is
//! stored dirty by the store itself, so a stale answer is never served.
//! `stats` reports how many facts were speculated, how many were later
//! claimed by a query (hits), and how many an invalidation wasted.

use crate::json::Json;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use suif_analysis::{
    snapshot, AnalyzeStats, Assertion, FactKey, FactStore, LoopVerdict, ParallelizeConfig,
    Parallelizer, PassId, ScheduleOptions, Scope, SharedFactTier, SummaryCache,
};
use suif_explorer::Explorer;
use suif_ir::{Program, StmtId};

/// File name of the base fact snapshot inside a persist directory.
pub const SNAPSHOT_FILE: &str = "facts.snap";

/// File name of the snapshot append-log beside the base image.  Checkpoints
/// append O(delta) framed records here; a compaction folds the log back
/// into a fresh base.
pub const SNAPSHOT_LOG_FILE: &str = "facts.snap.log";

/// Compact once the log's record bytes reach both this floor and the base
/// image's size: a single assert appends a few hundred bytes without ever
/// triggering a whole-file rewrite, while a long assert-heavy session folds
/// its log away before replay cost rivals a cold start.
pub const COMPACT_MIN_LOG_BYTES: u64 = 4096;

/// What happened to the persisted fact snapshot when this session opened,
/// plus running checkpoint-cost counters, reported under `snapshot` in
/// `stats`.
#[derive(Clone, Debug)]
pub struct SnapshotReport {
    /// `"none"` (no persist dir or no file yet), `"loaded"` (imported after
    /// validation), or `"discarded"` (torn/corrupt/version-mismatched file
    /// dropped; cold start).
    pub status: &'static str,
    /// Persisted facts whose input hash matched the freshly computed
    /// expectation and were imported into the store.
    pub warm_hits: u64,
    /// Facts the opening analysis still had to compute (everything not
    /// covered by an imported fact).
    pub cold_misses: u64,
    /// Persisted entries dropped at load: stale input hash (the program or
    /// configuration moved) or undecodable bytes.  Each degrades to
    /// `Absent`, never to a wrong answer.
    pub evicted_stale: u64,
    /// Human-readable load problem, when the snapshot was discarded.
    pub warning: Option<String>,
    /// Wall-clock seconds spent reading, replaying, and importing the
    /// base+log image at open.
    pub load_secs: f64,
    /// Accumulated wall-clock seconds of every persistence write (appends,
    /// base writes, compactions) this session performed.
    pub save_secs: f64,
    /// Total bytes appended to the log by delta checkpoints (excludes base
    /// rewrites — the measure of O(delta) checkpoint cost).
    pub appended_bytes: u64,
    /// Whole-file base+log rewrites after the open (ratio-triggered
    /// compactions and reload-forced rewrites).
    pub compactions: u64,
}

impl Default for SnapshotReport {
    fn default() -> SnapshotReport {
        SnapshotReport {
            status: "none",
            warm_hits: 0,
            cold_misses: 0,
            evicted_stale: 0,
            warning: None,
            load_secs: 0.0,
            save_secs: 0.0,
            appended_bytes: 0,
            compactions: 0,
        }
    }
}

/// Durable-persistence bookkeeping: the base+log paths plus exactly what is
/// already on disk, so a checkpoint appends only the delta.
struct PersistState {
    /// The base snapshot image.
    base: PathBuf,
    /// The append-log beside it.
    log: PathBuf,
    /// Payload checksum of the on-disk base; the log header binds to it.
    base_checksum: u128,
    /// Size of the base file.
    base_bytes: u64,
    /// Size of the log file (header + records).
    log_bytes: u64,
    /// `key → input hash` of every fact durable in base+log.  A fact is
    /// appended only when absent or hash-moved — never rewritten whole.
    persisted: HashMap<FactKey, u128>,
    /// Fingerprints of durable emptiness-memo entries.
    persisted_memo: HashSet<u128>,
    /// No valid base exists on disk yet (fresh dir, discarded corruption,
    /// or a damaged log pending fold-in): the next write must be a full
    /// base+log rewrite.
    needs_base: bool,
}

impl PersistState {
    fn new(dir: &Path) -> PersistState {
        PersistState {
            base: dir.join(SNAPSHOT_FILE),
            log: dir.join(SNAPSHOT_LOG_FILE),
            base_checksum: 0,
            base_bytes: 0,
            log_bytes: 0,
            persisted: HashMap::new(),
            persisted_memo: HashSet::new(),
            needs_base: true,
        }
    }
}

/// Speculation bookkeeping shared with the background prefetch thread.
#[derive(Default)]
struct SpecState {
    /// Facts demanded speculatively (across all guru requests).
    spawned: u64,
    /// Speculated facts later claimed by an interactive query.
    hits: u64,
    /// Speculated facts discarded by an invalidation event.
    wasted: u64,
    /// Speculated facts not yet claimed or wasted.
    pending: HashSet<FactKey>,
}

/// One loaded program plus its resident analysis state.
pub struct Session {
    /// Borrows `program`; declared first so it drops first.
    explorer: Explorer<'static>,
    /// The owned program; `Arc` so its address survives moves of `Session`
    /// and the speculation thread can hold it across a `reload`.
    #[allow(dead_code)]
    program: Arc<Program>,
    cache: Arc<SummaryCache>,
    /// Fact store shared across analyses and reloads of this session;
    /// stale facts miss on their content hash, surviving ones are reused.
    /// In a multi-tenant daemon this is a thin overlay over `tier`.
    store: Arc<FactStore>,
    /// The process-wide content-addressed fact tier, when this session
    /// belongs to a multi-tenant daemon.  Snapshots export the tier once
    /// (the superset of every session's clean facts) instead of per
    /// session.
    tier: Option<Arc<SharedFactTier>>,
    opts: ScheduleOptions,
    /// Max ranked loops to pre-classify after each `guru` (0 = off).
    spec_budget: usize,
    /// Bumped on every invalidation event; the speculation thread stops
    /// when the epoch it started under is gone.
    spec_epoch: Arc<AtomicU64>,
    spec_state: Arc<Mutex<SpecState>>,
    spec_handle: Option<std::thread::JoinHandle<()>>,
    /// Stats of the most recent analysis run.
    pub last_stats: AnalyzeStats,
    /// `(hits, misses)` of the summary cache during the most recent run.
    pub last_cache_delta: (u64, u64),
    /// Completed `load`/`reload` requests.
    pub generation: u64,
    /// Durable base+log persistence state, when persistence is on.
    persist: Option<PersistState>,
    /// How the snapshot load went at `open` time (see [`SnapshotReport`]).
    pub snapshot: SnapshotReport,
    /// Accumulated race-certification counters, reported under
    /// `certification` in `stats`.
    cert: CertCounters,
}

/// Running totals across every `certify` request of this session.
#[derive(Default)]
struct CertCounters {
    /// Loops certified (each loop × request counts once).
    loops: u64,
    /// Adversarial schedules executed.
    schedules: u64,
    /// Races reported across all schedules.
    races: u64,
}

/// Everything that shapes how a [`Session`] opens.  The legacy
/// constructors are thin wrappers over this; the multi-tenant daemon
/// fills in `tier` and `budget`.
#[derive(Clone, Default)]
pub struct SessionConfig {
    /// Worker-thread configuration for the analysis executors.
    pub opts: ScheduleOptions,
    /// Max ranked loops to pre-classify after each `guru` (0 = off).
    pub spec_budget: usize,
    /// Directory holding the durable fact snapshot, when persistence is on.
    pub persist_dir: Option<PathBuf>,
    /// Process-wide content-addressed fact tier to read through and publish
    /// into; `None` gives the classic single-tenant store.
    pub tier: Option<Arc<SharedFactTier>>,
    /// Per-session byte budget for resident facts (`None` = unbounded).
    pub budget: Option<usize>,
    /// Daemon-assigned session id; tags tier publishes for per-session
    /// accounting and eviction fairness (`0` = anonymous/single-tenant).
    pub session_id: u64,
}

/// Load the base snapshot (if it exists), replay the append-log over it,
/// and import every merged entry whose input hash matches `expected` into
/// `store` (and into `tier`, when this session reads through one).  A
/// corrupt or version-mismatched base discards the whole image; a damaged
/// log degrades (ignored if bound to another base — e.g. after a
/// mid-compaction crash — or replayed up to its first torn record) and
/// schedules a full rewrite; stale or undecodable entries degrade
/// individually.
fn load_persisted(
    ps: &mut PersistState,
    store: &FactStore,
    tier: Option<&SharedFactTier>,
    expected: &HashMap<FactKey, u128>,
) -> SnapshotReport {
    let mut report = SnapshotReport::default();
    let base_bytes = match std::fs::read(&ps.base) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return report,
        Err(e) => {
            let w = format!(
                "snapshot {}: read failed: {e}; cold start",
                ps.base.display()
            );
            eprintln!("warning: {w}");
            report.status = "discarded";
            report.warning = Some(w);
            return report;
        }
    };
    let log_bytes = std::fs::read(&ps.log).ok();
    match snapshot::merge_image(&base_bytes, log_bytes.as_deref()) {
        Ok(img) => {
            // The durable set is what the *file* holds (pre-validation):
            // a stale entry is physically present, and its replacement
            // (same key, fresh hash) must be appended, not skipped.
            ps.persisted = img.facts.iter().map(|f| (f.key, f.hash)).collect();
            ps.persisted_memo = img
                .prove_empty
                .iter()
                .map(|(cs, r)| snapshot::memo_fingerprint(cs, *r))
                .collect();
            ps.base_checksum = img.base_checksum;
            ps.base_bytes = base_bytes.len() as u64;
            ps.log_bytes = log_bytes.map(|b| b.len() as u64).unwrap_or(0);
            // A valid base with a damaged/foreign log still warm-starts
            // from what replayed, but the next write folds everything into
            // a fresh base+log pair instead of appending to damage.
            ps.needs_base = img.log_ignored || img.log_truncated;
            let mut evicted = img.undecodable;
            let mut valid = Vec::new();
            for f in img.facts {
                if expected.get(&f.key) == Some(&f.hash) {
                    valid.push(f);
                } else {
                    evicted += 1;
                }
            }
            if let Some(t) = tier {
                t.import(&valid);
            }
            report.warm_hits = store.import(valid) as u64;
            report.evicted_stale = evicted;
            suif_poly::import_prove_empty_memo(&img.prove_empty);
            report.status = "loaded";
        }
        Err(e) => {
            let w = format!("snapshot {}: {e}; cold start", ps.base.display());
            eprintln!("warning: {w}");
            report.status = "discarded";
            report.warning = Some(w);
        }
    }
    report
}

fn build_explorer(
    program: &'static Program,
    opts: &ScheduleOptions,
    cache: &SummaryCache,
    store: Arc<FactStore>,
) -> Result<(Explorer<'static>, AnalyzeStats, (u64, u64)), String> {
    let before = cache.counters();
    let (explorer, stats) = Explorer::with_store(
        program,
        Default::default(),
        Vec::new(),
        opts,
        Some(cache),
        store,
    )
    .map_err(|e| e.to_string())?;
    let after = cache.counters();
    Ok((explorer, stats, (after.0 - before.0, after.1 - before.1)))
}

impl Session {
    /// Parse and analyze `source`, seeding (and drawing from) `cache`.
    /// Speculative pre-classification is off; see
    /// [`Session::open_with_speculation`].
    pub fn open(
        source: &str,
        opts: ScheduleOptions,
        cache: Arc<SummaryCache>,
    ) -> Result<Session, String> {
        Session::open_with_speculation(source, opts, cache, 0)
    }

    /// [`Session::open`] with a speculation budget: after each `guru`, the
    /// classify and carried-dependence facts of up to `spec_budget`
    /// top-ranked loops are demanded on a background thread.
    pub fn open_with_speculation(
        source: &str,
        opts: ScheduleOptions,
        cache: Arc<SummaryCache>,
        spec_budget: usize,
    ) -> Result<Session, String> {
        Session::open_with_persistence(source, opts, cache, spec_budget, None)
    }

    /// [`Session::open_with_speculation`] plus durable persistence: the
    /// base snapshot `persist_dir/facts.snap` with its append-log replayed
    /// over it is loaded (after validating every entry against freshly
    /// computed input hashes) before the opening analysis; `assert`, an
    /// explicit `checkpoint`, and drop then append O(delta) records to the
    /// log, with a size/ratio-triggered compaction folding the log back
    /// into a fresh base atomically.
    pub fn open_with_persistence(
        source: &str,
        opts: ScheduleOptions,
        cache: Arc<SummaryCache>,
        spec_budget: usize,
        persist_dir: Option<&Path>,
    ) -> Result<Session, String> {
        Session::open_cfg(
            source,
            cache,
            SessionConfig {
                opts,
                spec_budget,
                persist_dir: persist_dir.map(Path::to_path_buf),
                tier: None,
                budget: None,
                session_id: 0,
            },
        )
    }

    /// The fully general constructor: [`Session::open_with_persistence`]
    /// plus an optional process-wide fact tier to share through and a
    /// per-session byte budget for resident facts.
    pub fn open_cfg(
        source: &str,
        cache: Arc<SummaryCache>,
        cfg: SessionConfig,
    ) -> Result<Session, String> {
        let SessionConfig {
            opts,
            spec_budget,
            persist_dir,
            tier,
            budget,
            session_id,
        } = cfg;
        let program = Arc::new(suif_ir::parse_program(source).map_err(|e| e.to_string())?);
        // SAFETY: the program is heap-allocated behind an `Arc` held by this
        // session until after `explorer` (field order) is dropped; the
        // reference never leaves the session.
        let pref: &'static Program = unsafe { &*(&*program as *const Program) };
        let store = Arc::new(match &tier {
            Some(t) => FactStore::with_shared(t.clone()),
            None => FactStore::new(),
        });
        store.set_budget(budget);
        store.set_owner(session_id);
        let mut persist = persist_dir.map(|d| PersistState::new(&d));
        let mut report = SnapshotReport::default();
        if let Some(ps) = &mut persist {
            // The explorer always analyzes under the default configuration
            // (see `build_explorer`), so the expected hashes are computed
            // for it; a snapshot persisted under any other configuration
            // simply misses and is evicted as stale.
            let t0 = Instant::now();
            let expected =
                Parallelizer::expected_fact_hashes(&program, &ParallelizeConfig::default());
            report = load_persisted(ps, &store, tier.as_deref(), &expected);
            report.load_secs = t0.elapsed().as_secs_f64();
        }
        let (explorer, stats, delta) = build_explorer(pref, &opts, &cache, store.clone())?;
        report.cold_misses = stats.facts_computed;
        let mut session = Session {
            explorer,
            program,
            cache,
            store,
            tier,
            opts,
            spec_budget,
            spec_epoch: Arc::new(AtomicU64::new(0)),
            spec_state: Arc::new(Mutex::new(SpecState::default())),
            spec_handle: None,
            last_stats: stats,
            last_cache_delta: delta,
            generation: 1,
            persist,
            snapshot: report,
            cert: CertCounters::default(),
        };
        // Persist the freshly opened state so even a kill -9 before the
        // first invalidation event restarts warm: a fresh dir gets its
        // base image, a warm start appends whatever the open computed.
        session.persist_now();
        Ok(session)
    }

    /// Everything durable right now.  Only `Ready`+valid slots are
    /// exported, so a checkpoint taken mid-speculation never persists
    /// `Running` or invalidated results.  With a shared tier, the tier is
    /// exported instead of the per-session overlay — one snapshot covers
    /// every tenant's clean facts, and assertion-tainted overlay entries
    /// (never published to the tier) stay out of the durable state.
    fn export_all(&self) -> Vec<suif_analysis::ExportedFact> {
        match &self.tier {
            Some(t) => t.export(),
            None => self.store.export(),
        }
    }

    /// Checkpoint: append the delta (or write the initial base), folding
    /// the log into a fresh base when it has grown past the compaction
    /// threshold.  A no-op without persistence; IO failures warn on stderr
    /// but never fail the triggering request.
    fn persist_now(&mut self) {
        if self.persist.is_none() {
            return;
        }
        if let Err(e) = self.checkpoint_inner() {
            let ps = self.persist.as_ref().unwrap();
            eprintln!(
                "warning: snapshot {}: write failed: {e}; continuing without persistence",
                ps.base.display()
            );
        }
    }

    /// The checkpoint body shared by the auto-save path and the explicit
    /// `checkpoint` request.  Returns `(delta_facts, bytes_written)`.
    fn checkpoint_inner(&mut self) -> std::io::Result<(usize, usize)> {
        let t0 = Instant::now();
        let out = if self.persist.as_ref().unwrap().needs_base {
            self.rewrite_base()
        } else {
            let appended = self.append_delta()?;
            self.maybe_compact()?;
            Ok(appended)
        };
        self.snapshot.save_secs += t0.elapsed().as_secs_f64();
        out
    }

    /// Write the full durable state as a fresh base image, then reset the
    /// log to a header bound to it.  Both writes are atomic; a crash
    /// between them leaves the new base with the *old* log, whose binding
    /// checksum no longer matches — the stale log is ignored on load, so
    /// the crash costs recomputation, never correctness.
    fn rewrite_base(&mut self) -> std::io::Result<(usize, usize)> {
        let snap = snapshot::Snapshot::new(self.export_all(), suif_poly::export_prove_empty_memo());
        let bytes = snap.encode();
        let ps = self.persist.as_mut().unwrap();
        snapshot::write_atomic(&ps.base, &bytes)?;
        let checksum = snapshot::file_checksum(&bytes).expect("encoded snapshot has a header");
        let header = snapshot::log_header(checksum);
        snapshot::write_atomic(&ps.log, &header)?;
        ps.base_checksum = checksum;
        ps.base_bytes = bytes.len() as u64;
        ps.log_bytes = header.len() as u64;
        ps.needs_base = false;
        ps.persisted = snap.facts.iter().map(|f| (f.key, f.hash)).collect();
        ps.persisted_memo = snap
            .prove_empty
            .iter()
            .map(|(cs, r)| snapshot::memo_fingerprint(cs, *r))
            .collect();
        Ok((snap.facts.len(), bytes.len()))
    }

    /// Append one framed record holding only what is not yet durable:
    /// facts whose `(key, hash)` moved and new emptiness-memo entries.
    /// O(delta) — the cost no longer scales with the total fact count.
    fn append_delta(&mut self) -> std::io::Result<(usize, usize)> {
        let facts = self.export_all();
        let memo = suif_poly::export_prove_empty_memo();
        let ps = self.persist.as_mut().unwrap();
        let delta: Vec<_> = facts
            .into_iter()
            .filter(|f| ps.persisted.get(&f.key) != Some(&f.hash))
            .collect();
        let memo_delta: Vec<_> = memo
            .into_iter()
            .filter(|(cs, r)| !ps.persisted_memo.contains(&snapshot::memo_fingerprint(cs, *r)))
            .collect();
        if delta.is_empty() && memo_delta.is_empty() {
            return Ok((0, 0));
        }
        let durable_facts: Vec<(FactKey, u128)> = delta.iter().map(|f| (f.key, f.hash)).collect();
        let durable_memo: Vec<u128> = memo_delta
            .iter()
            .map(|(cs, r)| snapshot::memo_fingerprint(cs, *r))
            .collect();
        let record = snapshot::encode_log_record(delta, memo_delta);
        {
            use std::io::Write;
            let mut fh = std::fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(&ps.log)?;
            // An empty log (e.g. removed out-of-band) needs its binding
            // header first, or the whole log is ignored at the next load.
            if fh.metadata()?.len() == 0 {
                fh.write_all(&snapshot::log_header(ps.base_checksum))?;
                ps.log_bytes = snapshot::LOG_HEADER_LEN as u64;
            }
            fh.write_all(&record)?;
        }
        ps.log_bytes += record.len() as u64;
        ps.persisted.extend(durable_facts.iter().copied());
        ps.persisted_memo.extend(durable_memo);
        self.snapshot.appended_bytes += record.len() as u64;
        Ok((durable_facts.len(), record.len()))
    }

    /// Fold the log into a fresh base once its record bytes reach both the
    /// [`COMPACT_MIN_LOG_BYTES`] floor and the base image's own size.
    fn maybe_compact(&mut self) -> std::io::Result<()> {
        let ps = self.persist.as_ref().unwrap();
        let records = ps
            .log_bytes
            .saturating_sub(snapshot::LOG_HEADER_LEN as u64);
        if records >= COMPACT_MIN_LOG_BYTES.max(ps.base_bytes) {
            self.rewrite_base()?;
            self.snapshot.compactions += 1;
        }
        Ok(())
    }

    /// Explicit `checkpoint` request: append the delta (compacting when
    /// due) and report what was persisted.  Errors (no persist dir, IO
    /// failure) surface to the client instead of being downgraded to
    /// warnings.
    pub fn checkpoint_json(&mut self) -> Result<Json, String> {
        if self.persist.is_none() {
            return Err("persistence is off (start with --persist-dir)".into());
        }
        let (delta_facts, bytes) = self.checkpoint_inner().map_err(|e| {
            let ps = self.persist.as_ref().unwrap();
            format!("snapshot {}: write failed: {e}", ps.base.display())
        })?;
        let ps = self.persist.as_ref().unwrap();
        Ok(Json::obj([
            ("path", Json::str(ps.base.display().to_string())),
            ("facts", Json::int(ps.persisted.len() as i64)),
            ("delta_facts", Json::int(delta_facts as i64)),
            ("bytes", Json::int(bytes as i64)),
            ("log_bytes", Json::int(ps.log_bytes as i64)),
            ("compactions", Json::int(self.snapshot.compactions as i64)),
        ]))
    }

    /// Replace the program with edited source.  The summary cache and fact
    /// store carry over, so only the dirty cone (edited procedures,
    /// id-shifted ones, and their transitive callers) is re-summarized and
    /// only hash-mismatched facts are recomputed.  In-flight speculation is
    /// cancelled and everything it pre-computed is written off as wasted.
    pub fn reload(&mut self, source: &str) -> Result<(), String> {
        self.cancel_speculation();
        self.spec_waste_all();
        let program = Arc::new(suif_ir::parse_program(source).map_err(|e| e.to_string())?);
        // SAFETY: as in `open_with_speculation`.
        let pref: &'static Program = unsafe { &*(&*program as *const Program) };
        let (explorer, stats, delta) =
            build_explorer(pref, &self.opts, &self.cache, self.store.clone())?;
        // A reload rebuilds under the default (assertion-free) config, so
        // the store's facts are assertion-independent again and may publish
        // to the shared tier.
        self.store.set_assert_local(false);
        // Install the new pair; the old explorer (borrowing the old program)
        // is dropped here, before the old program.  A speculation thread
        // still holding the old `Arc` keeps the old program alive until it
        // notices the epoch moved.
        self.explorer = explorer;
        self.program = program;
        self.last_stats = stats;
        self.last_cache_delta = delta;
        self.generation += 1;
        // A reload churns many keys at once and orphans facts for deleted
        // scopes; fold everything into a fresh base instead of appending a
        // near-full-image delta to the log.
        if let Some(ps) = &mut self.persist {
            ps.needs_base = true;
        }
        self.persist_now();
        Ok(())
    }

    /// Bump the invalidation epoch and wait out any in-flight speculation
    /// (it polls the epoch between facts, so the join is bounded by one
    /// pass).
    fn cancel_speculation(&mut self) {
        self.spec_epoch.fetch_add(1, Ordering::SeqCst);
        if let Some(h) = self.spec_handle.take() {
            let _ = h.join();
        }
    }

    /// Test/bench hook: block until background speculation finishes.
    pub fn wait_speculation(&mut self) {
        if let Some(h) = self.spec_handle.take() {
            let _ = h.join();
        }
    }

    /// Write off every pending speculated fact (a whole-program event).
    fn spec_waste_all(&self) {
        let mut st = self.spec_state.lock().unwrap();
        st.wasted += st.pending.len() as u64;
        st.pending.clear();
    }

    /// Write off the speculated facts an assertion on `stmt` invalidates:
    /// the loop's own classification, and every carried-dependence fact
    /// (their input hash folds the assertion epoch, so all of them are
    /// stale).
    fn spec_waste_assert(&self, stmt: StmtId) {
        let mut st = self.spec_state.lock().unwrap();
        let doomed: Vec<FactKey> = st
            .pending
            .iter()
            .filter(|k| k.pass == PassId::Deps || k.scope == Scope::Loop(stmt))
            .copied()
            .collect();
        for k in doomed {
            st.pending.remove(&k);
            st.wasted += 1;
        }
    }

    /// Claim speculated facts an interactive query just consumed.
    fn spec_claim(&self, keys: &[FactKey]) {
        let mut st = self.spec_state.lock().unwrap();
        for k in keys {
            if st.pending.remove(k) {
                st.hits += 1;
            }
        }
    }

    /// Spawn the background prefetch of the top-ranked loops' facts.
    pub(crate) fn spawn_speculation(&mut self, ranked: Vec<String>) {
        if self.spec_budget == 0 || ranked.is_empty() {
            return;
        }
        // One speculation at a time: retire (and cancel) the previous run.
        self.cancel_speculation();
        let names: Vec<String> = ranked.into_iter().take(self.spec_budget).collect();
        let program = self.program.clone();
        let store = self.store.clone();
        let cache = self.cache.clone();
        let config = self.explorer.analysis.config.clone();
        let opts = self.opts.clone();
        let epoch = self.spec_epoch.clone();
        let my_epoch = epoch.load(Ordering::SeqCst);
        let state = self.spec_state.clone();
        self.spec_handle = Some(std::thread::spawn(move || {
            let cancel = move || epoch.load(Ordering::SeqCst) != my_epoch;
            let out = Parallelizer::prefetch_loops(
                &program,
                config,
                &opts,
                Some(&cache),
                &store,
                &names,
                &cancel,
            );
            let mut st = state.lock().unwrap();
            st.spawned += out.keys.len() as u64;
            st.pending.extend(out.keys);
        }));
    }

    /// Re-run the static analysis through the fact store (a warm
    /// re-analysis of an unchanged program reuses every fact and runs no
    /// pass) and report per-loop verdicts.
    pub fn analyze(&mut self) -> Json {
        // Let in-flight speculation land first so the run's counter deltas
        // are not interleaved with background demands.
        self.wait_speculation();
        let before = self.cache.counters();
        let config = self.explorer.analysis.config.clone();
        let (analysis, stats) = suif_analysis::Parallelizer::analyze_in(
            self.explorer.program,
            config,
            &self.opts,
            Some(&self.cache),
            &self.store,
        );
        let after = self.cache.counters();
        self.explorer.analysis = analysis;
        self.last_stats = stats;
        self.last_cache_delta = (after.0 - before.0, after.1 - before.1);
        let loops = self
            .verdicts_json()
            .get("loops")
            .cloned()
            .unwrap_or(Json::Arr(vec![]));
        Json::obj([
            ("loops", loops),
            ("warnings", warnings_json(&self.explorer)),
        ])
    }

    /// Check and apply one user assertion (§2.8): an invalidation event
    /// that replays only the asserted loop's classification and its
    /// dependent facts.  Returns the checker verdict, the refreshed loop
    /// verdicts, and any unresolved-assertion warnings.
    pub fn assert_json(&mut self, loop_name: &str, var: &str, independent: bool) -> Json {
        let a = if independent {
            Assertion::Independent {
                loop_name: loop_name.into(),
                var: var.into(),
            }
        } else {
            Assertion::Privatizable {
                loop_name: loop_name.into(),
                var: var.into(),
            }
        };
        // An assertion is an invalidation event: stop speculation and write
        // off the speculated facts whose input hashes it moves.
        self.cancel_speculation();
        if let Some(stmt) = self
            .explorer
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == loop_name)
            .map(|l| l.stmt)
        {
            self.spec_waste_assert(stmt);
        }
        let (res, stats) = self.explorer.assert_and_reanalyze_with_stats(a);
        // Facts computed under user assertions are this tenant's opinion,
        // not ground truth: keep them in the private overlay (summaries and
        // liveness are assertion-independent and still share).
        self.store
            .set_assert_local(!self.explorer.analysis.config.assertions.is_empty());
        if let Some(stats) = stats {
            self.last_stats = stats;
        }
        let (verdict, detail) = match &res {
            suif_explorer::CheckResult::Consistent => ("consistent", String::new()),
            suif_explorer::CheckResult::Warning(w) => ("warning", w.clone()),
            suif_explorer::CheckResult::Contradicted(w) => ("contradicted", w.clone()),
        };
        let mut fields = vec![
            ("assertion", Json::str(verdict)),
            (
                "loops",
                self.verdicts_json()
                    .get("loops")
                    .cloned()
                    .unwrap_or(Json::Arr(vec![])),
            ),
            ("warnings", warnings_json(&self.explorer)),
        ];
        if !detail.is_empty() {
            fields.insert(1, ("detail", Json::str(&detail)));
        }
        self.persist_now();
        Json::obj(fields)
    }

    /// The demand-driven advisories (contraction §5.6, decomposition
    /// §4.2.4, block splitting §5.5) — computed on first request, served
    /// from the fact store afterwards.
    pub fn advisory_json(&self) -> Json {
        // Demand all three program-scope advisory facts concurrently; on a
        // warm store each is a reuse hit.
        let (contractions_fact, advisory, splits_fact) = self.explorer.all_advisories();
        let contractions: Vec<Json> = contractions_fact
            .iter()
            .map(|c| {
                Json::obj([
                    ("var", Json::str(&self.explorer.program.var(c.var).name)),
                    ("dim", Json::int(c.dim as i64)),
                ])
            })
            .collect();
        let conflicts: Vec<Json> = advisory
            .conflicts
            .iter()
            .map(|c| {
                Json::obj([
                    ("object", Json::str(&c.object_name)),
                    ("a", Json::str(&c.a.0)),
                    ("b", Json::str(&c.b.0)),
                ])
            })
            .collect();
        let splits: Vec<Json> = splits_fact
            .iter()
            .map(|s| {
                Json::obj([
                    ("block", Json::str(&s.name)),
                    ("groups", Json::int(s.groups.len() as i64)),
                ])
            })
            .collect();
        Json::obj([
            ("contractions", Json::Arr(contractions)),
            ("decomp_conflicts", Json::Arr(conflicts)),
            ("splits", Json::Arr(splits)),
        ])
    }

    /// Per-loop verdicts of the current analysis, in source order.
    pub fn verdicts_json(&self) -> Json {
        let loops: Vec<Json> = self
            .explorer
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .map(|li| {
                let v = &self.explorer.analysis.verdicts[&li.stmt];
                let mut fields = vec![
                    ("loop", Json::str(&li.name)),
                    ("line", Json::int(li.line as i64)),
                    ("parallel", Json::Bool(v.is_parallel())),
                ];
                if let LoopVerdict::Sequential { deps, has_io, .. } = v {
                    fields.push((
                        "deps",
                        Json::Arr(deps.iter().map(|d| Json::str(&d.name)).collect()),
                    ));
                    fields.push(("io", Json::Bool(*has_io)));
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj([("loops", Json::Arr(loops))])
    }

    /// The Guru's ranked targets (§2.6).  With a speculation budget, the
    /// top-ranked loops' classify and carried-dependence facts are demanded
    /// on a background thread before the user asks.
    pub fn guru_json(&mut self) -> Json {
        let report = self.explorer.guru();
        let targets: Vec<Json> = report
            .targets
            .iter()
            .map(|t| {
                Json::obj([
                    ("loop", Json::str(&t.name)),
                    ("coverage", Json::Num(t.coverage)),
                    ("granularity", Json::Num(t.granularity)),
                    ("static_deps", Json::int(t.static_deps as i64)),
                    ("dynamic_dep", Json::Bool(t.dynamic_dep)),
                    ("important", Json::Bool(t.important)),
                ])
            })
            .collect();
        let payload = Json::obj([
            ("coverage", Json::Num(report.coverage)),
            ("granularity", Json::Num(report.granularity)),
            ("targets", Json::Arr(targets)),
            ("rendered", Json::str(report.render())),
            ("warnings", warnings_json(&self.explorer)),
        ]);
        self.spawn_speculation(speculation_order(&report.targets));
        payload
    }

    /// Program/control slices for the first unresolved dependence of a loop
    /// (§2.6, Fig. 4-3).
    pub fn slice_json(&mut self, loop_name: &str) -> Result<Json, String> {
        let li = self
            .explorer
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == loop_name)
            .ok_or_else(|| format!("no loop `{loop_name}`"))?
            .clone();
        // The slice answers from the loop's classification and carried-deps
        // facts — exactly what speculation pre-computes for ranked loops.
        self.spec_claim(&[
            FactKey::new(PassId::Classify, Scope::Loop(li.stmt)),
            FactKey::new(PassId::Deps, Scope::Loop(li.stmt)),
        ]);
        let carried = self.explorer.carried_deps(li.stmt);
        let carried_json: Vec<Json> = carried
            .iter()
            .map(|(obj, kind)| {
                Json::obj([
                    (
                        "object",
                        Json::str(self.explorer.analysis.ctx.array_name(*obj)),
                    ),
                    (
                        "kind",
                        Json::str(kind.map(|k| format!("{k:?}")).unwrap_or_default()),
                    ),
                ])
            })
            .collect();
        let slices = self.explorer.slices_for_dep(li.stmt, 0);
        let mut lines = std::collections::BTreeSet::new();
        let mut terminals = std::collections::BTreeSet::new();
        for (_, p, c) in &slices {
            lines.extend(p.lines.iter().copied());
            lines.extend(c.lines.iter().copied());
            for s in p.terminals.iter().chain(c.terminals.iter()) {
                if let Some((stmt, _)) = self.explorer.program.find_stmt(*s) {
                    terminals.insert(stmt.line());
                }
            }
        }
        let view = if slices.is_empty() {
            String::new()
        } else {
            suif_explorer::source_view(&self.explorer, li.line, li.end_line, &lines, &terminals)
        };
        Ok(Json::obj([
            ("loop", Json::str(loop_name)),
            ("carried_deps", Json::Arr(carried_json)),
            ("slices", Json::int(slices.len() as i64)),
            (
                "lines",
                Json::Arr(lines.iter().map(|&l| Json::int(l as i64)).collect()),
            ),
            (
                "terminals",
                Json::Arr(terminals.iter().map(|&l| Json::int(l as i64)).collect()),
            ),
            ("view", Json::str(&view)),
        ]))
    }

    /// Race-certify loops under adversarial schedules: parallel loops run
    /// under their production privatization plan (expected race-free with
    /// sequential-identical output), serial loops under the minimal
    /// always-legal plan (so statically reported carried dependences
    /// manifest as detected races).  `loop_name = None` certifies every
    /// loop; a named loop additionally mirrors its report at the top level
    /// as `{loop, schedules_run, races}`.
    pub fn certify_json(
        &mut self,
        loop_name: Option<&str>,
        schedules: u32,
        seed: u64,
    ) -> Result<Json, String> {
        let program: &Program = self.explorer.program;
        let analysis = &self.explorer.analysis;
        let plans = suif_parallel::ParallelPlans::from_analysis(analysis);
        let mut inputs = analysis.certify_inputs();
        if let Some(name) = loop_name {
            inputs.retain(|i| i.name == name);
            if inputs.is_empty() {
                return Err(format!("no loop `{name}`"));
            }
        }
        let mut loops = Vec::new();
        let mut single = None;
        for info in &inputs {
            let plan = if info.parallel {
                plans.loops.get(&info.stmt).cloned()
            } else {
                suif_parallel::plan::minimal_plan(program, info.stmt)
            };
            let Some(plan) = plan else {
                loops.push(Json::obj([
                    ("loop", Json::str(&info.name)),
                    ("line", Json::int(info.line as i64)),
                    ("parallel", Json::Bool(info.parallel)),
                    ("plannable", Json::Bool(false)),
                ]));
                continue;
            };
            let cert = suif_parallel::certify_loop(
                program,
                info.stmt,
                &plan,
                &suif_parallel::CertifyOptions {
                    schedules,
                    seed,
                    ..Default::default()
                },
            );
            self.cert.loops += 1;
            self.cert.schedules += cert.schedules_run() as u64;
            self.cert.races += cert.race_count() as u64;
            let races: Vec<Json> = cert
                .schedules
                .iter()
                .flat_map(|s| s.outcome.races.iter().map(move |r| (s.seed, r)))
                .map(|(sched_seed, r)| {
                    Json::obj([
                        ("kind", Json::str(r.kind())),
                        ("addr", Json::int(r.addr as i64)),
                        ("schedule_seed", Json::int(sched_seed as i64)),
                        ("first_var", Json::str(&program.var(r.first.var).name)),
                        ("first_line", Json::int(r.first.line as i64)),
                        ("first_iter", Json::int(r.first.thread as i64)),
                        ("second_var", Json::str(&program.var(r.second.var).name)),
                        ("second_line", Json::int(r.second.line as i64)),
                        ("second_iter", Json::int(r.second.thread as i64)),
                    ])
                })
                .collect();
            let elapsed: f64 = cert.schedules.iter().map(|s| s.elapsed.as_secs_f64()).sum();
            let agg = |f: fn(&suif_dynamic::CertOutcome) -> u64| {
                Json::int(cert.schedules.iter().map(|s| f(&s.outcome)).sum::<u64>() as i64)
            };
            let entry = Json::obj([
                ("loop", Json::str(&info.name)),
                ("line", Json::int(info.line as i64)),
                ("parallel", Json::Bool(info.parallel)),
                ("plannable", Json::Bool(true)),
                ("plain_doall", Json::Bool(info.plain_doall)),
                ("schedules_run", Json::int(cert.schedules_run() as i64)),
                ("race_free", Json::Bool(cert.race_free())),
                ("races", Json::Arr(races)),
                ("iterations", agg(|o| o.iterations)),
                ("shared_accesses", agg(|o| o.shared_accesses)),
                ("schedule_decisions", agg(|o| o.schedule_decisions)),
                ("schedule_switches", agg(|o| o.schedule_switches)),
                ("unplannable_invocations", agg(|o| o.unplannable)),
                ("secs", Json::Num(elapsed)),
            ]);
            if loop_name.is_some() {
                single = Some((
                    info.name.clone(),
                    cert.schedules_run(),
                    entry.get("races").cloned().unwrap_or(Json::Arr(vec![])),
                ));
            }
            loops.push(entry);
        }
        let mut fields = vec![
            ("seed", Json::int(seed as i64)),
            ("loops", Json::Arr(loops)),
            ("poly", self.poly_json()),
        ];
        if let Some((name, run, races)) = single {
            fields.push(("loop", Json::str(name)));
            fields.push(("schedules_run", Json::int(run as i64)));
            fields.push(("races", races));
        }
        Ok(Json::obj(fields))
    }

    /// The annotated code view (§2.7).
    pub fn codeview_json(&self) -> Json {
        let guru = self.explorer.guru();
        Json::obj([(
            "view",
            Json::str(suif_explorer::codeview(&self.explorer, &guru)),
        )])
    }

    /// Daemon statistics: per-pass timings and invocation/reuse counters
    /// from the fact store, summary-cache traffic, worker utilization, and
    /// emptiness-memo counters.
    pub fn stats_json(&self) -> Json {
        let s = &self.last_stats;
        let (pe_hits, pe_misses) = suif_poly::prove_empty_cache_counters();
        let mut passes: Vec<(&'static str, Json)> = s
            .passes
            .iter()
            .map(|p| {
                (
                    p.pass.name(),
                    Json::obj([
                        ("secs", Json::Num(p.secs)),
                        ("invocations", Json::int(p.invocations as i64)),
                        ("reused", Json::int(p.reused as i64)),
                        ("shared", Json::int(p.shared as i64)),
                    ]),
                )
            })
            .collect();
        passes.push(("total", Json::Num(s.total_secs)));
        let worker_secs = |v: &[f64]| Json::Arr(v.iter().map(|&b| Json::Num(b)).collect());
        let spec = self.spec_state.lock().unwrap();
        let mut fields = vec![
            ("generation", Json::int(self.generation as i64)),
            ("procs", Json::int(s.schedule.procs as i64)),
            ("levels", Json::int(s.schedule.levels as i64)),
            ("threads", Json::int(s.schedule.threads as i64)),
            ("summarized", Json::int(s.schedule.summarized as i64)),
            ("cache_hits", Json::int(s.schedule.cache_hits as i64)),
            ("cache_entries", Json::int(self.cache.len() as i64)),
            ("utilization", Json::Num(s.schedule.utilization())),
            (
                "workers",
                Json::obj([
                    (
                        "schedule_busy_secs",
                        worker_secs(&s.schedule.worker_busy_secs),
                    ),
                    (
                        "demand_busy_secs",
                        worker_secs(&s.demand_exec.worker_busy_secs),
                    ),
                    ("demand_wall_secs", Json::Num(s.demand_exec.wall_secs)),
                ]),
            ),
            ("passes", Json::obj(passes)),
            ("facts", self.facts_json()),
            (
                "speculation",
                Json::obj([
                    ("budget", Json::int(self.spec_budget as i64)),
                    ("spawned", Json::int(spec.spawned as i64)),
                    ("hits", Json::int(spec.hits as i64)),
                    ("wasted", Json::int(spec.wasted as i64)),
                    ("pending", Json::int(spec.pending.len() as i64)),
                ]),
            ),
            (
                "prove_empty",
                Json::obj([
                    ("hits", Json::int(pe_hits as i64)),
                    ("misses", Json::int(pe_misses as i64)),
                ]),
            ),
            (
                "certification",
                Json::obj([
                    ("loops_certified", Json::int(self.cert.loops as i64)),
                    ("schedules_run", Json::int(self.cert.schedules as i64)),
                    ("races_found", Json::int(self.cert.races as i64)),
                ]),
            ),
            ("poly", self.poly_json()),
            ("snapshot", self.snapshot_json()),
        ];
        if let Some(t) = &self.tier {
            fields.push(("tier", tier_json(t)));
        }
        Json::obj(fields)
    }

    /// The `facts` object of `stats`: computation/reuse counters plus the
    /// resident-byte accounting of this session's store.
    fn facts_json(&self) -> Json {
        let s = &self.last_stats;
        let bs = self.store.byte_stats();
        let mut fields = vec![
            ("computed", Json::int(s.facts_computed as i64)),
            ("reused", Json::int(s.facts_reused as i64)),
            ("deduped", Json::int(s.facts_deduped as i64)),
            ("shared", Json::int(s.facts_shared as i64)),
            ("ratio", Json::Num(s.reuse_ratio())),
            ("entries", Json::int(self.store.len() as i64)),
            ("resident_bytes", Json::int(bs.resident_bytes as i64)),
            ("evicted", Json::int(bs.evicted as i64)),
            ("evicted_bytes", Json::int(bs.evicted_bytes as i64)),
        ];
        if let Some(b) = bs.budget {
            fields.push(("budget", Json::int(b as i64)));
        }
        Json::obj(fields)
    }

    /// The polyhedral-kernel staged-test counters (`PolyStats`) of the most
    /// recent analysis: per-stage rejects/sats, full Fourier–Motzkin runs,
    /// and approximation (constraint-drop) events.  Shared by `stats` and
    /// `certify` responses.
    fn poly_json(&self) -> Json {
        let p = &self.last_stats.poly;
        Json::obj([
            ("gcd_rejects", Json::int(p.gcd_rejects as i64)),
            ("interval_rejects", Json::int(p.interval_rejects as i64)),
            ("quick_sats", Json::int(p.quick_sats as i64)),
            ("fm_runs", Json::int(p.fm_runs as i64)),
            ("subscript_rejects", Json::int(p.subscript_rejects as i64)),
            ("approximations", Json::int(p.approximations as i64)),
        ])
    }

    /// The `snapshot` object of `stats`: load outcome and warm/cold counters.
    fn snapshot_json(&self) -> Json {
        let mut fields = vec![
            ("status", Json::str(self.snapshot.status)),
            ("persisted", Json::Bool(self.persist.is_some())),
            ("warm_hits", Json::int(self.snapshot.warm_hits as i64)),
            ("cold_misses", Json::int(self.snapshot.cold_misses as i64)),
            (
                "evicted_stale",
                Json::int(self.snapshot.evicted_stale as i64),
            ),
            ("load_secs", Json::Num(self.snapshot.load_secs)),
            ("save_secs", Json::Num(self.snapshot.save_secs)),
            (
                "appended_bytes",
                Json::int(self.snapshot.appended_bytes as i64),
            ),
            ("compactions", Json::int(self.snapshot.compactions as i64)),
        ];
        if let Some(w) = &self.snapshot.warning {
            fields.push(("warning", Json::str(w.clone())));
        }
        Json::obj(fields)
    }
}

/// Order guru targets for the speculation budget by expected payoff rather
/// than flat guru rank: a `--speculate N` budget should go to the loops
/// whose answers the user is most likely to need next.  The weight is
/// `(important ? 1.0 : 0.5) × coverage × ln(1 + granularity)` — coverage
/// dominates (it is the guru's importance axis), granularity contributes
/// logarithmically (a 10× bigger loop body is somewhat more interesting,
/// not 10× more), and targets below the importance cutoffs are halved
/// rather than dropped.  Ties keep guru order.
pub fn speculation_order(targets: &[suif_explorer::TargetLoop]) -> Vec<String> {
    let weight = |t: &suif_explorer::TargetLoop| -> f64 {
        let importance = if t.important { 1.0 } else { 0.5 };
        importance * t.coverage * (1.0 + t.granularity.max(0.0)).ln()
    };
    let mut ranked: Vec<(usize, f64, &str)> = targets
        .iter()
        .enumerate()
        .map(|(i, t)| (i, weight(t), t.name.as_str()))
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    ranked.into_iter().map(|(_, _, n)| n.to_string()).collect()
}

impl Drop for Session {
    fn drop(&mut self) {
        // Stop background speculation before the session's state unwinds
        // (the thread owns `Arc`s, so this is tidiness, not soundness).
        self.cancel_speculation();
        // Final checkpoint on clean shutdown (`quit`, daemon exit).
        self.persist_now();
    }
}

/// The `tier` object of `stats`: process-wide shared-tier counters, plus
/// per-session resident bytes (`sessions`, keyed by session id — `"0"` is
/// warm-start imports) for eviction-fairness visibility.
pub(crate) fn tier_json(t: &SharedFactTier) -> Json {
    let ts = t.stats();
    let mut fields = vec![
        ("hits", Json::int(ts.hits as i64)),
        ("misses", Json::int(ts.misses as i64)),
        ("inserts", Json::int(ts.inserts as i64)),
        ("evicted", Json::int(ts.evicted as i64)),
        ("evicted_bytes", Json::int(ts.evicted_bytes as i64)),
        ("resident_bytes", Json::int(ts.resident_bytes as i64)),
        ("resident_entries", Json::int(ts.resident_entries as i64)),
        (
            "peak_resident_bytes",
            Json::int(ts.peak_resident_bytes as i64),
        ),
        ("fairness_spared", Json::int(ts.fairness_spared as i64)),
    ];
    if let Some(b) = ts.budget {
        fields.push(("budget", Json::int(b as i64)));
    }
    let sessions: std::collections::BTreeMap<String, Json> = t
        .session_bytes()
        .into_iter()
        .map(|(owner, bytes)| (owner.to_string(), Json::int(bytes as i64)))
        .collect();
    fields.push(("sessions", Json::Obj(sessions)));
    Json::obj(fields)
}

/// Unresolved-assertion warnings of the current analysis, as a JSON array.
fn warnings_json(ex: &Explorer<'_>) -> Json {
    Json::Arr(ex.warnings().iter().map(|w| Json::str(w.clone())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program t
proc inc(real q[*], int n) {
 int i
 do 1 i = 1, n {
  q[i] = q[i] + 1
 }
}
proc main() {
 real b[8]
 int i
 do 2 i = 1, 8 {
  b[i] = i
 }
 call inc(b, 8)
 print b[3]
}";

    #[test]
    fn session_loads_and_answers() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let v = s.verdicts_json();
        let loops = v.get("loops").and_then(Json::as_arr).unwrap();
        assert_eq!(loops.len(), 2);
        assert!(loops
            .iter()
            .all(|l| l.get("parallel").and_then(Json::as_bool) == Some(true)));
        assert_eq!(s.last_stats.schedule.summarized, 2);

        // Warm re-analysis of the unchanged program reuses every fact: no
        // procedure is re-summarized and the scheduler never runs.
        s.analyze();
        assert_eq!(s.last_stats.schedule.summarized, 0);
        assert_eq!(s.last_stats.schedule.cache_hits, 0);
        assert_eq!(s.last_stats.facts_computed, 0, "all facts from the store");
        assert!(
            s.last_stats.facts_reused >= 4,
            "summaries + liveness + loops"
        );

        // Reload with an edit to main only: the leaf `inc` stays cached.
        let edited = SRC.replace("print b[3]", "print b[4]");
        s.reload(&edited).unwrap();
        assert_eq!(s.generation, 2);
        assert_eq!(s.last_stats.schedule.cache_hits, 1, "inc must hit");
        assert_eq!(s.last_stats.schedule.summarized, 1, "only main dirty");
    }

    #[test]
    fn session_assertions_replay_incrementally() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let classify_before = s
            .store
            .metrics_for(suif_analysis::PassId::Classify)
            .invocations;

        // Asserting on one loop replays only that loop's classification.
        let r = s.assert_json("main/2", "b", true);
        assert_eq!(
            r.get("assertion").and_then(Json::as_str),
            Some("consistent")
        );
        let classify_after = s
            .store
            .metrics_for(suif_analysis::PassId::Classify)
            .invocations;
        assert_eq!(classify_after - classify_before, 1, "one loop reclassified");
        assert_eq!(
            s.store
                .metrics_for(suif_analysis::PassId::Summarize)
                .invocations,
            1,
            "summaries never re-ran"
        );

        // An assertion the checker can disprove is rejected with a detail.
        let r = s.assert_json("nosuch/9", "b", false);
        assert_eq!(
            r.get("assertion").and_then(Json::as_str),
            Some("contradicted")
        );
        assert!(r
            .get("detail")
            .and_then(Json::as_str)
            .unwrap()
            .contains("no loop"));

        // Every analyze payload carries the warnings channel.
        let a = s.analyze();
        assert!(a.get("warnings").and_then(Json::as_arr).is_some());
    }

    #[test]
    fn session_advisory_and_stats_payload() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let adv = s.advisory_json();
        assert!(adv.get("contractions").and_then(Json::as_arr).is_some());
        assert!(adv.get("splits").and_then(Json::as_arr).is_some());

        s.analyze();
        let st = s.stats_json();
        let passes = st.get("passes").unwrap();
        assert!(passes.get("total").and_then(Json::as_f64).is_some());
        let classify = passes.get("classify").unwrap();
        assert_eq!(
            classify.get("invocations").and_then(Json::as_f64),
            Some(0.0),
            "warm analyze recomputes nothing"
        );
        assert_eq!(classify.get("reused").and_then(Json::as_f64), Some(2.0));
        let facts = st.get("facts").unwrap();
        assert_eq!(facts.get("computed").and_then(Json::as_f64), Some(0.0));
        assert!(facts.get("ratio").and_then(Json::as_f64).unwrap() > 0.99);
    }

    #[test]
    fn session_guru_and_codeview() {
        let cache = Arc::new(SummaryCache::new());
        let mut s = Session::open(SRC, ScheduleOptions::sequential(), cache).unwrap();
        let g = s.guru_json();
        assert!(g.get("coverage").and_then(Json::as_f64).is_some());
        let cv = s.codeview_json();
        assert!(cv
            .get("view")
            .and_then(Json::as_str)
            .unwrap()
            .contains("do"));
        assert!(s.slice_json("nosuch/1").is_err());
        let sl = s.slice_json("main/2").unwrap();
        assert_eq!(sl.get("loop").and_then(Json::as_str), Some("main/2"));
    }

    #[test]
    fn speculation_order_weights_coverage_and_granularity() {
        let target = |name: &str, coverage: f64, granularity: f64, important: bool| {
            suif_explorer::TargetLoop {
                stmt: suif_ir::StmtId(0),
                name: name.to_string(),
                coverage,
                granularity,
                static_deps: 0,
                dynamic_dep: false,
                important,
                has_calls: false,
                size_lines: 1,
            }
        };
        // Guru order: `first` leads on raw rank, but `third` has far better
        // coverage × granularity and `second` loses half its weight to the
        // importance cutoff — the weighted budget must reorder, not take the
        // flat prefix.
        let targets = vec![
            target("first", 0.10, 50.0, true),
            target("second", 0.40, 400.0, false),
            target("third", 0.35, 900.0, true),
        ];
        let flat: Vec<String> = targets.iter().map(|t| t.name.clone()).collect();
        let weighted = speculation_order(&targets);
        assert_eq!(weighted, vec!["third", "second", "first"]);
        assert_ne!(weighted, flat, "weighting must beat flat guru order");
        // Ties (identical targets) keep guru order: a stable ranking.
        let tied = vec![target("a", 0.2, 10.0, true), target("b", 0.2, 10.0, true)];
        assert_eq!(speculation_order(&tied), vec!["a", "b"]);
    }
}
