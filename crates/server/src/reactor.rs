//! The reactor's readiness layer: a poller over nonblocking file
//! descriptors plus a self-wake pipe, with no dependencies beyond the libc
//! the platform already links.
//!
//! The daemon's evented transport (see [`crate::daemon`]) multiplexes every
//! TCP session on **one** event thread.  That thread must block until
//! something happens — a socket became readable, a write queue drained, a
//! worker finished an offloaded command — and the only portable way to
//! block on *all* of those at once is the operating system's readiness
//! API.  This module wraps it three ways, picked at runtime:
//!
//! * **epoll** (Linux, the default): `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait` through direct `extern "C"` bindings — the symbols live
//!   in the libc every Linux Rust binary already links, so no crate
//!   dependency is added.  Level-triggered, O(ready) wakeups, comfortably
//!   holds thousands of idle registrations.
//! * **poll** (any Unix, forced with `SUIF_REACTOR_BACKEND=poll`): a
//!   `poll(2)` sweep over the registered set.  O(registered) per wait, but
//!   portable to every Unix and still a single blocking call — the
//!   fallback when epoll is unavailable.
//! * **emulation** (non-Unix): a condvar-timed sweep that reports every
//!   registered token as possibly-ready and relies on the caller's
//!   nonblocking reads to sort out the truth.  Functional, not fast; it
//!   exists so the crate builds and serves everywhere.
//!
//! The [`WakePipe`] is the worker half's doorbell: completion of an
//! offloaded command pushes a result onto a queue and writes one byte into
//! the pipe, which the poller reports like any other readable fd.  This is
//! what lets the event thread block *indefinitely* (no 100 ms polling
//! timeouts) without missing work finished on another thread.

#![allow(clippy::needless_range_loop)]

use std::io;

/// The fd type registered with the poller: the platform's raw fd on unix,
/// any caller-chosen unique key on the emulation backend elsewhere.
#[cfg(unix)]
pub use std::os::unix::io::RawFd;
/// The fd type registered with the poller: the platform's raw fd on unix,
/// any caller-chosen unique key on the emulation backend elsewhere.
#[cfg(not(unix))]
pub type RawFd = usize;

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd has bytes (or an accepted connection, or EOF) to read.
    pub readable: bool,
    /// The fd can accept more written bytes.
    pub writable: bool,
    /// Peer hangup or error; treat as readable-to-EOF.
    pub hangup: bool,
}

/// Which readiness to watch a registration for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

// ---------------------------------------------------------------------------
// Raw libc bindings (Unix).  The build environment has no registry access,
// so these symbols are declared by hand; they resolve against the platform
// libc that every Rust Unix binary links anyway.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::RawFd;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event`; packed on x86-64 (kernel UAPI), natural
    /// alignment elsewhere.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }

    pub fn set_nonblocking(fd: RawFd) -> std::io::Result<()> {
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags < 0 {
                return Err(std::io::Error::last_os_error());
            }
            if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                return Err(std::io::Error::last_os_error());
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The wake pipe
// ---------------------------------------------------------------------------

/// A self-wake channel: the reactor registers the read end in its poller;
/// any thread holding a [`Waker`] can make the next (or current) `wait`
/// return by writing one byte.
#[cfg(unix)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

#[cfg(unix)]
impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        // Both ends nonblocking: a full pipe must never block a worker
        // (one pending byte is enough to wake), and the drain must never
        // block the reactor.
        sys::set_nonblocking(fds[0])?;
        sys::set_nonblocking(fds[1])?;
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd the reactor registers for readability.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// A clonable handle worker threads use to ring the doorbell.
    pub fn waker(&self) -> Waker {
        Waker {
            write_fd: self.write_fd,
        }
    }

    /// Consume every pending wake byte (called by the reactor when the
    /// read end reports readable).  Returns how many bytes were drained.
    pub fn drain(&self) -> usize {
        let mut total = 0usize;
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe {
                sys::read(
                    self.read_fd,
                    buf.as_mut_ptr() as *mut std::os::raw::c_void,
                    buf.len(),
                )
            };
            if n <= 0 {
                return total;
            }
            total += n as usize;
            if (n as usize) < buf.len() {
                return total;
            }
        }
    }
}

#[cfg(unix)]
impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// The writable half of a [`WakePipe`], safe to share across worker
/// threads.  Writes are fire-and-forget: a full pipe already guarantees a
/// pending wakeup, so `EAGAIN` is success.
#[cfg(unix)]
#[derive(Clone, Copy)]
pub struct Waker {
    write_fd: RawFd,
}

#[cfg(unix)]
impl Waker {
    pub fn wake(&self) {
        let b = [1u8];
        unsafe {
            sys::write(self.write_fd, b.as_ptr() as *const std::os::raw::c_void, 1);
        }
    }
}

#[cfg(unix)]
unsafe impl Send for Waker {}
#[cfg(unix)]
unsafe impl Sync for Waker {}

/// Non-Unix stand-in: a condvar-backed flag the emulation poller checks.
#[cfg(not(unix))]
pub struct WakePipe {
    flag: std::sync::Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
}

#[cfg(not(unix))]
#[derive(Clone)]
pub struct Waker {
    flag: std::sync::Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
}

#[cfg(not(unix))]
impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        Ok(WakePipe {
            flag: std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new())),
        })
    }
    pub fn read_fd(&self) -> RawFd {
        usize::MAX
    }
    pub fn waker(&self) -> Waker {
        Waker {
            flag: self.flag.clone(),
        }
    }
    pub fn drain(&self) -> usize {
        let mut g = self.flag.0.lock().unwrap();
        let was = *g;
        *g = false;
        usize::from(was)
    }
}

#[cfg(not(unix))]
impl Waker {
    pub fn wake(&self) {
        *self.flag.0.lock().unwrap() = true;
        self.flag.1.notify_all();
    }
}

// ---------------------------------------------------------------------------
// The poller
// ---------------------------------------------------------------------------

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    #[cfg(unix)]
    Poll {
        /// Registered fds in stable order: `(fd, token, interest)`.
        regs: Vec<(RawFd, usize, Interest)>,
    },
    #[cfg(not(unix))]
    Emulate {
        regs: Vec<(RawFd, usize, Interest)>,
        wake: std::sync::Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    },
}

/// The readiness poller behind the reactor: register nonblocking fds under
/// integer tokens, then block in [`Poller::wait`] until at least one is
/// ready (or the wake pipe rings).
pub struct Poller {
    backend: Backend,
    name: &'static str,
}

impl Poller {
    /// Build the best poller for this platform: epoll on Linux, `poll(2)`
    /// elsewhere on Unix.  `SUIF_REACTOR_BACKEND=poll` forces the poll
    /// backend (CI exercises both paths on Linux).
    pub fn new() -> io::Result<Poller> {
        let forced = std::env::var("SUIF_REACTOR_BACKEND").unwrap_or_default();
        #[cfg(target_os = "linux")]
        {
            if forced != "poll" {
                let epfd = unsafe { sys::epoll_create1(0) };
                if epfd >= 0 {
                    return Ok(Poller {
                        backend: Backend::Epoll { epfd },
                        name: "epoll",
                    });
                }
                // epoll failed (exotic container seccomp?): fall through to
                // the portable backend rather than refusing to serve.
            }
        }
        #[cfg(unix)]
        {
            let _ = forced;
            Ok(Poller {
                backend: Backend::Poll { regs: Vec::new() },
                name: "poll",
            })
        }
        #[cfg(not(unix))]
        {
            let _ = forced;
            Ok(Poller {
                backend: Backend::Emulate {
                    regs: Vec::new(),
                    wake: std::sync::Arc::new((
                        std::sync::Mutex::new(false),
                        std::sync::Condvar::new(),
                    )),
                },
                name: "emulate",
            })
        }
    }

    /// Which backend this poller runs (`"epoll"`, `"poll"`, `"emulate"`);
    /// surfaced in `stats.service.reactor`.
    pub fn backend_name(&self) -> &'static str {
        self.name
    }

    /// Watch `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev = sys::EpollEvent {
                    events: epoll_mask(interest),
                    data: token as u64,
                };
                if unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            #[cfg(unix)]
            Backend::Poll { regs } => {
                regs.retain(|(f, _, _)| *f != fd);
                regs.push((fd, token, interest));
                Ok(())
            }
            #[cfg(not(unix))]
            Backend::Emulate { regs, .. } => {
                regs.retain(|(f, _, _)| *f != fd);
                regs.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Change the interest set of an already registered fd.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev = sys::EpollEvent {
                    events: epoll_mask(interest),
                    data: token as u64,
                };
                if unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) } < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            #[cfg(unix)]
            Backend::Poll { regs } => {
                for r in regs.iter_mut() {
                    if r.0 == fd {
                        r.1 = token;
                        r.2 = interest;
                        return Ok(());
                    }
                }
                regs.push((fd, token, interest));
                Ok(())
            }
            #[cfg(not(unix))]
            Backend::Emulate { regs, .. } => {
                for r in regs.iter_mut() {
                    if r.0 == fd {
                        r.1 = token;
                        r.2 = interest;
                        return Ok(());
                    }
                }
                regs.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Stop watching `fd` (must be called before the fd is closed).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev = sys::EpollEvent { events: 0, data: 0 };
                // Pre-2.6.9 kernels required a non-null event for DEL; pass
                // one unconditionally.  A racing close makes DEL fail with
                // EBADF/ENOENT — already gone is fine.
                unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
                Ok(())
            }
            #[cfg(unix)]
            Backend::Poll { regs } => {
                regs.retain(|(f, _, _)| *f != fd);
                Ok(())
            }
            #[cfg(not(unix))]
            Backend::Emulate { regs, .. } => {
                regs.retain(|(f, _, _)| *f != fd);
                Ok(())
            }
        }
    }

    /// Block until at least one registered fd is ready or `timeout_ms`
    /// elapses (`-1` = block indefinitely).  Ready fds are appended to
    /// `events` (cleared first); returns the count.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                const CAP: usize = 256;
                let mut raw = [sys::EpollEvent { events: 0, data: 0 }; CAP];
                let n = loop {
                    let n =
                        unsafe { sys::epoll_wait(*epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms) };
                    if n >= 0 {
                        break n as usize;
                    }
                    let e = io::Error::last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                };
                for ev in raw.iter().take(n) {
                    let bits = ev.events;
                    events.push(Event {
                        token: ev.data as usize,
                        readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
                    });
                }
                Ok(events.len())
            }
            #[cfg(unix)]
            Backend::Poll { regs } => {
                let mut fds: Vec<sys::PollFd> = regs
                    .iter()
                    .map(|(fd, _, i)| sys::PollFd {
                        fd: *fd,
                        events: (if i.readable { sys::POLLIN } else { 0 })
                            | (if i.writable { sys::POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                let n = loop {
                    let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                    if n >= 0 {
                        break n as usize;
                    }
                    let e = io::Error::last_os_error();
                    if e.kind() != io::ErrorKind::Interrupted {
                        return Err(e);
                    }
                };
                if n > 0 {
                    for (i, pfd) in fds.iter().enumerate() {
                        let r = pfd.revents;
                        if r != 0 {
                            events.push(Event {
                                token: regs[i].1,
                                readable: r & sys::POLLIN != 0,
                                writable: r & sys::POLLOUT != 0,
                                hangup: r & (sys::POLLHUP | sys::POLLERR) != 0,
                            });
                        }
                    }
                }
                Ok(events.len())
            }
            #[cfg(not(unix))]
            Backend::Emulate { regs, wake } => {
                // No readiness API: wait a short beat on the wake condvar,
                // then report every registration as possibly ready.  The
                // caller's nonblocking IO turns "possibly" into truth.
                let dur = std::time::Duration::from_millis(if timeout_ms < 0 {
                    5
                } else {
                    (timeout_ms as u64).min(5)
                });
                let (lock, cv) = (&wake.0, &wake.1);
                let g = lock.lock().unwrap();
                let _ = cv.wait_timeout(g, dur).unwrap();
                for (_, token, i) in regs.iter() {
                    events.push(Event {
                        token: *token,
                        readable: i.readable,
                        writable: i.writable,
                        hangup: false,
                    });
                }
                Ok(events.len())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(i: Interest) -> u32 {
    (if i.readable {
        sys::EPOLLIN | sys::EPOLLRDHUP
    } else {
        0
    }) | (if i.writable { sys::EPOLLOUT } else { 0 })
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = self.backend {
            unsafe {
                sys::close(epfd);
            }
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn poller(force_poll: bool) -> Poller {
        if force_poll {
            // Build the portable backend directly rather than mutating the
            // process environment (tests run concurrently).
            Poller {
                backend: Backend::Poll { regs: Vec::new() },
                name: "poll",
            }
        } else {
            Poller::new().unwrap()
        }
    }

    fn readiness_round_trip(mut p: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        p.register(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait reports nothing.
        assert_eq!(p.wait(&mut events, 0).unwrap(), 0);

        let mut client = TcpStream::connect(addr).unwrap();
        let n = p.wait(&mut events, 2000).unwrap();
        assert!(n >= 1, "listener must report readable");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let (mut conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        p.register(conn.as_raw_fd(), 9, Interest::READ).unwrap();
        client.write_all(b"hi").unwrap();
        let n = p.wait(&mut events, 2000).unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
        let mut buf = [0u8; 8];
        assert_eq!(conn.read(&mut buf).unwrap(), 2);

        // Write interest on an empty socket buffer reports writable.
        p.modify(conn.as_raw_fd(), 9, Interest::BOTH).unwrap();
        let n = p.wait(&mut events, 2000).unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 9 && e.writable));

        // Peer close reports readable (EOF) and/or hangup.
        drop(client);
        let n = p.wait(&mut events, 2000).unwrap();
        assert!(n >= 1);
        assert!(events
            .iter()
            .any(|e| e.token == 9 && (e.readable || e.hangup)));

        p.deregister(conn.as_raw_fd()).unwrap();
        p.deregister(listener.as_raw_fd()).unwrap();
        assert_eq!(p.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn default_backend_readiness() {
        readiness_round_trip(poller(false));
    }

    #[test]
    fn portable_poll_backend_readiness() {
        readiness_round_trip(poller(true));
    }

    #[test]
    fn wake_pipe_rings_and_drains() {
        let mut p = poller(false);
        let pipe = WakePipe::new().unwrap();
        p.register(pipe.read_fd(), 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        assert_eq!(p.wait(&mut events, 0).unwrap(), 0, "quiet before wake");

        let waker = pipe.waker();
        let t = std::thread::spawn(move || waker.wake());
        let n = p.wait(&mut events, 2000).unwrap();
        t.join().unwrap();
        assert!(n >= 1, "wake byte must interrupt the wait");
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        assert!(pipe.drain() >= 1);
        // Drained: the next zero-timeout wait is quiet again.
        assert_eq!(p.wait(&mut events, 0).unwrap(), 0);

        // Many wakes coalesce without blocking the writers.
        let w = pipe.waker();
        for _ in 0..100_000 {
            w.wake();
        }
        assert!(p.wait(&mut events, 2000).unwrap() >= 1);
        assert!(pipe.drain() > 0);
    }
}
