//! Wire protocol: incremental frame decoding, request parsing, and
//! response shaping.
//!
//! The transport is line-delimited JSON, but the evented daemon reads raw
//! nonblocking byte chunks — a request may arrive one byte at a time
//! (slow-loris clients) or many requests in one read (pipelining clients).
//! [`FrameDecoder`] turns that byte stream back into frames: complete
//! lines, plus explicit [`Frame::Oversize`] markers when a line exceeds
//! the length cap (the offending bytes are discarded up to the next
//! newline and the client gets a per-line error response, not a dropped
//! connection).
//!
//! Requests may carry an `id` field (number or string); it is echoed in
//! the response so pipelining clients can match replies to requests.  The
//! `batch` command pipelines at the protocol level: its `requests` array
//! is executed in order on the session and produces exactly one response
//! line per sub-request, in request order.

use crate::json::Json;

/// Longest accepted request line, in bytes.  Large enough for any program
/// the analyzer would want in one `load` (the whole benchmark suite fits
/// in well under 1 MiB), small enough that a garbage or hostile stream
/// cannot balloon a connection's read buffer.
pub const MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// One decoded frame from the byte stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A complete request line (without the trailing newline), decoded
    /// lossily from UTF-8 — [`Request::parse`] reports malformed JSON as a
    /// per-line error.
    Line(String),
    /// A line exceeded [`MAX_LINE_BYTES`]; `0` bytes of it were kept.  The
    /// payload is how many bytes were discarded (including any still
    /// uncounted when the terminating newline finally arrived).
    Oversize(usize),
}

/// Incremental line framer over a nonblocking byte stream.
///
/// Feed arbitrary chunks with [`FrameDecoder::feed`]; pull complete frames
/// with [`FrameDecoder::next_frame`].  A partial line stays buffered
/// across feeds (never lost, never served early).  Lines longer than the
/// cap flip the decoder into discard mode: bytes are dropped until the
/// next newline, then a single [`Frame::Oversize`] frame is emitted so the
/// daemon can answer with an error instead of silently swallowing input.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Byte cap per line.
    max: usize,
    /// In discard mode: bytes dropped so far of the oversize line.
    discarding: Option<usize>,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder::new(MAX_LINE_BYTES)
    }
}

impl FrameDecoder {
    /// A decoder enforcing `max_line` bytes per frame.
    pub fn new(max_line: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            max: max_line.max(1),
            discarding: None,
        }
    }

    /// Append freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if let Some(dropped) = &mut self.discarding {
            // Still inside an oversize line: drop up to (and excluding)
            // the terminating newline; keep the tail for normal framing.
            match bytes.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    *dropped += pos;
                    let rest = &bytes[pos..]; // keep the newline itself
                    self.buf.extend_from_slice(rest);
                }
                None => {
                    *dropped += bytes.len();
                }
            }
            return;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> Option<Frame> {
        if let Some(dropped) = self.discarding {
            // The oversize line terminates at the first buffered newline.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                debug_assert_eq!(pos, 0, "discard mode keeps only the newline tail");
                self.buf.drain(..=pos);
                self.discarding = None;
                return Some(Frame::Oversize(dropped));
            }
            return None;
        }
        match self.buf.iter().position(|&b| b == b'\n') {
            // A whole oversize line can arrive before the first
            // `next_frame` call (one big read batch): the cap applies to
            // complete lines too, not just still-partial ones.
            Some(pos) if pos > self.max => {
                self.buf.drain(..=pos);
                Some(Frame::Oversize(pos))
            }
            Some(pos) => {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..pos]).trim().to_string();
                Some(Frame::Line(text))
            }
            None if self.buf.len() > self.max => {
                // No newline yet and already past the cap: discard what is
                // buffered and everything until the newline arrives.
                let dropped = self.buf.len();
                self.buf.clear();
                self.discarding = Some(dropped);
                None
            }
            None => None,
        }
    }

    /// Whether a partial (incomplete) line is buffered — used by shutdown
    /// to decide a connection has nothing more to answer.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty() || self.discarding.is_some()
    }

    /// Bytes currently buffered (cap-bounded by construction).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// One sub-request of a `batch` command: the reply id it must be answered
/// under, and the parse outcome (a malformed element answers with an error
/// under its id without aborting the rest of the batch).
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Echoed in the sub-response: the element's `id` field, defaulting to
    /// its zero-based index in the batch.
    pub id: Json,
    /// The parsed sub-request, or the per-element protocol error.
    pub req: Result<Box<Request>, ProtoError>,
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Load a program from MiniF source text, replacing any current session.
    Load { text: String },
    /// Re-load edited source, re-analyzing only the dirty cone.
    Reload { text: String },
    /// Report per-loop parallelization verdicts.
    Analyze,
    /// Ranked Guru targets (coverage/granularity driven).
    Guru,
    /// Slice the dependences of one loop.
    Slice { loop_name: String },
    /// Check and apply a user assertion (an incremental invalidation event).
    Assert {
        loop_name: String,
        var: String,
        independent: bool,
    },
    /// Demand-driven advisories: contraction, decomposition, block splits.
    Advisory,
    /// Render the annotated code view.
    Codeview,
    /// Race-certify loops under adversarial schedules (all loops, or one
    /// named loop).
    Certify {
        loop_name: Option<String>,
        schedules: Option<u32>,
        seed: Option<u64>,
    },
    /// Fleet analysis: run many programs through the corpus driver over the
    /// service's shared fact tier (no session required).  Programs come
    /// inline (`programs: [{name, text}, …]`) or generated server-side
    /// (`gen: N` with optional `seed_base`).
    Corpus {
        /// Inline `(name, source)` entries.
        programs: Vec<(String, String)>,
        /// Generate this many seeded programs server-side.
        gen: usize,
        /// First seed of the generated range.
        seed_base: u64,
        /// Workers for the run's dedicated pool (`0` = default).
        workers: usize,
        /// Per-program source-size cap in bytes (`0` = default).
        max_program_bytes: usize,
    },
    /// Daemon statistics: pass timings, cache counters, worker utilization.
    Stats,
    /// Force a durable fact-snapshot write (requires `--persist-dir`).
    Checkpoint,
    /// Close the connection.
    Quit,
    /// Stop the whole daemon gracefully: checkpoint the shared fact tier,
    /// stop accepting connections, and drain in-flight sessions.
    Shutdown,
    /// Pipelined sub-requests, executed in order on this session; one
    /// response line per element, in request order, each tagged with the
    /// element's id.
    Batch { items: Vec<BatchItem> },
}

/// Protocol-level failure, reported to the client as an error response.
#[derive(Debug, Clone)]
pub struct ProtoError(pub String);

/// The request's `id` field, if it carries one a response can echo
/// (numbers and strings only — clients matching replies need a scalar).
pub fn request_id(v: &Json) -> Option<Json> {
    match v.get("id") {
        Some(id @ (Json::Num(_) | Json::Str(_))) => Some(id.clone()),
        _ => None,
    }
}

impl Request {
    /// Parse one line of client input.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = Json::parse(line).map_err(|e| ProtoError(e.to_string()))?;
        Request::from_value(&v)
    }

    /// Parse an already-decoded JSON request value.
    pub fn from_value(v: &Json) -> Result<Request, ProtoError> {
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError("missing string field \"cmd\"".into()))?;
        let text_field = |v: &Json| -> Result<String, ProtoError> {
            v.get("text")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ProtoError(format!("{cmd} requires string field \"text\"")))
        };
        match cmd {
            "load" => Ok(Request::Load {
                text: text_field(v)?,
            }),
            "reload" => Ok(Request::Reload {
                text: text_field(v)?,
            }),
            "analyze" => Ok(Request::Analyze),
            "guru" => Ok(Request::Guru),
            "slice" => {
                let loop_name = v
                    .get("loop")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| ProtoError("slice requires string field \"loop\"".into()))?;
                Ok(Request::Slice { loop_name })
            }
            "assert" => {
                let field = |name: &str| -> Result<String, ProtoError> {
                    v.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| ProtoError(format!("assert requires string field {name:?}")))
                };
                let loop_name = field("loop")?;
                let var = field("var")?;
                let independent = match v.get("kind").and_then(Json::as_str) {
                    None | Some("private") => false,
                    Some("independent") => true,
                    Some(other) => {
                        return Err(ProtoError(format!(
                            "assert kind must be \"private\" or \"independent\", got {other:?}"
                        )))
                    }
                };
                Ok(Request::Assert {
                    loop_name,
                    var,
                    independent,
                })
            }
            "certify" => {
                let loop_name = v.get("loop").and_then(Json::as_str).map(str::to_string);
                let schedules = match v.get("schedules") {
                    Some(j) => Some(j.as_i64().filter(|s| *s > 0).map(|s| s as u32).ok_or_else(
                        || ProtoError("certify \"schedules\" must be a positive number".into()),
                    )?),
                    None => None,
                };
                let seed =
                    match v.get("seed") {
                        Some(j) => Some(j.as_i64().map(|s| s as u64).ok_or_else(|| {
                            ProtoError("certify \"seed\" must be a number".into())
                        })?),
                        None => None,
                    };
                Ok(Request::Certify {
                    loop_name,
                    schedules,
                    seed,
                })
            }
            "corpus" => {
                let uint_field = |name: &str| -> Result<u64, ProtoError> {
                    match v.get(name) {
                        None => Ok(0),
                        Some(j) => {
                            j.as_i64()
                                .filter(|n| *n >= 0)
                                .map(|n| n as u64)
                                .ok_or_else(|| {
                                    ProtoError(format!(
                                        "corpus {name:?} must be a non-negative number"
                                    ))
                                })
                        }
                    }
                };
                let mut programs = Vec::new();
                if let Some(Json::Arr(elems)) = v.get("programs") {
                    for (i, p) in elems.iter().enumerate() {
                        let field = |name: &str| -> Result<String, ProtoError> {
                            p.get(name)
                                .and_then(Json::as_str)
                                .map(str::to_string)
                                .ok_or_else(|| {
                                    ProtoError(format!(
                                        "corpus programs[{i}] requires string field {name:?}"
                                    ))
                                })
                        };
                        programs.push((field("name")?, field("text")?));
                    }
                } else if v.get("programs").is_some() {
                    return Err(ProtoError("corpus \"programs\" must be an array".into()));
                }
                let gen = uint_field("gen")? as usize;
                if programs.is_empty() && gen == 0 {
                    return Err(ProtoError(
                        "corpus requires \"programs\" (non-empty array) or \"gen\" (count)".into(),
                    ));
                }
                Ok(Request::Corpus {
                    programs,
                    gen,
                    seed_base: uint_field("seed_base")?,
                    workers: uint_field("workers")? as usize,
                    max_program_bytes: uint_field("max_program_bytes")? as usize,
                })
            }
            "advisory" => Ok(Request::Advisory),
            "codeview" => Ok(Request::Codeview),
            "stats" => Ok(Request::Stats),
            "checkpoint" => Ok(Request::Checkpoint),
            "quit" => Ok(Request::Quit),
            "shutdown" => Ok(Request::Shutdown),
            "batch" => {
                let elems = match v.get("requests") {
                    Some(Json::Arr(elems)) => elems,
                    _ => return Err(ProtoError("batch requires array field \"requests\"".into())),
                };
                if elems.is_empty() {
                    return Err(ProtoError("batch \"requests\" must be non-empty".into()));
                }
                let items = elems
                    .iter()
                    .enumerate()
                    .map(|(i, elem)| {
                        let id = request_id(elem).unwrap_or(Json::Num(i as f64));
                        let req = match Request::from_value(elem) {
                            Ok(Request::Batch { .. }) => {
                                Err(ProtoError("batch may not nest batch".into()))
                            }
                            Ok(r) => Ok(Box::new(r)),
                            Err(e) => Err(e),
                        };
                        BatchItem { id, req }
                    })
                    .collect();
                Ok(Request::Batch { items })
            }
            other => Err(ProtoError(format!("unknown cmd {other:?}"))),
        }
    }
}

/// Wrap a successful payload: `{"ok":true, ...payload}`.
pub fn ok_response(payload: Json) -> Json {
    match payload {
        Json::Obj(mut m) => {
            m.insert("ok".into(), Json::Bool(true));
            Json::Obj(m)
        }
        other => Json::obj([("ok", Json::Bool(true)), ("result", other)]),
    }
}

/// Wrap an error message: `{"ok":false,"error":msg}`.
pub fn err_response(msg: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(msg))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commands() {
        assert!(matches!(
            Request::parse(r#"{"cmd":"load","text":"program p\nend"}"#),
            Ok(Request::Load { .. })
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"slice","loop":"main:1"}"#),
            Ok(Request::Slice { .. })
        ));
        assert!(Request::parse(r#"{"cmd":"slice"}"#).is_err());
        assert!(matches!(
            Request::parse(r#"{"cmd":"assert","loop":"main/1","var":"a","kind":"independent"}"#),
            Ok(Request::Assert {
                independent: true,
                ..
            })
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"assert","loop":"main/1","var":"a"}"#),
            Ok(Request::Assert {
                independent: false,
                ..
            })
        ));
        assert!(Request::parse(r#"{"cmd":"assert","loop":"main/1"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"assert","loop":"l","var":"v","kind":"bogus"}"#).is_err());
        assert!(matches!(
            Request::parse(r#"{"cmd":"advisory"}"#),
            Ok(Request::Advisory)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"certify"}"#),
            Ok(Request::Certify {
                loop_name: None,
                schedules: None,
                seed: None,
            })
        ));
        match Request::parse(r#"{"cmd":"certify","loop":"main/1","schedules":8,"seed":42}"#) {
            Ok(Request::Certify {
                loop_name,
                schedules,
                seed,
            }) => {
                assert_eq!(loop_name.as_deref(), Some("main/1"));
                assert_eq!(schedules, Some(8));
                assert_eq!(seed, Some(42));
            }
            other => panic!("bad certify parse: {other:?}"),
        }
        assert!(Request::parse(r#"{"cmd":"certify","schedules":0}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"certify","seed":"x"}"#).is_err());
        assert!(matches!(
            Request::parse(r#"{"cmd":"checkpoint"}"#),
            Ok(Request::Checkpoint)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"cmd":"frobnicate"}"#).is_err());
    }

    #[test]
    fn decoder_reassembles_split_lines() {
        let mut d = FrameDecoder::new(1024);
        for b in b"{\"cmd\":\"stats\"}" {
            d.feed(&[*b]);
            assert_eq!(d.next_frame(), None, "no frame before the newline");
        }
        assert!(d.has_partial());
        d.feed(b"\n");
        assert_eq!(
            d.next_frame(),
            Some(Frame::Line("{\"cmd\":\"stats\"}".into()))
        );
        assert!(!d.has_partial());
    }

    #[test]
    fn decoder_splits_pipelined_chunk() {
        let mut d = FrameDecoder::default();
        d.feed(b"{\"cmd\":\"guru\"}\n{\"cmd\":\"stats\"}\n{\"cmd\":");
        assert_eq!(
            d.next_frame(),
            Some(Frame::Line("{\"cmd\":\"guru\"}".into()))
        );
        assert_eq!(
            d.next_frame(),
            Some(Frame::Line("{\"cmd\":\"stats\"}".into()))
        );
        assert_eq!(d.next_frame(), None);
        assert!(d.has_partial());
        d.feed(b"\"quit\"}\r\n");
        assert_eq!(
            d.next_frame(),
            Some(Frame::Line("{\"cmd\":\"quit\"}".into()))
        );
    }

    #[test]
    fn decoder_caps_oversize_lines() {
        let mut d = FrameDecoder::new(16);
        d.feed(&[b'x'; 40]);
        assert_eq!(d.next_frame(), None);
        d.feed(&[b'y'; 10]);
        assert_eq!(d.next_frame(), None);
        d.feed(b"zz\n{\"cmd\":\"stats\"}\n");
        assert_eq!(d.next_frame(), Some(Frame::Oversize(52)));
        // The stream recovers: the next line frames normally.
        assert_eq!(
            d.next_frame(),
            Some(Frame::Line("{\"cmd\":\"stats\"}".into()))
        );
        assert_eq!(d.next_frame(), None);
        assert!(!d.has_partial());
    }

    #[test]
    fn decoder_caps_complete_lines_arriving_in_one_batch() {
        // The whole oversize line (newline included) can be buffered
        // before the first next_frame() call; the cap still applies.
        let mut d = FrameDecoder::new(16);
        d.feed(b"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n{\"cmd\":\"stats\"}\n");
        assert_eq!(d.next_frame(), Some(Frame::Oversize(32)));
        assert_eq!(
            d.next_frame(),
            Some(Frame::Line("{\"cmd\":\"stats\"}".into()))
        );
        assert_eq!(d.next_frame(), None);
    }

    #[test]
    fn parses_batch() {
        let req = Request::parse(
            r#"{"cmd":"batch","requests":[{"cmd":"guru","id":"g1"},{"cmd":"nope"},{"cmd":"stats"}]}"#,
        )
        .unwrap();
        match req {
            Request::Batch { items } => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0].id, Json::str("g1"));
                assert!(matches!(items[0].req.as_deref(), Ok(Request::Guru)));
                assert_eq!(items[1].id, Json::Num(1.0));
                assert!(items[1].req.is_err(), "bad element is a per-item error");
                assert!(matches!(items[2].req.as_deref(), Ok(Request::Stats)));
            }
            other => panic!("bad batch parse: {other:?}"),
        }
        assert!(Request::parse(r#"{"cmd":"batch"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"batch","requests":[]}"#).is_err());
        assert!(Request::parse(
            r#"{"cmd":"batch","requests":[{"cmd":"batch","requests":[{"cmd":"stats"}]}]}"#
        )
        .map(|r| match r {
            Request::Batch { items } => items[0].req.is_err(),
            _ => false,
        })
        .unwrap_or(false));
    }

    #[test]
    fn extracts_request_ids() {
        let v = Json::parse(r#"{"cmd":"stats","id":7}"#).unwrap();
        assert_eq!(request_id(&v), Some(Json::Num(7.0)));
        let v = Json::parse(r#"{"cmd":"stats","id":"abc"}"#).unwrap();
        assert_eq!(request_id(&v), Some(Json::str("abc")));
        let v = Json::parse(r#"{"cmd":"stats","id":[1]}"#).unwrap();
        assert_eq!(request_id(&v), None);
        let v = Json::parse(r#"{"cmd":"stats"}"#).unwrap();
        assert_eq!(request_id(&v), None);
    }

    #[test]
    fn response_shapes() {
        let ok = ok_response(Json::obj([("loops", Json::Arr(vec![]))]));
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let err = err_response("nope");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("error").and_then(Json::as_str), Some("nope"));
    }
}
