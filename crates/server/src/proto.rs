//! Wire protocol: request parsing and response shaping.

use crate::json::Json;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Load a program from MiniF source text, replacing any current session.
    Load { text: String },
    /// Re-load edited source, re-analyzing only the dirty cone.
    Reload { text: String },
    /// Report per-loop parallelization verdicts.
    Analyze,
    /// Ranked Guru targets (coverage/granularity driven).
    Guru,
    /// Slice the dependences of one loop.
    Slice { loop_name: String },
    /// Check and apply a user assertion (an incremental invalidation event).
    Assert {
        loop_name: String,
        var: String,
        independent: bool,
    },
    /// Demand-driven advisories: contraction, decomposition, block splits.
    Advisory,
    /// Render the annotated code view.
    Codeview,
    /// Race-certify loops under adversarial schedules (all loops, or one
    /// named loop).
    Certify {
        loop_name: Option<String>,
        schedules: Option<u32>,
        seed: Option<u64>,
    },
    /// Daemon statistics: pass timings, cache counters, worker utilization.
    Stats,
    /// Force a durable fact-snapshot write (requires `--persist-dir`).
    Checkpoint,
    /// Close the connection.
    Quit,
    /// Stop the whole daemon gracefully: checkpoint the shared fact tier,
    /// stop accepting connections, and drain in-flight sessions.
    Shutdown,
}

/// Protocol-level failure, reported to the client as an error response.
#[derive(Debug, Clone)]
pub struct ProtoError(pub String);

impl Request {
    /// Parse one line of client input.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = Json::parse(line).map_err(|e| ProtoError(e.to_string()))?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError("missing string field \"cmd\"".into()))?;
        let text_field = |v: &Json| -> Result<String, ProtoError> {
            v.get("text")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ProtoError(format!("{cmd} requires string field \"text\"")))
        };
        match cmd {
            "load" => Ok(Request::Load {
                text: text_field(&v)?,
            }),
            "reload" => Ok(Request::Reload {
                text: text_field(&v)?,
            }),
            "analyze" => Ok(Request::Analyze),
            "guru" => Ok(Request::Guru),
            "slice" => {
                let loop_name = v
                    .get("loop")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| ProtoError("slice requires string field \"loop\"".into()))?;
                Ok(Request::Slice { loop_name })
            }
            "assert" => {
                let field = |name: &str| -> Result<String, ProtoError> {
                    v.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| ProtoError(format!("assert requires string field {name:?}")))
                };
                let loop_name = field("loop")?;
                let var = field("var")?;
                let independent = match v.get("kind").and_then(Json::as_str) {
                    None | Some("private") => false,
                    Some("independent") => true,
                    Some(other) => {
                        return Err(ProtoError(format!(
                            "assert kind must be \"private\" or \"independent\", got {other:?}"
                        )))
                    }
                };
                Ok(Request::Assert {
                    loop_name,
                    var,
                    independent,
                })
            }
            "certify" => {
                let loop_name = v.get("loop").and_then(Json::as_str).map(str::to_string);
                let schedules = match v.get("schedules") {
                    Some(j) => Some(j.as_i64().filter(|s| *s > 0).map(|s| s as u32).ok_or_else(
                        || ProtoError("certify \"schedules\" must be a positive number".into()),
                    )?),
                    None => None,
                };
                let seed =
                    match v.get("seed") {
                        Some(j) => Some(j.as_i64().map(|s| s as u64).ok_or_else(|| {
                            ProtoError("certify \"seed\" must be a number".into())
                        })?),
                        None => None,
                    };
                Ok(Request::Certify {
                    loop_name,
                    schedules,
                    seed,
                })
            }
            "advisory" => Ok(Request::Advisory),
            "codeview" => Ok(Request::Codeview),
            "stats" => Ok(Request::Stats),
            "checkpoint" => Ok(Request::Checkpoint),
            "quit" => Ok(Request::Quit),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError(format!("unknown cmd {other:?}"))),
        }
    }
}

/// Wrap a successful payload: `{"ok":true, ...payload}`.
pub fn ok_response(payload: Json) -> Json {
    match payload {
        Json::Obj(mut m) => {
            m.insert("ok".into(), Json::Bool(true));
            Json::Obj(m)
        }
        other => Json::obj([("ok", Json::Bool(true)), ("result", other)]),
    }
}

/// Wrap an error message: `{"ok":false,"error":msg}`.
pub fn err_response(msg: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(msg))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commands() {
        assert!(matches!(
            Request::parse(r#"{"cmd":"load","text":"program p\nend"}"#),
            Ok(Request::Load { .. })
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"slice","loop":"main:1"}"#),
            Ok(Request::Slice { .. })
        ));
        assert!(Request::parse(r#"{"cmd":"slice"}"#).is_err());
        assert!(matches!(
            Request::parse(r#"{"cmd":"assert","loop":"main/1","var":"a","kind":"independent"}"#),
            Ok(Request::Assert {
                independent: true,
                ..
            })
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"assert","loop":"main/1","var":"a"}"#),
            Ok(Request::Assert {
                independent: false,
                ..
            })
        ));
        assert!(Request::parse(r#"{"cmd":"assert","loop":"main/1"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"assert","loop":"l","var":"v","kind":"bogus"}"#).is_err());
        assert!(matches!(
            Request::parse(r#"{"cmd":"advisory"}"#),
            Ok(Request::Advisory)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"certify"}"#),
            Ok(Request::Certify {
                loop_name: None,
                schedules: None,
                seed: None,
            })
        ));
        match Request::parse(r#"{"cmd":"certify","loop":"main/1","schedules":8,"seed":42}"#) {
            Ok(Request::Certify {
                loop_name,
                schedules,
                seed,
            }) => {
                assert_eq!(loop_name.as_deref(), Some("main/1"));
                assert_eq!(schedules, Some(8));
                assert_eq!(seed, Some(42));
            }
            other => panic!("bad certify parse: {other:?}"),
        }
        assert!(Request::parse(r#"{"cmd":"certify","schedules":0}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"certify","seed":"x"}"#).is_err());
        assert!(matches!(
            Request::parse(r#"{"cmd":"checkpoint"}"#),
            Ok(Request::Checkpoint)
        ));
        assert!(matches!(
            Request::parse(r#"{"cmd":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"cmd":"frobnicate"}"#).is_err());
    }

    #[test]
    fn response_shapes() {
        let ok = ok_response(Json::obj([("loops", Json::Arr(vec![]))]));
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let err = err_response("nope");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("error").and_then(Json::as_str), Some("nope"));
    }
}
