//! Incremental-equivalence property: for any generated MiniF program and
//! any edit, `reload` + `analyze` on a warm session answers exactly what a
//! fresh analysis of the edited source answers — the summary cache may only
//! change *what is recomputed*, never *what is computed*.

use proptest::prelude::*;
use std::sync::Arc;
use suif_analysis::{ScheduleOptions, SummaryCache};
use suif_server::json::Json;
use suif_server::Session;

/// A generated program: `n` leaf procedures (elementwise when the constant
/// is even, a loop-carried recurrence when odd) called in sequence by main.
fn gen_src(consts: &[i64]) -> String {
    let mut s = String::from("program gen\n");
    for (k, c) in consts.iter().enumerate() {
        if c % 2 == 0 {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 1, n {{\n  q[i] = q[i] + {c}\n }}\n}}\n"
            ));
        } else {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 2, n {{\n  q[i] = q[i - 1] + {c}\n }}\n}}\n"
            ));
        }
    }
    s.push_str("proc main() {\n real b[16]\n int i\n do 9 i = 1, 16 {\n  b[i] = i\n }\n");
    for k in 0..consts.len() {
        s.push_str(&format!(" call f{k}(b, 16)\n"));
    }
    s.push_str(" print b[3]\n}\n");
    s
}

fn fresh_verdicts(src: &str) -> Json {
    let cache = Arc::new(SummaryCache::new());
    let mut s = Session::open(src, ScheduleOptions::sequential(), cache).unwrap();
    s.analyze()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reload_plus_analyze_equals_fresh_analysis(
        consts in prop::collection::vec(-4i64..5, 1..5),
        edit_at in 0usize..5,
        delta in 1i64..4,
    ) {
        let edit_at = edit_at % consts.len();
        let mut edited = consts.clone();
        // Guaranteed change; may flip elementwise <-> recurrence.
        edited[edit_at] += delta;

        let base_src = gen_src(&consts);
        let edited_src = gen_src(&edited);

        let cache = Arc::new(SummaryCache::new());
        let mut session =
            Session::open(&base_src, ScheduleOptions::sequential(), cache).unwrap();
        session.reload(&edited_src).unwrap();
        let warm = session.analyze();

        let fresh = fresh_verdicts(&edited_src);
        prop_assert_eq!(
            warm.to_string(),
            fresh.to_string(),
            "incremental reload diverged from fresh analysis"
        );

        // The warm analyze right after the reload touches nothing.
        prop_assert_eq!(session.last_stats.schedule.summarized, 0);

        // The reload itself reused every unedited leaf (same statement
        // structure, so no id shifts; only f{edit_at} and main are dirty).
        prop_assert!(session.generation == 2);
    }

    #[test]
    fn single_proc_edit_dirties_only_its_cone(
        consts in prop::collection::vec(0i64..8, 2..5),
        edit_at in 0usize..5,
    ) {
        let edit_at = edit_at % consts.len();
        let mut edited = consts.clone();
        edited[edit_at] += 2; // keeps even/odd, so statement shape is stable

        let cache = Arc::new(SummaryCache::new());
        let mut session =
            Session::open(&gen_src(&consts), ScheduleOptions::sequential(), cache).unwrap();
        session.reload(&gen_src(&edited)).unwrap();

        if consts[edit_at] == edited[edit_at] {
            // (unreachable: delta is fixed nonzero)
            prop_assert_eq!(session.last_stats.schedule.summarized, 0);
        } else {
            // Dirty cone = the edited leaf + main.
            prop_assert_eq!(session.last_stats.schedule.summarized, 2);
            prop_assert_eq!(
                session.last_stats.schedule.cache_hits,
                consts.len() - 1
            );
        }
    }
}
