//! Incremental-equivalence property: for any generated MiniF program and
//! any edit, `reload` + `analyze` on a warm session answers exactly what a
//! fresh analysis of the edited source answers — the summary cache may only
//! change *what is recomputed*, never *what is computed*.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use suif_analysis::{FactKey, FactStore, Pass, PassId, ScheduleOptions, Scope, SummaryCache};
use suif_ir::StmtId;
use suif_server::json::Json;
use suif_server::Session;

/// A generated program: `n` leaf procedures (elementwise when the constant
/// is even, a loop-carried recurrence when odd) called in sequence by main.
fn gen_src(consts: &[i64]) -> String {
    let mut s = String::from("program gen\n");
    for (k, c) in consts.iter().enumerate() {
        if c % 2 == 0 {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 1, n {{\n  q[i] = q[i] + {c}\n }}\n}}\n"
            ));
        } else {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 2, n {{\n  q[i] = q[i - 1] + {c}\n }}\n}}\n"
            ));
        }
    }
    s.push_str("proc main() {\n real b[16]\n int i\n do 9 i = 1, 16 {\n  b[i] = i\n }\n");
    for k in 0..consts.len() {
        s.push_str(&format!(" call f{k}(b, 16)\n"));
    }
    s.push_str(" print b[3]\n}\n");
    s
}

fn fresh_verdicts(src: &str) -> Json {
    let cache = Arc::new(SummaryCache::new());
    let mut s = Session::open(src, ScheduleOptions::sequential(), cache).unwrap();
    s.analyze()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reload_plus_analyze_equals_fresh_analysis(
        consts in prop::collection::vec(-4i64..5, 1..5),
        edit_at in 0usize..5,
        delta in 1i64..4,
    ) {
        let edit_at = edit_at % consts.len();
        let mut edited = consts.clone();
        // Guaranteed change; may flip elementwise <-> recurrence.
        edited[edit_at] += delta;

        let base_src = gen_src(&consts);
        let edited_src = gen_src(&edited);

        let cache = Arc::new(SummaryCache::new());
        let mut session =
            Session::open(&base_src, ScheduleOptions::sequential(), cache).unwrap();
        session.reload(&edited_src).unwrap();
        let warm = session.analyze();

        let fresh = fresh_verdicts(&edited_src);
        prop_assert_eq!(
            warm.to_string(),
            fresh.to_string(),
            "incremental reload diverged from fresh analysis"
        );

        // The warm analyze right after the reload touches nothing.
        prop_assert_eq!(session.last_stats.schedule.summarized, 0);

        // The reload itself reused every unedited leaf (same statement
        // structure, so no id shifts; only f{edit_at} and main are dirty).
        prop_assert!(session.generation == 2);
    }

    #[test]
    fn single_proc_edit_dirties_only_its_cone(
        consts in prop::collection::vec(0i64..8, 2..5),
        edit_at in 0usize..5,
    ) {
        let edit_at = edit_at % consts.len();
        let mut edited = consts.clone();
        edited[edit_at] += 2; // keeps even/odd, so statement shape is stable

        let cache = Arc::new(SummaryCache::new());
        let mut session =
            Session::open(&gen_src(&consts), ScheduleOptions::sequential(), cache).unwrap();
        session.reload(&gen_src(&edited)).unwrap();

        if consts[edit_at] == edited[edit_at] {
            // (unreachable: delta is fixed nonzero)
            prop_assert_eq!(session.last_stats.schedule.summarized, 0);
        } else {
            // Dirty cone = the edited leaf + main.
            prop_assert_eq!(session.last_stats.schedule.summarized, 2);
            prop_assert_eq!(
                session.last_stats.schedule.cache_hits,
                consts.len() - 1
            );
        }
    }
}

/// A pass whose `run` blocks until released, so a test can invalidate the
/// fact while its computation is in flight.
struct GatedPass {
    started: Arc<AtomicBool>,
    release: Arc<AtomicU64>,
    source: Arc<AtomicU64>,
}

impl Pass for GatedPass {
    type Output = u64;
    fn key(&self) -> FactKey {
        FactKey::new(PassId::Classify, Scope::Loop(StmtId(7)))
    }
    fn input_hash(&self) -> u128 {
        1
    }
    fn run(&self) -> u64 {
        // The input is read when the pass starts; the edit lands after.
        let v = self.source.load(Ordering::SeqCst);
        self.started.store(true, Ordering::SeqCst);
        while self.release.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        v
    }
}

/// Regression: an `invalidate` racing a `demand` must not let the store
/// serve the in-flight (now stale) result to later demands.  The running
/// demand still gets the value it computed, but the entry is stored
/// invalid, so the next demand recomputes and sees the new input.
#[test]
fn invalidation_during_demand_is_not_served_stale() {
    let store = Arc::new(FactStore::new());
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicU64::new(0));
    let source = Arc::new(AtomicU64::new(1));
    let key = FactKey::new(PassId::Classify, Scope::Loop(StmtId(7)));

    let runner = {
        let (store, started, release, source) = (
            store.clone(),
            started.clone(),
            release.clone(),
            source.clone(),
        );
        std::thread::spawn(move || {
            *store.demand(&GatedPass {
                started,
                release,
                source,
            })
        })
    };
    while !started.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }

    // The fact's input changes while its pass is running.
    source.store(2, Ordering::SeqCst);
    assert_eq!(store.invalidate(key), 1, "the running slot is dirtied");
    release.store(1, Ordering::SeqCst);

    // The runner raced the edit: it observes its own (stale) computation…
    assert_eq!(runner.join().unwrap(), 1);

    // …but the store does not.  A fresh demand recomputes from the new
    // input instead of serving the entry stored by the invalidated run.
    let v = *store.demand(&GatedPass {
        started: started.clone(),
        release: release.clone(),
        source: source.clone(),
    });
    assert_eq!(v, 2, "stale in-flight result must not satisfy new demands");
    let m = store.metrics_for(PassId::Classify);
    assert_eq!(m.invocations, 2, "the invalidated run is not reused");
    assert_eq!(m.reused, 0);
}

/// Sources whose recurrence loops are sequential, so the guru ranks them
/// and speculation has something to prefetch.
fn spec_src(consts: &[i64]) -> String {
    gen_src(consts)
}

/// After `guru`, the session pre-demands the ranked loops' classify and
/// carried-dependence facts in the background; a later `slice` on a ranked
/// loop claims them as speculation hits in `stats`.
#[test]
fn speculation_prefetch_hits_are_reported() {
    let src = spec_src(&[1, 3]); // two sequential recurrence loops
    let cache = Arc::new(SummaryCache::new());
    let mut s =
        Session::open_with_speculation(&src, ScheduleOptions::sequential(), cache, 4).unwrap();

    let g = s.guru_json();
    let targets = g.get("targets").and_then(Json::as_arr).unwrap();
    assert!(!targets.is_empty(), "recurrence loops must be guru targets");
    s.wait_speculation();

    let st = s.stats_json();
    let spec = st.get("speculation").unwrap();
    assert_eq!(spec.get("budget").and_then(Json::as_i64), Some(4));
    assert!(
        spec.get("spawned").and_then(Json::as_i64).unwrap() > 0,
        "{st}"
    );
    assert_eq!(spec.get("hits").and_then(Json::as_i64), Some(0));

    let first = targets[0].get("loop").and_then(Json::as_str).unwrap();
    s.slice_json(first).unwrap();
    let st = s.stats_json();
    let spec = st.get("speculation").unwrap();
    assert!(
        spec.get("hits").and_then(Json::as_i64).unwrap() >= 1,
        "slice on a ranked loop must claim speculated facts: {st}"
    );
}

/// A reload racing background speculation cancels it, writes the pending
/// prefetches off as wasted, and — the invalidation-during-demand property
/// at session level — answers exactly what a fresh analysis of the edited
/// source answers.
#[test]
fn reload_during_speculation_stays_consistent() {
    let base = spec_src(&[1, 3, 5]);
    let edited = spec_src(&[1, 4, 5]); // flips f1 recurrence → elementwise

    let cache = Arc::new(SummaryCache::new());
    let mut s =
        Session::open_with_speculation(&base, ScheduleOptions::sequential(), cache, 4).unwrap();
    s.guru_json(); // spawns background speculation
    s.reload(&edited).unwrap(); // cancels it mid-flight
    let warm = s.analyze();

    let fresh_cache = Arc::new(SummaryCache::new());
    let mut fresh = Session::open(&edited, ScheduleOptions::sequential(), fresh_cache).unwrap();
    assert_eq!(
        warm.to_string(),
        fresh.analyze().to_string(),
        "reload racing speculation diverged from fresh analysis"
    );

    let st = s.stats_json();
    let spec = st.get("speculation").unwrap();
    assert_eq!(
        spec.get("pending").and_then(Json::as_i64),
        Some(0),
        "cancelled speculation must not leave claimable facts: {st}"
    );
}

/// Regression: a snapshot written while speculative pre-classification is
/// in flight must persist only `Ready` *and valid* slots — never a
/// `Running` placeholder or the result of a demand that an epoch-cancel
/// (here: a user assertion) invalidated mid-run.  Facts persisted after
/// the assertion carry assertion-marked input hashes, so a clean restart
/// must evict them as stale rather than serve assertion-tainted answers.
#[test]
fn checkpoint_during_speculation_persists_only_valid_facts() {
    let dir = std::env::temp_dir().join(format!("suif_persist_{}_spec_ckpt", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let src = spec_src(&[1, 3, 5]);
    let fresh = fresh_verdicts(&src);

    let cache = Arc::new(SummaryCache::new());
    let mut s =
        Session::open_with_persistence(&src, ScheduleOptions::sequential(), cache, 4, Some(&dir))
            .unwrap();
    s.guru_json(); // spawns background speculation over the ranked loops
    s.checkpoint_json().unwrap(); // snapshot races the in-flight prefetch
                                  // The assertion is an epoch-cancel: speculation stops, its pending
                                  // facts are written off, and the auto-saved snapshot now holds facts
                                  // whose hashes fold the assertion epoch.
    let r = s.assert_json("main/9", "b", true);
    assert_eq!(
        r.get("assertion").and_then(Json::as_str),
        Some("consistent")
    );
    s.checkpoint_json().unwrap();
    drop(s); // clean shutdown: final snapshot write

    // The persisted file decodes cleanly (no torn interleaving) and holds
    // each fact key at most once — `Running` slots are unrepresentable in
    // the format and must not have been exported in any other guise.
    let bytes = std::fs::read(dir.join(suif_server::SNAPSHOT_FILE)).unwrap();
    let snap = suif_analysis::Snapshot::decode(&bytes).unwrap();
    assert_eq!(snap.undecodable, 0);
    assert!(!snap.facts.is_empty());
    let dedup: std::collections::BTreeSet<_> = snap.facts.iter().map(|f| f.key).collect();
    assert_eq!(dedup.len(), snap.facts.len(), "duplicate persisted keys");

    // Restart over the same dir *without* the assertion: the reopened
    // session must answer exactly what a fresh analysis answers —
    // assertion-marked facts evict on their hash instead of loading.
    let cache = Arc::new(SummaryCache::new());
    let mut s2 =
        Session::open_with_persistence(&src, ScheduleOptions::sequential(), cache, 0, Some(&dir))
            .unwrap();
    let st = s2.stats_json();
    let snapj = st.get("snapshot").unwrap();
    assert_eq!(snapj.get("status").and_then(Json::as_str), Some("loaded"));
    assert!(
        snapj.get("evicted_stale").and_then(Json::as_i64).unwrap() > 0,
        "assertion-epoch facts must be evicted: {st}"
    );
    assert_eq!(
        s2.analyze().to_string(),
        fresh.to_string(),
        "restart after assert+speculation checkpoints diverged from fresh analysis"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
