//! The parallel scheduler must be bit-identical to the sequential pass, and
//! a warm summary cache must re-summarize nothing — checked over the full
//! benchmark suite (Ch. 4–6).

use std::collections::BTreeMap;
use suif_analysis::{
    AnalysisCtx, ArrayDataFlow, ParallelizeConfig, Parallelizer, ScheduleOptions, SummaryCache,
};
use suif_benchmarks::{ch4_apps, ch5_apps, ch6_apps, BenchProgram, Scale};

fn all_apps() -> Vec<BenchProgram> {
    let mut v = ch4_apps(Scale::Test);
    v.extend(ch5_apps(Scale::Test));
    v.extend(ch6_apps(Scale::Test));
    v
}

/// Canonical rendering of a data-flow result (`HashMap`s sorted by id).
fn df_fingerprint(df: &ArrayDataFlow) -> String {
    let procs: BTreeMap<u32, String> = df
        .proc_summary
        .iter()
        .map(|(k, v)| (k.0, format!("{v:?}")))
        .collect();
    let fresh: BTreeMap<u32, (u32, u32)> = df.proc_fresh.iter().map(|(k, &v)| (k.0, v)).collect();
    let stmts: BTreeMap<u32, String> = df
        .stmt_summary
        .iter()
        .map(|(k, v)| (k.0, format!("{v:?}")))
        .collect();
    let iters: BTreeMap<u32, String> = df
        .loop_iter
        .iter()
        .map(|(k, v)| (k.0, format!("{v:?}")))
        .collect();
    let closed: BTreeMap<u32, String> = df
        .loop_closed_plain
        .iter()
        .map(|(k, v)| (k.0, format!("{v:?}")))
        .collect();
    format!("{procs:?}|{fresh:?}|{stmts:?}|{iters:?}|{closed:?}")
}

fn verdict_fingerprint(pa: &suif_analysis::ProgramAnalysis<'_>) -> String {
    let v: BTreeMap<u32, String> = pa
        .verdicts
        .iter()
        .map(|(k, v)| (k.0, format!("{v:?}")))
        .collect();
    format!("{v:?}")
}

#[test]
fn parallel_schedule_is_bit_identical_across_suite() {
    for app in all_apps() {
        let program = app.parse();
        let ctx = AnalysisCtx::new(&program);
        let seq = ArrayDataFlow::analyze(&ctx);
        let (par, stats) =
            suif_analysis::schedule::run(&ctx, &ScheduleOptions { threads: 4 }, None);
        assert_eq!(
            df_fingerprint(&seq),
            df_fingerprint(&par),
            "{}: parallel data flow diverged from sequential",
            app.name
        );
        assert_eq!(stats.summarized, stats.procs, "{}", app.name);

        // Whole-driver equivalence: verdicts must match too.
        let pa_seq = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let (pa_par, _) = Parallelizer::analyze_with(
            &program,
            ParallelizeConfig::default(),
            &ScheduleOptions { threads: 4 },
            None,
        );
        assert_eq!(
            verdict_fingerprint(&pa_seq),
            verdict_fingerprint(&pa_par),
            "{}: verdicts diverged under the parallel schedule",
            app.name
        );
    }
}

#[test]
fn warm_cache_resummarizes_nothing_across_suite() {
    for app in all_apps() {
        let program = app.parse();
        let ctx = AnalysisCtx::new(&program);
        let cache = SummaryCache::new();
        let (cold, s1) =
            suif_analysis::schedule::run(&ctx, &ScheduleOptions { threads: 2 }, Some(&cache));
        assert_eq!(s1.summarized, s1.procs, "{}: cold run must miss", app.name);
        let (warm, s2) =
            suif_analysis::schedule::run(&ctx, &ScheduleOptions { threads: 2 }, Some(&cache));
        assert_eq!(
            s2.summarized, 0,
            "{}: warm run must re-summarize zero procedures",
            app.name
        );
        assert_eq!(s2.cache_hits, s2.procs, "{}", app.name);
        assert_eq!(
            df_fingerprint(&cold),
            df_fingerprint(&warm),
            "{}: cached flows diverged",
            app.name
        );
    }
}
