//! Multi-tenant daemon semantics: concurrent sessions over one process-wide
//! content-addressed fact tier.
//!
//! Three properties matter and each gets a test: **sharing** (the second
//! session to load a program recomputes nothing — every fact arrives from
//! the tier), **isolation** (one tenant's assertion never changes what
//! another tenant observes; the other tenant's verdicts stay bit-identical
//! to a fresh single-tenant run), and **service behavior over real TCP**
//! (concurrent clients, distinct session ids, no cross-talk, graceful
//! `shutdown`).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use suif_server::json::Json;
use suif_server::{serve_listener, Daemon, ServiceOptions, ServiceState, Session};

const SRC: &str = "program t
proc inc(real q[*], int n) {
 int i
 do 1 i = 1, n {
  q[i] = q[i] + 1
 }
}
proc rec(real q[*], int n) {
 int i
 do 1 i = 2, n {
  q[i] = q[i - 1] * 2
 }
}
proc main() {
 real b[8]
 int i
 do 2 i = 1, 8 {
  b[i] = i
 }
 call inc(b, 8)
 call rec(b, 8)
 print b[3]
}";

/// The MDG kernel shape from the paper: `main/1000` is sequential until the
/// user asserts `rl` privatizable, which flips it parallel.
const MDG_LIKE: &str = r#"program mdgkern
const nmol = 40
proc main() {
  real rs[9], rl[14], a[nmol]
  real cut2, acc
  int i, k, kc
  cut2 = 30.0
  acc = 0
  do 5 i = 1, nmol {
    a[i] = i * 0.7
  }
  do 1000 i = 1, nmol {
    kc = 0
    do 1110 k = 1, 9 {
      rs[k] = a[i] + k
      if rs[k] > cut2 { kc = kc + 1 }
    }
    do 1130 k = 2, 5 {
      if rs[k + 4] <= cut2 { rl[k + 4] = rs[k + 4] }
    }
    if kc == 0 {
      do 1140 k = 11, 14 {
        acc = acc + rl[k - 5]
      }
    }
  }
  print acc
}
"#;

/// Minimal JSON string escaping for request payloads.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn req(d: &mut Daemon, line: &str) -> Json {
    let (resp, _) = d.handle_line(line);
    resp
}

fn load_line(src: &str) -> String {
    format!(r#"{{"cmd":"load","text":"{}"}}"#, escape(src))
}

/// `parallel` flag of a named loop in a `loops` array.
fn loop_parallel(resp: &Json, name: &str) -> Option<bool> {
    resp.get("loops")
        .and_then(Json::as_arr)?
        .iter()
        .find(|l| l.get("loop").and_then(Json::as_str) == Some(name))?
        .get("parallel")
        .and_then(Json::as_bool)
}

#[test]
fn second_session_shares_every_fact() {
    let state = ServiceState::new(ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    });
    let mut a = Daemon::for_state(state.clone());
    let ra = req(&mut a, &load_line(SRC));
    assert_eq!(ra.get("ok").and_then(Json::as_bool), Some(true), "{ra}");
    let computed_a = ra
        .get("facts")
        .unwrap()
        .get("computed")
        .and_then(Json::as_i64)
        .unwrap();
    assert!(computed_a > 0, "first tenant computes cold: {ra}");

    // The second tenant loads the same program concurrently-in-spirit:
    // every fact — summaries, liveness, classifications, carried deps —
    // must arrive from the shared tier with ZERO pass invocations.
    let mut b = Daemon::for_state(state.clone());
    let rb = req(&mut b, &load_line(SRC));
    assert_eq!(rb.get("ok").and_then(Json::as_bool), Some(true), "{rb}");
    let facts = rb.get("facts").unwrap();
    assert_eq!(
        facts.get("computed").and_then(Json::as_i64),
        Some(0),
        "second session recomputed something: {rb}"
    );
    let shared = facts.get("shared").and_then(Json::as_i64).unwrap();
    assert!(shared > 0, "facts must come from the tier: {rb}");
    let passes = rb.get("passes").unwrap();
    for pass in ["summarize", "classify"] {
        if let Some(p) = passes.get(pass) {
            assert_eq!(
                p.get("invocations").and_then(Json::as_i64),
                Some(0),
                "{pass} ran in the second session: {rb}"
            );
        }
    }

    // Same verdicts, and the tier accounted the traffic.
    let va = req(&mut a, r#"{"cmd":"analyze"}"#);
    let vb = req(&mut b, r#"{"cmd":"analyze"}"#);
    assert_eq!(
        format!("{}", va.get("loops").unwrap()),
        format!("{}", vb.get("loops").unwrap())
    );
    let tier = state.tier().stats();
    assert!(tier.hits > 0, "tier hit counter: {tier:?}");
    assert!(tier.inserts > 0, "tier insert counter: {tier:?}");
}

#[test]
fn assertions_stay_session_private() {
    let state = ServiceState::new(ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    });
    let mut a = Daemon::for_state(state.clone());
    let mut b = Daemon::for_state(state.clone());
    let ra = req(&mut a, &load_line(MDG_LIKE));
    assert_eq!(ra.get("ok").and_then(Json::as_bool), Some(true), "{ra}");
    let rb = req(&mut b, &load_line(MDG_LIKE));
    assert_eq!(rb.get("ok").and_then(Json::as_bool), Some(true), "{rb}");

    // Baseline: main/1000 is sequential for everyone (the rl dependence).
    let va = req(&mut a, r#"{"cmd":"analyze"}"#);
    assert_eq!(loop_parallel(&va, "main/1000"), Some(false));

    // Tenant A asserts rl privatizable: its own loop flips parallel.
    let r = req(
        &mut a,
        r#"{"cmd":"assert","loop":"main/1000","var":"rl","kind":"private"}"#,
    );
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    assert_eq!(
        loop_parallel(&r, "main/1000"),
        Some(true),
        "assertion must flip A's verdict: {r}"
    );

    // Tenant B must not observe A's assertion — and its verdicts must be
    // bit-identical to a fresh single-tenant analysis of the same source.
    let vb = req(&mut b, r#"{"cmd":"analyze"}"#);
    assert_eq!(
        loop_parallel(&vb, "main/1000"),
        Some(false),
        "A's assertion leaked into B: {vb}"
    );
    let fresh = Session::open(
        MDG_LIKE,
        suif_analysis::ScheduleOptions { threads: 1 },
        Arc::new(suif_analysis::SummaryCache::new()),
    )
    .unwrap();
    assert_eq!(
        format!("{}", vb.get("loops").unwrap()),
        format!("{}", fresh.verdicts_json().get("loops").unwrap()),
        "tenant B diverged from a fresh single-tenant run"
    );

    // A third tenant arriving AFTER the assertion sees clean facts too:
    // assertion-tainted classifications were never published to the tier.
    let mut c = Daemon::for_state(state.clone());
    let rc = req(&mut c, &load_line(MDG_LIKE));
    assert_eq!(rc.get("ok").and_then(Json::as_bool), Some(true), "{rc}");
    let vc = req(&mut c, r#"{"cmd":"analyze"}"#);
    assert_eq!(
        loop_parallel(&vc, "main/1000"),
        Some(false),
        "A's asserted verdict leaked into the tier: {vc}"
    );
    assert_eq!(
        format!("{}", vc.get("loops").unwrap()),
        format!("{}", fresh.verdicts_json().get("loops").unwrap())
    );
}

/// One line-delimited JSON client over a real socket.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let conn = TcpStream::connect(addr).unwrap();
        Client {
            reader: BufReader::new(conn.try_clone().unwrap()),
            writer: conn,
        }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        Json::parse(resp.trim()).unwrap_or_else(|e| panic!("bad response {resp:?}: {e}"))
    }
}

#[test]
fn tcp_concurrent_tenants_and_graceful_shutdown() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let state = ServiceState::new(ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    });
    let st = state.clone();
    let server = std::thread::spawn(move || serve_listener(listener, st));

    // Concurrent tenants: each loads and analyzes over its own connection.
    let clients: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let r = c.roundtrip(&load_line(SRC));
                assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
                let session = r.get("session").and_then(Json::as_i64).unwrap();
                let v = c.roundtrip(r#"{"cmd":"analyze"}"#);
                assert_eq!(v.get("session").and_then(Json::as_i64), Some(session));
                let loops = format!("{}", v.get("loops").unwrap());
                let q = c.roundtrip(r#"{"cmd":"quit"}"#);
                assert_eq!(q.get("ok").and_then(Json::as_bool), Some(true));
                (session, loops)
            })
        })
        .collect();
    let results: Vec<(i64, String)> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let mut ids: Vec<i64> = results.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 3, "every connection gets its own session id");
    assert!(
        results.windows(2).all(|w| w[0].1 == w[1].1),
        "tenants disagree on verdicts: {results:?}"
    );

    // A late tenant answers entirely from the shared tier.
    let mut late = Client::connect(addr);
    let r = late.roundtrip(&load_line(SRC));
    assert_eq!(
        r.get("facts")
            .unwrap()
            .get("computed")
            .and_then(Json::as_i64),
        Some(0),
        "late tenant recomputed facts: {r}"
    );
    let stats = late.roundtrip(r#"{"cmd":"stats"}"#);
    let tier = stats.get("tier").unwrap();
    assert!(tier.get("hits").and_then(Json::as_i64).unwrap() > 0);

    // Graceful shutdown: the issuing connection gets an acknowledgment, the
    // acceptor drains, and the server thread returns.
    let r = late.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    assert_eq!(r.get("shutdown").and_then(Json::as_bool), Some(true));
    server.join().unwrap().unwrap();
    assert!(state.shutting_down());
}
