//! End-to-end tests of the `suif-explorer` command-line driver.

use std::io::Write;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_suif-explorer");

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("suif_cli_{name}_{}.mf", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

const SEQ_SRC: &str = r#"program t
proc main() {
  real a[32]
  real acc
  int i
  a[1] = 1
  do 1 i = 2, 32 {
    a[i] = a[i - 1] * 1.01
  }
  acc = 0
  do 2 i = 1, 32 {
    acc = acc + a[i]
  }
  print acc
}
"#;

#[test]
fn analyze_reports_verdicts_and_targets() {
    let f = write_temp("analyze", SEQ_SRC);
    let out = Command::new(BIN).arg("analyze").arg(&f).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("main/1") && text.contains("sequential"),
        "{text}"
    );
    assert!(
        text.contains("main/2") && text.contains("PARALLEL"),
        "{text}"
    );
    std::fs::remove_file(f).ok();
}

#[test]
fn slice_positional_loop_name_is_accepted() {
    let f = write_temp("slice", SEQ_SRC);
    let out = Command::new(BIN)
        .args(["slice".as_ref(), f.as_os_str(), "main/1".as_ref()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // The recurrence on `a` must be surfaced with slice lines.
    assert!(text.contains("a") && !text.trim().is_empty(), "{text}");
    std::fs::remove_file(f).ok();
}

#[test]
fn run_compares_sequential_and_parallel() {
    let f = write_temp("run", SEQ_SRC);
    let out = Command::new(BIN)
        .args([
            "run".as_ref(),
            f.as_os_str(),
            "--threads".as_ref(),
            "2".as_ref(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Program output goes to stdout; the timing summary goes to stderr.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stdout.trim().is_empty(), "program output missing");
    assert!(
        stderr.contains("sequential") && stderr.contains("parallel"),
        "{stderr}"
    );
    std::fs::remove_file(f).ok();
}

#[test]
fn codeview_renders_markers() {
    let f = write_temp("codeview", SEQ_SRC);
    let out = Command::new(BIN).arg("codeview").arg(&f).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("codeview"), "{text}");
    std::fs::remove_file(f).ok();
}

#[test]
fn explore_with_assertion_is_checked() {
    // Asserting the recurrence array privatizable must be REJECTED by the
    // dynamic check (§2.8) and the loop stays sequential.
    let f = write_temp("explore", SEQ_SRC);
    let out = Command::new(BIN)
        .args([
            "explore".as_ref(),
            f.as_os_str(),
            "--assert".as_ref(),
            "main/1:a".as_ref(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REJECTED"), "{text}");
    std::fs::remove_file(f).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = Command::new(BIN).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
    // Unknown option.
    let f = write_temp("badopt", SEQ_SRC);
    let out = Command::new(BIN)
        .args(["analyze".as_ref(), f.as_os_str(), "--bogus".as_ref()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_file(f).ok();
}
