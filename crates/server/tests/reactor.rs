//! Evented-transport behavior over real TCP sockets: one reactor thread
//! multiplexing every connection, with command execution offloaded to the
//! worker pool.
//!
//! Covered here, each by a test:
//! * **robustness** — malformed JSON lines answer per-line errors and keep
//!   the session alive; oversize lines are discarded with an error; a
//!   byte-at-a-time (slow-loris) client never stalls a fast sibling;
//! * **pipelining** — many requests in one write and the `batch` command
//!   both reply strictly in request order with matching ids;
//! * **lifecycle** — a half-written line at `shutdown` does not wedge the
//!   reactor; hundreds of idle connections ride on the one event thread;
//! * **equivalence** — `analyze`/`guru`/`slice` over the reactor transport
//!   are bit-identical to driving `Daemon::handle_line` directly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use suif_server::json::Json;
use suif_server::{serve_listener, Daemon, ServiceOptions, ServiceState};

const SRC: &str = "program t
proc inc(real q[*], int n) {
 int i
 do 1 i = 1, n {
  q[i] = q[i] + 1
 }
}
proc rec(real q[*], int n) {
 int i
 do 1 i = 2, n {
  q[i] = q[i - 1] * 2
 }
}
proc main() {
 real b[8]
 int i
 do 2 i = 1, 8 {
  b[i] = i
 }
 call inc(b, 8)
 call rec(b, 8)
 print b[3]
}";

/// Minimal JSON string escaping for request payloads.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn load_line(src: &str) -> String {
    format!(r#"{{"cmd":"load","text":"{}"}}"#, escape(src))
}

/// Bind a listener and run the reactor on a background thread.
fn spawn_server() -> (
    std::net::SocketAddr,
    Arc<ServiceState>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let state = ServiceState::new(ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    });
    let st = state.clone();
    let server = std::thread::spawn(move || serve_listener(listener, st));
    (addr, state, server)
}

/// One line-delimited JSON client over a real socket.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let conn = TcpStream::connect(addr).unwrap();
        Client {
            reader: BufReader::new(conn.try_clone().unwrap()),
            writer: conn,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        Json::parse(resp.trim()).unwrap_or_else(|e| panic!("bad response {resp:?}: {e}"))
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut c = Client::connect(addr);
    let r = c.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
}

#[test]
fn malformed_lines_answer_errors_and_keep_the_session_alive() {
    let (addr, _state, server) = spawn_server();
    let mut c = Client::connect(addr);

    // Garbage interleaved with real work: every line (valid or not) gets
    // exactly one response, and the session state survives the garbage.
    let r = c.roundtrip(&load_line(SRC));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    let session = r.get("session").and_then(Json::as_i64).unwrap();

    for garbage in [
        "this is not json",
        r#"{"cmd":"#,
        r#"{"no_cmd_field":1}"#,
        r#"{"cmd":"frobnicate"}"#,
        "[1,2,3]",
    ] {
        let e = c.roundtrip(garbage);
        assert!(
            e.get("error").and_then(Json::as_str).is_some(),
            "garbage line must answer an error object: {e}"
        );
    }

    // Same connection, same session: the loaded program is still resident.
    let v = c.roundtrip(r#"{"cmd":"analyze"}"#);
    assert_eq!(v.get("session").and_then(Json::as_i64), Some(session));
    assert!(v.get("loops").is_some(), "session died after garbage: {v}");

    shutdown(addr);
    server.join().unwrap().unwrap();
}

#[test]
fn oversize_line_is_discarded_with_an_error_and_connection_survives() {
    let (addr, _state, server) = spawn_server();
    let mut c = Client::connect(addr);

    // A line past the 4 MiB cap: the decoder discards it in streaming
    // fashion (never buffering the whole thing) and answers one error.
    let huge = "x".repeat(5 * 1024 * 1024);
    c.writer.write_all(huge.as_bytes()).unwrap();
    c.writer.write_all(b"\n").unwrap();
    c.writer.flush().unwrap();
    let e = c.recv();
    let msg = e.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(msg.contains("exceeds"), "want oversize error, got {e}");

    // The connection is still usable afterwards.
    let r = c.roundtrip(&load_line(SRC));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

    shutdown(addr);
    server.join().unwrap().unwrap();
}

#[test]
fn pipelined_lines_and_batch_reply_in_request_order() {
    let (addr, _state, server) = spawn_server();
    let mut c = Client::connect(addr);

    // Many request lines in ONE write; replies must come back in order.
    let mut payload = String::new();
    payload.push_str(&load_line(SRC));
    payload.push('\n');
    payload.push_str("{\"cmd\":\"analyze\",\"id\":\"first\"}\n");
    payload.push_str("{\"cmd\":\"guru\",\"id\":\"second\"}\n");
    payload.push_str("{\"cmd\":\"stats\",\"id\":\"third\"}\n");
    c.writer.write_all(payload.as_bytes()).unwrap();
    c.writer.flush().unwrap();

    let r = c.recv();
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    for want in ["first", "second", "third"] {
        let r = c.recv();
        assert_eq!(
            r.get("id").and_then(Json::as_str),
            Some(want),
            "pipelined replies out of order: {r}"
        );
    }

    // The batch command: one request line, one reply line per element,
    // in element order, each tagged with its id (default = index).
    let batch = r#"{"cmd":"batch","requests":[
        {"cmd":"analyze","id":"a"},
        {"cmd":"nonsense"},
        {"cmd":"slice","loop":"rec/1","id":"s"},
        {"cmd":"stats"}
    ]}"#
    .replace('\n', "");
    c.send(&batch);
    let r1 = c.recv();
    assert_eq!(r1.get("id").and_then(Json::as_str), Some("a"));
    assert!(r1.get("loops").is_some(), "{r1}");
    let r2 = c.recv();
    assert_eq!(
        r2.get("id").and_then(Json::as_i64),
        Some(1),
        "default id is the index: {r2}"
    );
    assert!(
        r2.get("error").is_some(),
        "bad element answers per-item error: {r2}"
    );
    let r3 = c.recv();
    assert_eq!(r3.get("id").and_then(Json::as_str), Some("s"));
    let r4 = c.recv();
    assert_eq!(r4.get("id").and_then(Json::as_i64), Some(3));
    assert!(r4.get("service").is_some(), "{r4}");

    shutdown(addr);
    server.join().unwrap().unwrap();
}

#[test]
fn slow_loris_client_never_stalls_a_fast_sibling() {
    let (addr, _state, server) = spawn_server();

    // The fast client sets up a session first.
    let mut fast = Client::connect(addr);
    let r = fast.roundtrip(&load_line(SRC));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

    // The slow client dribbles an `analyze` request one byte at a time.
    let mut slow = Client::connect(addr);
    let r = slow.roundtrip(&load_line(SRC));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    let request = b"{\"cmd\":\"analyze\"}\n";
    let mut stalls = 0u32;
    for &b in request.iter() {
        slow.writer.write_all(&[b]).unwrap();
        slow.writer.flush().unwrap();
        // Between bytes, the fast client must keep getting answers
        // promptly — the reactor never blocks on the slow reader.
        let t0 = Instant::now();
        let v = fast.roundtrip(r#"{"cmd":"stats"}"#);
        assert!(v.get("service").is_some(), "{v}");
        if t0.elapsed() > Duration::from_millis(500) {
            stalls += 1;
        }
    }
    assert_eq!(stalls, 0, "fast client stalled behind the slow-loris one");

    // Once the last byte lands, the slow client gets its answer.
    let v = slow.recv();
    assert!(v.get("loops").is_some(), "{v}");

    shutdown(addr);
    server.join().unwrap().unwrap();
}

#[test]
fn half_written_line_at_shutdown_does_not_wedge_the_reactor() {
    let (addr, _state, server) = spawn_server();

    // A client leaves a partial frame in the decoder: no newline, ever.
    let mut partial = TcpStream::connect(addr).unwrap();
    partial.write_all(br#"{"cmd":"analy"#).unwrap();
    partial.flush().unwrap();

    // Another connection (also mid-session) issues shutdown.  The reactor
    // must drain and return even though the partial line never completes —
    // if it wedges, this join hangs and the test times out.
    let mut c = Client::connect(addr);
    let r = c.roundtrip(&load_line(SRC));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    let r = c.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert_eq!(r.get("shutdown").and_then(Json::as_bool), Some(true), "{r}");
    server.join().unwrap().unwrap();

    // The half-open connection is closed out from under the client.
    let mut rest = Vec::new();
    let _ = partial.read_to_end(&mut rest);
}

#[test]
fn idle_connections_multiplex_on_the_one_reactor_thread() {
    let (addr, _state, server) = spawn_server();
    const IDLE: usize = 256;

    // Open a pile of idle sessions that never send a byte...
    let idle: Vec<TcpStream> = (0..IDLE)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();

    // ...and one active client that still gets prompt service.
    let mut c = Client::connect(addr);
    let r = c.roundtrip(&load_line(SRC));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");

    // The reactor accepts asynchronously; poll stats until all are in.
    let deadline = Instant::now() + Duration::from_secs(10);
    let reactor = loop {
        let v = c.roundtrip(r#"{"cmd":"stats"}"#);
        let svc = v.get("service").unwrap();
        let reactor = svc.get("reactor").unwrap().clone();
        let live = reactor.get("connections").and_then(Json::as_i64).unwrap();
        if live >= (IDLE + 1) as i64 {
            break reactor;
        }
        assert!(
            Instant::now() < deadline,
            "reactor accepted only {live}/{} connections",
            IDLE + 1
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let backend = reactor.get("backend").and_then(Json::as_str).unwrap();
    assert_ne!(backend, "inactive", "reactor backend must be live");
    assert!(
        reactor
            .get("peak_connections")
            .and_then(Json::as_i64)
            .unwrap()
            >= (IDLE + 1) as i64
    );

    // All those sockets live on ONE event thread: the worker pool stays at
    // its small fixed size no matter how many connections are held.
    let v = c.roundtrip(r#"{"cmd":"stats"}"#);
    let workers = v.get("service").unwrap().get("workers").unwrap().clone();
    let count = workers.get("count").and_then(Json::as_i64).unwrap();
    assert!(
        count < IDLE as i64 / 8,
        "worker pool must not scale with connections: {count}"
    );

    shutdown(addr);
    server.join().unwrap().unwrap();
    drop(idle);
}

/// Strip the one wall-clock-derived field (guru's `rendered` report embeds
/// a per-iteration millisecond estimate) so the rest compares bit-exactly.
fn scrub(j: Json) -> Json {
    match j {
        Json::Obj(m) => Json::Obj(
            m.into_iter()
                .filter(|(k, _)| k != "rendered")
                .map(|(k, v)| (k, scrub(v)))
                .collect(),
        ),
        Json::Arr(a) => Json::Arr(a.into_iter().map(scrub).collect()),
        other => other,
    }
}

#[test]
fn reactor_transport_is_bit_identical_to_direct_dispatch() {
    // Drive the same command sequence through (a) the evented TCP
    // transport and (b) Daemon::handle_line directly, on separate fresh
    // states, and require byte-identical responses (modulo wall-clock
    // timing fields, which differ run to run even on one transport).
    let commands = [
        r#"{"cmd":"analyze"}"#.to_string(),
        r#"{"cmd":"guru"}"#.to_string(),
        r#"{"cmd":"slice","loop":"rec/1"}"#.to_string(),
        r#"{"cmd":"assert","loop":"rec/1","var":"q","kind":"independent"}"#.to_string(),
        r#"{"cmd":"analyze"}"#.to_string(),
    ];

    let (addr, _state, server) = spawn_server();
    let mut c = Client::connect(addr);
    let r = c.roundtrip(&load_line(SRC));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    let over_tcp: Vec<String> = commands
        .iter()
        .map(|l| scrub(c.roundtrip(l)).to_string())
        .collect();
    shutdown(addr);
    server.join().unwrap().unwrap();

    let state = ServiceState::new(ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    });
    let mut d = Daemon::for_state(state);
    let (r, _) = d.handle_line(&load_line(SRC));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    let direct: Vec<String> = commands
        .iter()
        .map(|l| {
            let (resp, _) = d.handle_line(l);
            scrub(resp).to_string()
        })
        .collect();

    assert_eq!(over_tcp, direct, "transport changed observable behavior");
}
