//! Durable persistence: warm starts, and crash-safety under snapshot
//! corruption.
//!
//! A daemon restart on an unchanged program must re-serve `guru` and `slice`
//! from the persisted fact snapshot with **zero** pass invocations for the
//! persisted fact kinds; a torn, bit-flipped, or version-bumped snapshot
//! must be detected, logged, and discarded for a clean cold start — never a
//! wrong answer.

use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use suif_analysis::{ScheduleOptions, SummaryCache};
use suif_server::json::Json;
use suif_server::{Daemon, Session, SNAPSHOT_FILE, SNAPSHOT_LOG_FILE};

const SRC: &str = "program t
proc inc(real q[*], int n) {
 int i
 do 1 i = 1, n {
  q[i] = q[i] + 1
 }
}
proc rec(real q[*], int n) {
 int i
 do 1 i = 2, n {
  q[i] = q[i - 1] * 2
 }
}
proc main() {
 real b[8]
 int i
 do 2 i = 1, 8 {
  b[i] = i
 }
 call inc(b, 8)
 call rec(b, 8)
 print b[3]
}";

/// A fresh per-test scratch directory (recreated empty every run).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("suif_persist_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open(dir: &Path) -> Session {
    Session::open_with_persistence(
        SRC,
        ScheduleOptions::sequential(),
        Arc::new(SummaryCache::new()),
        0,
        Some(dir),
    )
    .unwrap()
}

fn snapshot_stats(s: &Session) -> Json {
    s.stats_json().get("snapshot").cloned().unwrap()
}

/// The guru payload minus its `rendered` field, whose text embeds a
/// wall-clock estimate that legitimately varies between runs.
fn without_rendered(j: &Json) -> Json {
    match j {
        Json::Obj(m) => {
            let mut m = m.clone();
            m.remove("rendered");
            Json::Obj(m)
        }
        other => other.clone(),
    }
}

/// First open in a fresh dir: nothing to load, but a snapshot is written so
/// even an unclean exit restarts warm.
#[test]
fn first_open_writes_a_snapshot() {
    let dir = scratch("first_open");
    let s = open(&dir);
    let snap = snapshot_stats(&s);
    assert_eq!(snap.get("status").and_then(Json::as_str), Some("none"));
    assert_eq!(snap.get("warm_hits").and_then(Json::as_i64), Some(0));
    assert!(snap.get("cold_misses").and_then(Json::as_i64).unwrap() > 0);
    assert!(dir.join(SNAPSHOT_FILE).exists(), "written at open");
    assert!(dir.join(SNAPSHOT_LOG_FILE).exists(), "log created at open");
    // No temp files left behind by the atomic writer.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name() != SNAPSHOT_FILE && e.file_name() != SNAPSHOT_LOG_FILE)
        .collect();
    assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole acceptance check: restart on an unchanged program re-serves
/// `guru` and `slice` with zero invocations of the persisted fact kinds.
#[test]
fn warm_start_reserves_answers_without_recomputation() {
    let dir = scratch("warm_start");
    let (cold_guru, cold_slice) = {
        let mut s = open(&dir);
        let g = s.guru_json();
        // Slicing demands the carried-deps fact, so it is persisted too.
        let sl = s.slice_json("rec/1").unwrap();
        // `checkpoint` persists the post-query state (guru/slice facts
        // landed after the open-time snapshot write).
        s.checkpoint_json().unwrap();
        (g, sl)
    }; // drop = clean shutdown (also checkpoints)

    let mut s = open(&dir);
    let snap = snapshot_stats(&s);
    assert_eq!(snap.get("status").and_then(Json::as_str), Some("loaded"));
    assert!(
        snap.get("warm_hits").and_then(Json::as_i64).unwrap() > 0,
        "{snap}"
    );
    assert_eq!(snap.get("evicted_stale").and_then(Json::as_i64), Some(0));

    // Zero invocations of any persisted pass on the warm open — including
    // summarize and liveness, the expensive interprocedural ones — and the
    // answers are bit-identical.
    let st = s.stats_json();
    for pass in ["classify", "summarize", "liveness"] {
        let p = st.get("passes").unwrap().get(pass).unwrap();
        assert_eq!(
            p.get("invocations").and_then(Json::as_i64),
            Some(0),
            "{pass}: {st}"
        );
    }
    let classify = st.get("passes").unwrap().get("classify").unwrap();
    assert!(classify.get("reused").and_then(Json::as_i64).unwrap() > 0);
    assert_eq!(
        format!("{}", without_rendered(&cold_guru)),
        format!("{}", without_rendered(&s.guru_json()))
    );
    assert_eq!(
        format!("{cold_slice}"),
        format!("{}", s.slice_json("rec/1").unwrap())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An edited program invalidates persisted facts by hash: they are evicted
/// as stale (not served), and the analysis matches a fresh one.
#[test]
fn stale_snapshot_entries_are_evicted_not_served() {
    let dir = scratch("stale");
    drop(open(&dir));
    let edited = SRC.replace(
        "do 1 i = 1, n {\n  q[i] = q[i] + 1",
        "do 1 i = 2, n {\n  q[i] = q[i - 1] + 1",
    );
    let s = Session::open_with_persistence(
        &edited,
        ScheduleOptions::sequential(),
        Arc::new(SummaryCache::new()),
        0,
        Some(&dir),
    )
    .unwrap();
    let snap = snapshot_stats(&s);
    assert_eq!(snap.get("status").and_then(Json::as_str), Some("loaded"));
    assert!(snap.get("evicted_stale").and_then(Json::as_i64).unwrap() > 0);
    // The edited loop is now a recurrence: the verdict must be fresh, not
    // the stale persisted "parallel".
    let v = s.verdicts_json();
    let loops = v.get("loops").and_then(Json::as_arr).unwrap();
    let inc = loops
        .iter()
        .find(|l| l.get("loop").and_then(Json::as_str) == Some("inc/1"))
        .unwrap();
    assert_eq!(inc.get("parallel").and_then(Json::as_bool), Some(false));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt the snapshot in `mutate`, reopen, and require a clean cold start
/// with `snapshot: discarded` — identical verdicts, no warm hits.
fn corruption_case(name: &str, mutate: impl FnOnce(&mut Vec<u8>)) {
    let dir = scratch(name);
    drop(open(&dir));
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    mutate(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();

    let s = open(&dir);
    let snap = snapshot_stats(&s);
    assert_eq!(
        snap.get("status").and_then(Json::as_str),
        Some("discarded"),
        "{snap}"
    );
    assert_eq!(snap.get("warm_hits").and_then(Json::as_i64), Some(0));
    assert!(snap
        .get("warning")
        .and_then(Json::as_str)
        .unwrap()
        .contains("cold start"));
    // The cold analysis is complete and correct.
    let v = s.verdicts_json();
    let loops = v.get("loops").and_then(Json::as_arr).unwrap();
    assert_eq!(loops.len(), 3);
    // A later open loads the rewritten (healthy) snapshot again.
    drop(s);
    let s2 = open(&dir);
    assert_eq!(
        snapshot_stats(&s2).get("status").and_then(Json::as_str),
        Some("loaded")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash mid-write leaves a torn file: truncation is detected.
#[test]
fn truncated_snapshot_cold_starts_cleanly() {
    corruption_case("truncate", |b| b.truncate(b.len() / 2));
}

/// Bit rot in the payload: the checksum catches it.
#[test]
fn bitflipped_snapshot_cold_starts_cleanly() {
    corruption_case("bitflip", |b| {
        let at = 36 + (b.len() - 36) / 2; // mid-payload, past the header
        b[at] ^= 0x40;
    });
}

/// A future (or garbage) format version is refused, not misparsed.
#[test]
fn version_bumped_snapshot_cold_starts_cleanly() {
    corruption_case("version", |b| b[8] = b[8].wrapping_add(1));
}

/// A snapshot from an older build (version 1, pre-normalized constraint
/// encoding) is discarded for a clean cold start, never misread: the memo
/// keys it holds predate construction-time normalization.
#[test]
fn old_version_snapshot_cold_starts_cleanly() {
    corruption_case("old-version", |b| {
        b[8..12].copy_from_slice(&1u32.to_le_bytes());
    });
}

/// A crash mid-append leaves a torn last log record: the valid prefix
/// still replays (warm answers survive), the torn suffix is dropped, and
/// the open folds everything into a freshly rebound base+log pair.
#[test]
fn torn_log_record_keeps_valid_prefix() {
    let dir = scratch("torn_log");
    {
        let mut s = open(&dir);
        let _ = s.guru_json();
        let _ = s.slice_json("rec/1").unwrap();
        s.checkpoint_json().unwrap();
    }
    let log_path = dir.join(SNAPSHOT_LOG_FILE);
    let log = std::fs::read(&log_path).unwrap();
    assert!(
        log.len() > suif_analysis::snapshot::LOG_HEADER_LEN,
        "guru/slice facts appended as log records (len {})",
        log.len()
    );
    // Tear the final record a few bytes short of complete.
    std::fs::write(&log_path, &log[..log.len() - 5]).unwrap();

    let s = open(&dir);
    let snap = snapshot_stats(&s);
    assert_eq!(
        snap.get("status").and_then(Json::as_str),
        Some("loaded"),
        "{snap}"
    );
    assert!(snap.get("warm_hits").and_then(Json::as_i64).unwrap() > 0);
    // Anything torn away was recomputed, never misread.
    let v = s.verdicts_json();
    assert_eq!(v.get("loops").and_then(Json::as_arr).unwrap().len(), 3);
    // The damage forced a full rewrite at open: the log is a bare header
    // bound to the fresh base again, not an append onto the torn tail.
    assert_eq!(
        std::fs::read(&log_path).unwrap().len(),
        suif_analysis::snapshot::LOG_HEADER_LEN
    );
    drop(s);
    let s2 = open(&dir);
    assert_eq!(
        snapshot_stats(&s2).get("status").and_then(Json::as_str),
        Some("loaded")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash between compaction's two atomic writes leaves a fresh base
/// beside the previous log, which is bound to the *old* base checksum:
/// the stale log must be ignored (never replayed over the wrong image),
/// answers come from the new base alone, and the next open rebinds the
/// pair.
#[test]
fn mid_compaction_crash_ignores_stale_log() {
    let dir = scratch("mid_compaction");
    {
        let mut s = open(&dir);
        let _ = s.guru_json();
        let _ = s.slice_json("rec/1").unwrap();
        s.checkpoint_json().unwrap();
    }
    let base_path = dir.join(SNAPSHOT_FILE);
    let log_path = dir.join(SNAPSHOT_LOG_FILE);
    let base = std::fs::read(&base_path).unwrap();
    let old_log = std::fs::read(&log_path).unwrap();
    assert!(old_log.len() > suif_analysis::snapshot::LOG_HEADER_LEN);
    // Replay compaction's first half only: fold base+log into a new base
    // image, then "crash" before the log reset.
    let img = suif_analysis::snapshot::merge_image(&base, Some(&old_log[..])).unwrap();
    let folded = suif_analysis::Snapshot::new(img.facts, img.prove_empty).encode();
    assert_ne!(folded, base, "folding the log must change the base image");
    std::fs::write(&base_path, &folded).unwrap();

    let s = open(&dir);
    let snap = snapshot_stats(&s);
    assert_eq!(
        snap.get("status").and_then(Json::as_str),
        Some("loaded"),
        "{snap}"
    );
    assert!(snap.get("warm_hits").and_then(Json::as_i64).unwrap() > 0);
    // The folded base already held every fact the stale log would have
    // contributed: the open recomputes nothing.
    let st = s.stats_json();
    for pass in ["classify", "summarize", "liveness"] {
        let p = st.get("passes").unwrap().get(pass).unwrap();
        assert_eq!(
            p.get("invocations").and_then(Json::as_i64),
            Some(0),
            "{pass}: {st}"
        );
    }
    // And the pair is rebound: the log is a bare header over the new base.
    assert_eq!(
        std::fs::read(&log_path).unwrap().len(),
        suif_analysis::snapshot::LOG_HEADER_LEN
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The wire-level `checkpoint` command works end to end, and a second
/// daemon over the same persist dir reports the warm start in `stats`.
#[test]
fn daemon_checkpoint_and_warm_restart_over_the_wire() {
    let dir = scratch("daemon");
    let src_line = SRC.replace('\n', "\\n");
    let run = |dir: &Path| -> Vec<Json> {
        let mut d = Daemon::with_options(1, 0, Some(dir.to_path_buf()));
        let input = format!(
            "{}\n{}\n{}\n{}\n{}\n",
            format_args!(r#"{{"cmd":"load","text":"{src_line}"}}"#),
            r#"{"cmd":"guru"}"#,
            r#"{"cmd":"checkpoint"}"#,
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"quit"}"#
        );
        let mut out = Vec::new();
        d.serve(BufReader::new(input.as_bytes()), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect()
    };

    let first = run(&dir);
    assert_eq!(first.len(), 5);
    for r in &first {
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    }
    assert!(first[2].get("facts").and_then(Json::as_i64).unwrap() > 0);
    let snap = first[3].get("snapshot").unwrap();
    assert_eq!(snap.get("status").and_then(Json::as_str), Some("none"));

    // "Kill" the daemon (drop) and restart over the same persist dir.
    let second = run(&dir);
    let snap = second[3].get("snapshot").unwrap();
    assert_eq!(snap.get("status").and_then(Json::as_str), Some("loaded"));
    assert!(snap.get("warm_hits").and_then(Json::as_i64).unwrap() > 0);
    // Identical guru payload across the restart.
    assert_eq!(
        format!("{}", without_rendered(&first[1])),
        format!("{}", without_rendered(&second[1]))
    );
    let _ = std::fs::remove_dir_all(&dir);
}
