//! End-to-end protocol round trip: spawn the real `suif-explorer serve`
//! binary, speak line-delimited JSON over its stdio, and check every
//! response.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use suif_server::json::Json;

const SRC: &str = "program t
proc inc(real q[*], int n) {
 int i
 do 1 i = 1, n {
  q[i] = q[i] + 1
 }
}
proc main() {
 real b[8]
 int i
 do 2 i = 1, 8 {
  b[i] = i
 }
 call inc(b, 8)
 print b[3]
}";

/// Minimal JSON string escaping for request payloads.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

struct Client {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Client {
    fn spawn() -> Client {
        let mut child = Command::new(env!("CARGO_BIN_EXE_suif-explorer"))
            .args(["serve", "--threads", "2"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn suif-explorer serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Client {
            child,
            stdin,
            stdout,
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().unwrap();
        let mut resp = String::new();
        self.stdout.read_line(&mut resp).expect("read response");
        Json::parse(resp.trim()).unwrap_or_else(|e| panic!("bad response {resp:?}: {e:?}"))
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn daemon_protocol_round_trip() {
    let mut c = Client::spawn();

    // Querying before load is a clean protocol error.
    let r = c.request(r#"{"cmd":"analyze"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
    assert!(r.get("error").and_then(Json::as_str).is_some());

    // Load: stats payload, everything summarized once.
    let r = c.request(&format!(r#"{{"cmd":"load","text":"{}"}}"#, escape(SRC)));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    assert_eq!(r.get("summarized").and_then(Json::as_i64), Some(2));
    assert_eq!(r.get("generation").and_then(Json::as_i64), Some(1));

    // Analyze: both loops parallel.
    let r = c.request(r#"{"cmd":"analyze"}"#);
    let loops = r.get("loops").and_then(Json::as_arr).expect("loops");
    assert_eq!(loops.len(), 2);
    for l in loops {
        assert_eq!(l.get("parallel").and_then(Json::as_bool), Some(true), "{l}");
    }

    // Warm analyze: every fact served from the store, the scheduler and
    // summary cache never touched.
    let r = c.request(r#"{"cmd":"stats"}"#);
    assert_eq!(r.get("summarized").and_then(Json::as_i64), Some(0), "{r}");
    assert_eq!(r.get("cache_hits").and_then(Json::as_i64), Some(0));
    assert!(r.get("passes").and_then(|p| p.get("total")).is_some());
    let classify = r.get("passes").and_then(|p| p.get("classify")).unwrap();
    assert_eq!(classify.get("invocations").and_then(Json::as_i64), Some(0));
    assert_eq!(classify.get("reused").and_then(Json::as_i64), Some(2));
    let facts = r.get("facts").expect("facts object");
    assert_eq!(facts.get("computed").and_then(Json::as_i64), Some(0), "{r}");
    assert!(facts.get("ratio").and_then(Json::as_f64).unwrap() > 0.99);
    assert!(r.get("prove_empty").is_some());

    // Assert on one loop: checked, applied, loops refreshed.
    let r = c.request(r#"{"cmd":"assert","loop":"main/2","var":"b","kind":"independent"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    assert_eq!(
        r.get("assertion").and_then(Json::as_str),
        Some("consistent"),
        "{r}"
    );
    assert!(r.get("warnings").and_then(Json::as_arr).is_some());

    // Advisories answer on demand.
    let r = c.request(r#"{"cmd":"advisory"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    assert!(r.get("contractions").and_then(Json::as_arr).is_some());
    assert!(r.get("decomp_conflicts").and_then(Json::as_arr).is_some());
    assert!(r.get("splits").and_then(Json::as_arr).is_some());

    // Guru and codeview render.
    let r = c.request(r#"{"cmd":"guru"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    assert!(r.get("coverage").and_then(Json::as_f64).is_some());
    let r = c.request(r#"{"cmd":"codeview"}"#);
    assert!(r.get("view").and_then(Json::as_str).unwrap().contains("do"));

    // Slice of a clean loop reports zero slices; unknown loops error.
    let r = c.request(r#"{"cmd":"slice","loop":"main/2"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(r.get("slices").and_then(Json::as_i64), Some(0));
    let r = c.request(r#"{"cmd":"slice","loop":"nope/1"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));

    // Reload an edited main: the leaf `inc` stays cached.
    let edited = SRC.replace("print b[3]", "print b[4]");
    let r = c.request(&format!(
        r#"{{"cmd":"reload","text":"{}"}}"#,
        escape(&edited)
    ));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    assert_eq!(r.get("generation").and_then(Json::as_i64), Some(2));
    assert_eq!(r.get("summarized").and_then(Json::as_i64), Some(1), "{r}");
    assert_eq!(r.get("cache_hits").and_then(Json::as_i64), Some(1), "{r}");

    // Malformed input answers, then quit closes cleanly.
    let r = c.request("this is not json");
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
    let r = c.request(r#"{"cmd":"quit"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    let status = c.child.wait().expect("daemon exit");
    assert!(status.success());
}

#[test]
fn daemon_protocol_over_tcp() {
    use std::net::TcpStream;

    let mut child = Command::new(env!("CARGO_BIN_EXE_suif-explorer"))
        .args(["serve", "--threads", "1", "--tcp", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn tcp daemon");
    let mut banner = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut banner)
        .expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut request = |line: &str| -> Json {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        Json::parse(resp.trim()).unwrap()
    };

    let r = request(&format!(r#"{{"cmd":"load","text":"{}"}}"#, escape(SRC)));
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
    let r = request(r#"{"cmd":"analyze"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    let r = request(r#"{"cmd":"quit"}"#);
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));

    let _ = child.kill();
    let _ = child.wait();
}
