//! Corpus-mode integration tests: the fixed-seed differential against
//! isolated single-tenant analysis, fault isolation end-to-end through the
//! `suif-explorer corpus` CLI, and the daemon's `corpus` protocol command.

use std::io::Write;
use std::process::Command;
use std::sync::Arc;
use suif_analysis::{SharedFactTier, SummaryCache};
use suif_server::json::Json;
use suif_server::{analyze_single, generated_entries, run_corpus, CorpusOptions, Daemon};

const BIN: &str = env!("CARGO_BIN_EXE_suif-explorer");

/// A 200-program fixed-seed corpus analyzed by the fleet driver over a
/// shared tier must report the bit-identical deterministic core as each
/// program analyzed alone in a fresh single-tenant store.
#[test]
fn differential_200_programs_match_isolated_analysis() {
    let entries = generated_entries(200, 1000);
    let singles: Vec<String> = entries
        .iter()
        .map(|e| {
            analyze_single(&e.name, &e.source, 0)
                .deterministic_json()
                .to_string()
        })
        .collect();

    let tier = Arc::new(SharedFactTier::new());
    let cache = Arc::new(SummaryCache::new());
    let run = run_corpus(entries, &CorpusOptions::default(), &tier, &cache, |_| {});

    assert_eq!(run.summary.programs, 200);
    assert_eq!(run.summary.ok, 200, "fixed-seed corpus is all-ok");
    for (r, single) in run.reports.iter().zip(&singles) {
        assert_eq!(
            &r.deterministic_json().to_string(),
            single,
            "warm-tier corpus report for {} diverged from isolated analysis",
            r.name
        );
    }
    // The corpus exercises both verdicts — a trivially all-parallel (or
    // all-sequential) generator would make the differential vacuous.
    assert!(run.summary.parallel_loops > 0, "no parallel loops found");
    assert!(
        run.summary.loops > run.summary.parallel_loops,
        "no sequential loops found"
    );
    // Cross-program sharing actually happened through the tier.
    let ts = tier.stats();
    assert!(ts.inserts > 0);
    assert!(ts.peak_resident_bytes > 0);
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("suif_corpus_{tag}_{}", std::process::id()));
    // A leftover from a previous crashed run of this same pid-tagged test.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One recurrence (sequential) and one reduction (parallel).
const GOOD_SRC: &str = "program t
proc main() {
 real a[32]
 real acc
 int i
 a[1] = 1
 do 1 i = 2, 32 {
  a[i] = a[i - 1] * 1.01
 }
 acc = 0
 do 2 i = 1, 32 {
  acc = acc + a[i]
 }
 print acc
}
";

/// End-to-end CLI fault isolation: a directory corpus with a parse error
/// and an oversize file, plus generated programs with one injected panic.
/// Every fault becomes an error record, every sibling completes, and the
/// process still exits 0 with a nonzero `errors` count in the summary.
#[test]
fn cli_corpus_exits_zero_with_error_records_under_faults() {
    let dir = temp_dir("cli");
    std::fs::write(dir.join("bad.mf"), "program p\nthis is not minif\n").unwrap();
    std::fs::write(dir.join("big.mf"), "x".repeat(32 * 1024)).unwrap();
    std::fs::write(dir.join("good.mf"), GOOD_SRC).unwrap();

    let out = Command::new(BIN)
        .arg("corpus")
        .arg(&dir)
        .args([
            "--gen",
            "4",
            "--seed-base",
            "40",
            "--inject-panic",
            "gen-00000041",
            "--max-program-bytes",
            "16384",
            "--workers",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "faults must not fail the run: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e:?}")))
        .collect();
    // 3 files + 4 generated, each one record, then the summary line last.
    assert_eq!(lines.len(), 8, "{text}");
    let summary = lines.last().unwrap();
    assert_eq!(summary.get("summary").and_then(Json::as_bool), Some(true));
    assert_eq!(summary.get("programs").and_then(Json::as_i64), Some(7));
    assert_eq!(summary.get("ok").and_then(Json::as_i64), Some(4));
    assert_eq!(summary.get("errors").and_then(Json::as_i64), Some(3));
    assert_eq!(summary.get("parse_errors").and_then(Json::as_i64), Some(1));
    assert_eq!(summary.get("panics").and_then(Json::as_i64), Some(1));
    assert_eq!(summary.get("oversize").and_then(Json::as_i64), Some(1));
    assert!(
        summary
            .get("tier")
            .and_then(|t| t.get("peak_resident_bytes"))
            .and_then(Json::as_i64)
            .unwrap_or(0)
            > 0,
        "summary reports peak resident tier bytes: {summary}"
    );

    let status_of = |name: &str| -> &str {
        lines
            .iter()
            .find(|l| l.get("program").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no record for {name}: {text}"))
            .get("status")
            .and_then(Json::as_str)
            .unwrap()
    };
    assert_eq!(status_of("bad"), "parse");
    assert_eq!(status_of("big"), "oversize");
    assert_eq!(status_of("good"), "ok");
    assert_eq!(status_of("gen-00000041"), "panic");
    for seed in [40u64, 42, 43] {
        assert_eq!(status_of(&format!("gen-{seed:08}")), "ok");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Manifest input plus `--report FILE`: records stream to the file (stdout
/// stays clean) and relative manifest paths resolve against the manifest's
/// own directory.
#[test]
fn cli_corpus_manifest_and_report_file() {
    let dir = temp_dir("manifest");
    std::fs::write(dir.join("one.mf"), GOOD_SRC).unwrap();
    std::fs::write(dir.join("two.mf"), GOOD_SRC).unwrap();
    let manifest = dir.join("corpus.txt");
    let mut f = std::fs::File::create(&manifest).unwrap();
    writeln!(f, "# corpus manifest").unwrap();
    writeln!(f, "one.mf").unwrap();
    writeln!(f).unwrap();
    writeln!(f, "{}", dir.join("two.mf").display()).unwrap();
    drop(f);
    let report = dir.join("report.jsonl");

    let out = Command::new(BIN)
        .arg("corpus")
        .arg(&manifest)
        .arg("--report")
        .arg(&report)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        out.stdout.is_empty(),
        "records go to --report, not stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let text = std::fs::read_to_string(&report).unwrap();
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), 3, "{text}");
    // Records stream in completion order; find each by name.
    for name in ["one", "two"] {
        let line = lines[..2]
            .iter()
            .find(|l| l.get("program").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no record for {name}: {text}"));
        assert_eq!(line.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(line.get("parallel").and_then(Json::as_i64), Some(1));
        assert_eq!(line.get("sequential").and_then(Json::as_i64), Some(1));
    }
    assert_eq!(
        lines[2].get("summary").and_then(Json::as_bool),
        Some(true),
        "summary is the last report line"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The daemon's `corpus` command is service-level: no session required,
/// generated entries analyzed over the shared tier, reports plus summary
/// in one response.
#[test]
fn daemon_corpus_command_needs_no_session() {
    let mut d = Daemon::new(2);
    let (resp, close) = d.handle_line(r#"{"cmd":"corpus","gen":5,"seed_base":9,"workers":2}"#);
    assert!(!close);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    let summary = resp.get("summary").expect("summary present");
    assert_eq!(summary.get("programs").and_then(Json::as_i64), Some(5));
    assert_eq!(summary.get("ok").and_then(Json::as_i64), Some(5));
    assert_eq!(summary.get("errors").and_then(Json::as_i64), Some(0));
    let reports = resp
        .get("reports")
        .and_then(Json::as_arr)
        .expect("reports array");
    assert_eq!(reports.len(), 5);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(
            r.get("program").and_then(Json::as_str),
            Some(minif_gen::name_for_seed(9 + i as u64).as_str()),
            "reports come back in submission order"
        );
        assert_eq!(r.get("status").and_then(Json::as_str), Some("ok"));
    }

    // A second run over the now-warm tier shares facts instead of
    // recomputing them.
    let (resp2, _) = d.handle_line(r#"{"cmd":"corpus","gen":5,"seed_base":9,"workers":2}"#);
    let shared: i64 = resp2
        .get("reports")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|r| r.get("facts")?.get("shared")?.as_i64())
        .sum();
    assert!(shared > 0, "warm rerun reads facts from the tier: {resp2}");

    // Inline programs work too, and faults degrade to error records.
    let (resp3, _) = d
        .handle_line(r#"{"cmd":"corpus","programs":[{"name":"broken","text":"program p\nnope"}]}"#);
    assert_eq!(resp3.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        resp3
            .get("summary")
            .and_then(|s| s.get("errors"))
            .and_then(Json::as_i64),
        Some(1),
        "{resp3}"
    );

    // No programs at all is a request error, not an empty run.
    let (resp4, _) = d.handle_line(r#"{"cmd":"corpus"}"#);
    assert_eq!(resp4.get("ok").and_then(Json::as_bool), Some(false));
}
