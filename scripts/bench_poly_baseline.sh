#!/usr/bin/env sh
# Polyhedral-kernel before/after benchmark with a *real* pre-overhaul
# baseline.
#
# The in-process toggle in bench_poly can only reroute the emptiness proofs
# and the simplifier; the inline expression representation permeates the
# whole analysis and cannot be switched off at runtime.  So this script
# measures the genuine article: it checks the pre-overhaul tree out of git
# into a scratch worktree, builds `scripts/seed_classify.rs` against it (the
# same cold sequential-classify workload bench_poly times), runs it on this
# machine, and feeds the measured wall time to bench_poly via
# BENCH_POLY_BASELINE_SECS.  bench_poly then emits BENCH_4.json with
# `total.pre_pr_wall_secs` / `total.speedup` and fails below 1.3x.
#
# Usage: scripts/bench_poly_baseline.sh [baseline-commit]
set -eu

# The commit immediately before the kernel overhaul landed.
BASE=${1:-c95ac1f9e27ba708c7096827256fba7c14adb41a}
WT=.bench-baseline

cargo build --release -p suif-bench --bin bench_poly

git worktree remove --force "$WT" 2>/dev/null || true
git worktree add --force --detach "$WT" "$BASE"
trap 'git worktree remove --force "$WT" 2>/dev/null || true' EXIT

cp scripts/seed_classify.rs "$WT/crates/bench/src/bin/seed_classify.rs"
(cd "$WT" && cargo build --release -p suif-bench --bin seed_classify)

BASELINE=$("$WT/target/release/seed_classify" | awk '/^TOTAL/{ sub(/s$/, "", $2); print $2 }')
echo "pre-overhaul baseline: ${BASELINE}s"

BENCH_POLY_BASELINE_SECS=$BASELINE ./target/release/bench_poly
