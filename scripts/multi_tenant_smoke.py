#!/usr/bin/env python3
"""Multi-tenant stress smoke test for the analysis daemon over TCP.

Starts one `suif-explorer serve --tcp 127.0.0.1:0` daemon, then drives N
concurrent client threads against it, each over its own connection:

  load -> analyze -> stats -> quit

and asserts that (a) every client completes without error or deadlock,
(b) every connection got a distinct session id and identical loop verdicts
(no cross-talk), (c) the process-wide shared fact tier served hits (late
tenants recompute nothing), and (d) a `shutdown` request checkpoints and
terminates the daemon cleanly.

With --pipeline each client writes its whole command sequence in ONE send
(no waiting between requests) and then reads the replies back, asserting
they arrive in request order with matching ids — exercising the evented
daemon's frame decoder and per-connection ordering guarantee.

With --idle N the run additionally holds N idle connections open on the
single reactor thread for the whole test, and asserts the daemon's stats
saw them all concurrently.

Usage: multi_tenant_smoke.py BINARY PROGRAM.mf [--clients N] [--pipeline]
                             [--idle N]
"""

import argparse
import json
import socket
import subprocess
import sys
import threading
import time


def roundtrip(sock_file, sock, request):
    sock.sendall((json.dumps(request) + "\n").encode())
    line = sock_file.readline()
    if not line:
        raise RuntimeError(f"connection closed during {request['cmd']}")
    resp = json.loads(line)
    if not resp.get("ok"):
        raise RuntimeError(f"request {request['cmd']} failed: {resp}")
    return resp


def client(addr, source, out, idx, pipeline):
    requests = [
        {"cmd": "load", "text": source, "id": "load"},
        {"cmd": "analyze", "id": "analyze"},
        {"cmd": "stats", "id": "stats"},
        {"cmd": "quit", "id": "quit"},
    ]
    try:
        with socket.create_connection(addr, timeout=120) as sock:
            sock_file = sock.makefile("r", encoding="utf-8")
            if pipeline:
                # One write for the whole session; replies must come back
                # in request order, tagged with the ids we sent.
                payload = "".join(json.dumps(r) + "\n" for r in requests)
                sock.sendall(payload.encode())
                resps = {}
                for want in requests:
                    line = sock_file.readline()
                    if not line:
                        raise RuntimeError(f"closed before reply {want['id']}")
                    resp = json.loads(line)
                    if resp.get("id") != want["id"]:
                        raise RuntimeError(
                            f"reply out of order: want {want['id']}, got {resp}"
                        )
                    if not resp.get("ok"):
                        raise RuntimeError(f"request {want['id']} failed: {resp}")
                    resps[want["id"]] = resp
                load, analyze, stats = resps["load"], resps["analyze"], resps["stats"]
            else:
                load = roundtrip(sock_file, sock, requests[0])
                analyze = roundtrip(sock_file, sock, requests[1])
                stats = roundtrip(sock_file, sock, requests[2])
                roundtrip(sock_file, sock, requests[3])
            out[idx] = {
                "session": load["session"],
                "loops": json.dumps(analyze["loops"], sort_keys=True),
                "computed": load["facts"]["computed"],
                "tier": stats.get("tier", {}),
                "service": stats.get("service", {}),
            }
    except Exception as e:  # surfaces in the main thread's report
        out[idx] = {"error": f"{type(e).__name__}: {e}"}


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("binary", help="path to the suif-explorer binary")
    ap.add_argument("program", help="program source to load in every session")
    ap.add_argument("--clients", type=int, default=6, help="concurrent clients")
    ap.add_argument(
        "--pipeline",
        action="store_true",
        help="each client writes all requests in one send and checks reply order",
    )
    ap.add_argument(
        "--idle",
        type=int,
        default=0,
        metavar="N",
        help="hold N idle connections open for the whole run",
    )
    args = ap.parse_args()
    with open(args.program) as f:
        source = f.read()

    daemon = subprocess.Popen(
        [args.binary, "serve", "--tcp", "127.0.0.1:0", "--threads", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    idle_socks = []
    try:
        banner = daemon.stdout.readline().strip()
        if not banner.startswith("listening on "):
            sys.exit(f"unexpected daemon banner: {banner!r}")
        host, port = banner.removeprefix("listening on ").rsplit(":", 1)
        addr = (host, int(port))

        # Idle load: connections that never send a byte, held across the
        # whole active phase on the one reactor thread.
        for i in range(args.idle):
            idle_socks.append(socket.create_connection(addr, timeout=30))
            if i % 64 == 63:
                time.sleep(0.002)  # stay under the listen backlog

        results = [None] * args.clients
        threads = [
            threading.Thread(
                target=client, args=(addr, source, results, i, args.pipeline)
            )
            for i in range(args.clients)
        ]
        start = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        if any(t.is_alive() for t in threads):
            sys.exit("deadlock: client threads still running after 180s")
        elapsed = time.monotonic() - start

        errors = [r for r in results if r is None or "error" in r]
        assert not errors, f"client failures: {errors}"

        sessions = [r["session"] for r in results]
        assert len(set(sessions)) == args.clients, f"session ids not distinct: {sessions}"
        verdicts = {r["loops"] for r in results}
        assert len(verdicts) == 1, f"tenants disagree on verdicts: {verdicts}"

        # The tier must have served cross-session hits: with N concurrent
        # tenants on one program, at most one computes each fact.
        hits = max(r["tier"].get("hits", 0) for r in results)
        assert hits > 0, f"shared tier served no hits: {results}"
        zero_recompute = sum(1 for r in results if r["computed"] == 0)

        # With idle load, the daemon's own accounting must have seen every
        # connection concurrently on the reactor.
        if args.idle:
            peak = max(
                r["service"].get("reactor", {}).get("peak_connections", 0)
                for r in results
            )
            assert peak >= args.idle, (
                f"reactor held {peak} connections, wanted >= {args.idle}"
            )

        # Graceful shutdown: ack, checkpoint (none without --persist-dir),
        # process exit.
        with socket.create_connection(addr, timeout=30) as sock:
            sock_file = sock.makefile("r", encoding="utf-8")
            resp = roundtrip(sock_file, sock, {"cmd": "shutdown"})
            assert resp.get("shutdown") is True, f"bad shutdown ack: {resp}"
        daemon.wait(timeout=60)
        assert daemon.returncode == 0, f"daemon exit code {daemon.returncode}"

        mode = "pipelined" if args.pipeline else "serial"
        idle_note = f", {args.idle} idle connections held" if args.idle else ""
        print(
            f"multi-tenant OK: {args.clients} concurrent {mode} sessions in "
            f"{elapsed:.1f}s, {hits} shared-tier hits, {zero_recompute} sessions "
            f"with zero recompute{idle_note}, clean shutdown"
        )
    finally:
        for s in idle_socks:
            s.close()
        if daemon.poll() is None:
            daemon.kill()
        daemon.wait()


if __name__ == "__main__":
    main()
