#!/usr/bin/env python3
"""Multi-tenant stress smoke test for the analysis daemon over TCP.

Starts one `suif-explorer serve --tcp 127.0.0.1:0` daemon, then drives N
concurrent client threads against it, each over its own connection:

  load -> analyze -> stats -> quit

and asserts that (a) every client completes without error or deadlock,
(b) every connection got a distinct session id and identical loop verdicts
(no cross-talk), (c) the process-wide shared fact tier served hits (late
tenants recompute nothing), and (d) a `shutdown` request checkpoints and
terminates the daemon cleanly.

Usage: multi_tenant_smoke.py <suif-explorer binary> <program.mf> [clients]
"""

import json
import socket
import subprocess
import sys
import threading
import time


def roundtrip(sock_file, sock, request):
    sock.sendall((json.dumps(request) + "\n").encode())
    line = sock_file.readline()
    if not line:
        raise RuntimeError(f"connection closed during {request['cmd']}")
    resp = json.loads(line)
    if not resp.get("ok"):
        raise RuntimeError(f"request {request['cmd']} failed: {resp}")
    return resp


def client(addr, source, out, idx):
    try:
        with socket.create_connection(addr, timeout=120) as sock:
            sock_file = sock.makefile("r", encoding="utf-8")
            load = roundtrip(sock_file, sock, {"cmd": "load", "text": source})
            analyze = roundtrip(sock_file, sock, {"cmd": "analyze"})
            stats = roundtrip(sock_file, sock, {"cmd": "stats"})
            roundtrip(sock_file, sock, {"cmd": "quit"})
            out[idx] = {
                "session": load["session"],
                "loops": json.dumps(analyze["loops"], sort_keys=True),
                "computed": load["facts"]["computed"],
                "tier": stats.get("tier", {}),
            }
    except Exception as e:  # surfaces in the main thread's report
        out[idx] = {"error": f"{type(e).__name__}: {e}"}


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    binary, program = sys.argv[1], sys.argv[2]
    clients = int(sys.argv[3]) if len(sys.argv) == 4 else 6
    with open(program) as f:
        source = f.read()

    daemon = subprocess.Popen(
        [binary, "serve", "--tcp", "127.0.0.1:0", "--threads", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = daemon.stdout.readline().strip()
        if not banner.startswith("listening on "):
            sys.exit(f"unexpected daemon banner: {banner!r}")
        host, port = banner.removeprefix("listening on ").rsplit(":", 1)
        addr = (host, int(port))

        results = [None] * clients
        threads = [
            threading.Thread(target=client, args=(addr, source, results, i))
            for i in range(clients)
        ]
        start = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        if any(t.is_alive() for t in threads):
            sys.exit("deadlock: client threads still running after 180s")
        elapsed = time.monotonic() - start

        errors = [r for r in results if r is None or "error" in r]
        assert not errors, f"client failures: {errors}"

        sessions = [r["session"] for r in results]
        assert len(set(sessions)) == clients, f"session ids not distinct: {sessions}"
        verdicts = {r["loops"] for r in results}
        assert len(verdicts) == 1, f"tenants disagree on verdicts: {verdicts}"

        # The tier must have served cross-session hits: with N concurrent
        # tenants on one program, at most one computes each fact.
        hits = max(r["tier"].get("hits", 0) for r in results)
        assert hits > 0, f"shared tier served no hits: {results}"
        zero_recompute = sum(1 for r in results if r["computed"] == 0)

        # Graceful shutdown: ack, checkpoint (none without --persist-dir),
        # process exit.
        with socket.create_connection(addr, timeout=30) as sock:
            sock_file = sock.makefile("r", encoding="utf-8")
            resp = roundtrip(sock_file, sock, {"cmd": "shutdown"})
            assert resp.get("shutdown") is True, f"bad shutdown ack: {resp}"
        daemon.wait(timeout=60)
        assert daemon.returncode == 0, f"daemon exit code {daemon.returncode}"

        print(
            f"multi-tenant OK: {clients} concurrent sessions in {elapsed:.1f}s, "
            f"{hits} shared-tier hits, {zero_recompute} sessions with zero "
            f"recompute, clean shutdown"
        )
    finally:
        if daemon.poll() is None:
            daemon.kill()
        daemon.wait()


if __name__ == "__main__":
    main()
