#!/usr/bin/env python3
"""Warm-start smoke test for the persistent analysis daemon.

Drives `suif-explorer serve --persist-dir DIR` twice over stdio with the
same program:

  run 1: load -> guru -> slice -> checkpoint -> stats -> quit
  run 2 (fresh process, same DIR): load -> guru -> slice -> stats -> quit

and asserts that the restart (a) reports a loaded snapshot with warm hits
and no stale evictions, (b) invoked the summarize, liveness, and classify
passes zero times (every pass is persisted since snapshot version 3), and
(c) answered `guru` identically (modulo the rendered report's wall-clock
estimate).

Usage: warm_start_smoke.py <suif-explorer binary> <program.mf>
"""

import json
import subprocess
import sys
import tempfile


def drive(binary, persist_dir, source, checkpoint):
    reqs = [
        {"cmd": "load", "text": source},
        {"cmd": "guru"},
        {"cmd": "stats"},
        {"cmd": "quit"},
    ]
    if checkpoint:
        reqs.insert(2, {"cmd": "checkpoint"})
    stdin = "".join(json.dumps(r) + "\n" for r in reqs)
    proc = subprocess.run(
        [binary, "serve", "--persist-dir", persist_dir],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        sys.exit(f"daemon exited with {proc.returncode}:\n{proc.stderr}")
    resps = [json.loads(line) for line in proc.stdout.splitlines() if line.strip()]
    if len(resps) != len(reqs):
        sys.exit(f"expected {len(reqs)} responses, got {len(resps)}:\n{proc.stdout}")
    for req, resp in zip(reqs, resps):
        if not resp.get("ok"):
            sys.exit(f"request {req['cmd']} failed: {resp}")
    by_cmd = {req["cmd"]: resp for req, resp in zip(reqs, resps)}
    return by_cmd


def guru_fingerprint(resp):
    resp = dict(resp)
    resp.pop("rendered", None)  # embeds a wall-clock estimate
    return json.dumps(resp, sort_keys=True)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    binary, program = sys.argv[1], sys.argv[2]
    with open(program) as f:
        source = f.read()

    with tempfile.TemporaryDirectory(prefix="suif_warm_smoke_") as persist_dir:
        cold = drive(binary, persist_dir, source, checkpoint=True)
        warm = drive(binary, persist_dir, source, checkpoint=False)

    cold_snap = cold["stats"]["snapshot"]
    assert cold_snap["status"] == "none", f"fresh dir must cold-start: {cold_snap}"
    assert cold["checkpoint"]["facts"] > 0, f"checkpoint persisted nothing: {cold['checkpoint']}"

    warm_snap = warm["stats"]["snapshot"]
    assert warm_snap["status"] == "loaded", f"restart must load the snapshot: {warm_snap}"
    assert warm_snap["warm_hits"] > 0, f"restart must import facts: {warm_snap}"
    assert warm_snap["evicted_stale"] == 0, f"unchanged program evicted facts: {warm_snap}"

    # Zero-traffic passes are omitted from `passes`, so a missing entry is
    # itself a pass with zero invocations.
    for pass_name in ("summarize", "liveness", "classify"):
        p = warm["stats"]["passes"].get(pass_name, {})
        assert p.get("invocations", 0) == 0, (
            f"warm start must not re-run {pass_name}: {p}"
        )

    cold_guru, warm_guru = guru_fingerprint(cold["guru"]), guru_fingerprint(warm["guru"])
    assert cold_guru == warm_guru, (
        f"guru diverged across restart:\n  cold: {cold_guru}\n  warm: {warm_guru}"
    )

    print(
        f"warm start OK: {warm_snap['warm_hits']} facts imported, "
        f"0 summarize/liveness/classify invocations, identical guru output"
    )


if __name__ == "__main__":
    main()
