//! Baseline timing: sequential classify on the ch4 apps, seed kernel.

use suif_analysis::{FactStore, ParallelizeConfig, Parallelizer, ScheduleOptions};
use suif_benchmarks::{apps, Scale};

const RUNS: usize = 5;
const BATCH: usize = 3;

fn sample(program: &suif_ir::Program) -> f64 {
    let mut secs = 0.0;
    for _ in 0..BATCH {
        suif_poly::clear_prove_empty_cache();
        let store = FactStore::new();
        let (_, stats) = Parallelizer::analyze_in(
            program,
            ParallelizeConfig::default(),
            &ScheduleOptions { threads: 1 },
            None,
            &store,
        );
        secs += stats.total_secs;
    }
    secs
}

fn main() {
    let benches = [
        apps::mdg(Scale::Test),
        apps::hydro(Scale::Test),
        apps::arc3d(Scale::Test),
        apps::flo88(Scale::Test, false),
        apps::hydro2d(Scale::Test),
        apps::wave5(Scale::Test),
    ];
    let mut total = 0.0;
    for b in &benches {
        let program = b.parse();
        let mut best = f64::INFINITY;
        for _ in 0..RUNS {
            best = best.min(sample(&program));
        }
        println!("{:<8} {best:.6}s", b.name);
        total += best;
    }
    println!("TOTAL {total:.6}s");
}
