//! Workspace root: re-exports the SUIF Explorer reproduction crates for the
//! examples and integration tests.  See README.md and DESIGN.md.

pub use suif_analysis as analysis;
pub use suif_benchmarks as benchmarks;
pub use suif_dynamic as dynamic;
pub use suif_explorer as explorer;
pub use suif_ir as ir;
pub use suif_parallel as parallel;
pub use suif_poly as poly;
pub use suif_slicing as slicing;
