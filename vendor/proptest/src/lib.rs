//! Vendored offline shim for the slice of the `proptest` API used in this
//! workspace.
//!
//! The build environment has no registry access, so this crate reimplements
//! exactly what the test suite consumes: the [`Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple and `Just`
//! strategies, `collection::vec`, `bool::ANY`, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` macros backed by a
//! deterministic SplitMix64 generator. Differences from real proptest: no
//! shrinking (failures report the raw generated inputs) and no persistence;
//! case counts and the per-test RNG seed are fully deterministic, so a
//! failing case reproduces on every run.

pub mod strategy {
    use std::fmt;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: fmt::Debug;

        /// Produce one value from the deterministic RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Build a bounded-depth recursive strategy: `recurse` is applied
        /// `depth` times to the strategy for the previous level, starting
        /// from `self` as the leaf strategy. `desired_size` and
        /// `expected_branch_size` are accepted for API compatibility; depth
        /// alone bounds recursion here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat).boxed();
            }
            strat
        }

        /// Erase the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build a union from `(weight, strategy)` arms. Weights must not
        /// all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, strat) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return strat.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

pub mod collection {
    use std::fmt;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generate a `Vec` whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration; only the case count is meaningful here.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Smaller than upstream's 256: these suites drive whole-program
            // analyses per case, and determinism makes repeats redundant.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed `prop_assert!` / `prop_assert_eq!` within one case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure carrying `msg`.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 deterministic generator; one independent stream per test,
    /// seeded from the test's name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive a deterministic stream from a test name.
        pub fn from_name(name: &str) -> TestRng {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// A deterministic stream from a raw numeric seed — the corpus
        /// generators address programs by seed range, so the seed must be
        /// exact rather than hashed from a label.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant at test-strategy scales.
            self.next_u64() % n
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Weighted (`w => strat`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case (with an optional formatted message) unless `cond`
/// holds. Only valid inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`. Only valid inside a
/// `proptest!` test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}: `{:?}` == `{:?}`", format!($($fmt)+), l, r
        );
    }};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                let vals = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let repr = format!("{:?}", vals);
                let ($($arg,)+) = vals;
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                ));
                match outcome {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                    ::core::result::Result::Ok(::core::result::Result::Err(e)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, e, repr
                        );
                    }
                    ::core::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} panicked\n  inputs: {}",
                            case + 1, config.cases, repr
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = i64> {
        prop_oneof![
            4 => 0i64..10,
            1 => Just(-1i64),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in small(), v in prop::collection::vec(0usize..3, 1..4)) {
            prop_assert!((-1..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn recursive_depth_is_bounded(n in leaf_or_pair()) {
            prop_assert!(depth(&n) <= 3, "depth {} too deep: {:?}", depth(&n), n);
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(#[allow(dead_code)] i64),
        Pair(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Pair(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn leaf_or_pair() -> BoxedStrategy<Tree> {
        (0i64..5)
            .prop_map(Tree::Leaf)
            .prop_recursive(2, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b)))
            })
    }

    #[test]
    fn deterministic_streams() {
        let gen = || {
            let mut rng = TestRng::from_name("deterministic_streams");
            (0..8).map(|_| rng.below(1000)).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }
}
