//! Vendored offline shim for the slice of the `criterion` API used by the
//! workspace benches.
//!
//! The build environment has no registry access, so this crate provides a
//! minimal wall-clock harness with criterion-compatible surface:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark does a
//! short warm-up, then times batches until it has `sample_size` samples or
//! exceeds a time budget, and prints min/mean/max per iteration. No
//! statistical analysis, baselines, or HTML reports.

use std::time::{Duration, Instant};

/// Entry point mirroring criterion's `Criterion` manager.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, label: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(None, label, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, label: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(Some(&self.name), label, self.sample_size, f);
        self
    }

    /// Finish the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to time.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call, also used to size the batches so that
        // very fast routines are timed over enough iterations to register.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let target = Duration::from_millis(2);
        self.iters_per_sample = if once >= target {
            1
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        };

        let budget = Duration::from_millis(600);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
            if run_start.elapsed() > budget {
                break;
            }
        }
    }
}

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    label: &str,
    sample_size: usize,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    if b.samples.is_empty() {
        println!("bench {full:<40} (no samples)");
        return;
    }
    let per_iter = |d: &Duration| d.as_nanos() as f64 / b.iters_per_sample as f64;
    let mut ns: Vec<f64> = b.samples.iter().map(per_iter).collect();
    ns.sort_by(|x, y| x.total_cmp(y));
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    println!(
        "bench {full:<40} [{} {} {}] ({} samples x {} iters)",
        fmt_ns(ns[0]),
        fmt_ns(mean),
        fmt_ns(ns[ns.len() - 1]),
        ns.len(),
        b.iters_per_sample,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut hits = 0u64;
        g.bench_function("counter", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits > 0);
    }
}
