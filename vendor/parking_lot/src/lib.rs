//! Vendored offline shim for the `parking_lot` lock API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `parking_lot` it uses: [`Mutex`] and
//! [`RwLock`] with guard-returning (non-poisoning) `lock`/`read`/`write`,
//! plus a [`Condvar`] that waits on a [`MutexGuard`] in place.
//! Implemented over `std::sync`; a poisoned std lock (a panic while held)
//! is recovered into the inner data rather than propagated, matching
//! parking_lot's no-poisoning semantics.

#![warn(missing_docs)]

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can move
/// it through `std::sync::Condvar::wait` (which consumes and returns the
/// guard) without unsafe code; outside that window it is always `Some`.
pub struct MutexGuard<'a, T: ?Sized>(Option<StdMutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_deref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_deref_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable usable with [`MutexGuard`], parking_lot style:
/// `wait` takes the guard by `&mut` and reacquires the lock before
/// returning.
#[derive(Default, Debug)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(StdCondvar::new())
    }

    /// Atomically release the guarded lock and block until notified; the
    /// lock is reacquired before returning.  Spurious wakeups are possible —
    /// callers must re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            *done
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
